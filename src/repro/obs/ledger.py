"""Append-only JSONL run ledger: one line per synthesis attempt.

The checkpoint file (``bench/fullscale``) records *results*; the ledger
records *attempts* -- what was tried, under which configuration, what
it cost per phase and per solver tier, and how it ended.  That history
is the substrate the ROADMAP's cost-validated promotion gate learns
from, and what ``repro report`` renders as per-query profiles.

File format (version 1) -- a header line followed by cell lines::

    {"type": "header", "version": 1, "t": 12.3,
     "config": {"float_filter": "filter+trust-sat", "techniques": [...],
                "workers": 2, "deadline_ms": 4000.0, "sanitize": false,
                "seed": 42, "queries": 8}}
    {"type": "cell", "query": 0, "subset": ["l_shipdate"],
     "technique": "SIA", "valid": true, "optimal": true,
     "partial": false, "possible": true, "iterations": 3,
     "phase_ms": {"generation": 81.2, "learning": 14.0,
                  "validation": 55.1},
     "counters": {"checks": 41, "pivots": 310, "float_checks": 38},
     "audit": "certified", "deadline_ms": 4000.0}

``counters`` is the per-cell :data:`~repro.smt.stats.GLOBAL_COUNTERS`
delta (so per-tier float/exact effort is attributable per attempt);
``audit`` says whether the cell's verify verdicts were proof-logged
(``certified``) or plain (``none``); ``partial`` marks a cell whose
synthesis budget expired (section 6.2 cooperative deadline) so
aggregates can exclude truncated timings.

Readers are tolerant: torn trailing lines (a crashed run) and missing
keys from older writers are skipped or defaulted, never fatal.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterable

from .clock import now
from .metrics import summarize_values

__all__ = [
    "LEDGER_VERSION",
    "RunLedger",
    "cell_entry",
    "load_ledger",
    "per_query_profiles",
    "render_report",
]

#: Ledger file-format version (the header's ``version`` field).
LEDGER_VERSION = 1


def cell_entry(
    record_payload: dict,
    *,
    counters: dict[str, int] | None = None,
    audit: str = "none",
    deadline_ms: float | None = None,
) -> dict:
    """Build a ledger cell line from a checkpoint-encoded record.

    ``record_payload`` is the ``fullscale`` JSON encoding of an
    :class:`~repro.bench.harness.EfficacyRecord`; the ledger keeps the
    verdict/cost fields and attaches the per-cell counter delta.
    """
    return {
        "type": "cell",
        "query": record_payload["query_index"],
        "subset": list(record_payload["subset"]),
        "technique": record_payload["technique"],
        "valid": bool(record_payload["valid"]),
        "optimal": bool(record_payload["optimal"]),
        "partial": bool(record_payload.get("partial", False)),
        "possible": bool(record_payload.get("possible", False)),
        "iterations": record_payload.get("iterations", 0),
        "phase_ms": {
            "generation": round(record_payload.get("generation_ms", 0.0), 4),
            "learning": round(record_payload.get("learning_ms", 0.0), 4),
            "validation": round(record_payload.get("validation_ms", 0.0), 4),
        },
        "counters": dict(counters or {}),
        "audit": audit,
        "deadline_ms": deadline_ms,
    }


class RunLedger:
    """Append-only writer: header on open, one flushed line per cell."""

    def __init__(self, path: Path | str, config: dict | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._write(
            {
                "type": "header",
                "version": LEDGER_VERSION,
                "t": round(now(), 4),
                "config": dict(config or {}),
            }
        )

    def _write(self, entry: dict) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    def append(self, entry: dict) -> None:
        """Append one cell line (flushed so crashes lose nothing)."""
        if self._handle is None:
            raise ValueError(f"ledger {self.path} is closed")
        self._write(entry)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def load_ledger(path: Path | str) -> tuple[dict, list[dict]]:
    """Parse a ledger file into ``(header, cell entries)``.

    Unparseable lines and unknown types are skipped; a file with no
    header yields ``{}`` so readers can still render the cells.
    """
    header: dict = {}
    entries: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("type") == "header" and not header:
                header = record
            elif record.get("type") == "cell":
                entries.append(record)
    return header, entries


def per_query_profiles(entries: Iterable[dict]) -> list[dict]:
    """Aggregate cell entries into one profile row per query."""
    profiles: dict[int, dict[str, Any]] = {}
    for entry in entries:
        query = entry.get("query")
        if query is None:
            continue
        row = profiles.setdefault(
            query,
            {
                "query": query,
                "cells": 0,
                "valid": 0,
                "optimal": 0,
                "partial": 0,
                "iterations": 0,
                "phase_ms": {"generation": 0.0, "learning": 0.0,
                             "validation": 0.0},
                "checks": 0,
                "cell_ms": [],
            },
        )
        row["cells"] += 1
        row["valid"] += bool(entry.get("valid"))
        row["optimal"] += bool(entry.get("optimal"))
        row["partial"] += bool(entry.get("partial"))
        row["iterations"] += entry.get("iterations", 0)
        phase_ms = entry.get("phase_ms") or {}
        total = 0.0
        for phase in ("generation", "learning", "validation"):
            value = float(phase_ms.get(phase, 0.0))
            row["phase_ms"][phase] += value
            total += value
        row["cell_ms"].append(total)
        row["checks"] += (entry.get("counters") or {}).get("checks", 0)
    out = []
    for query in sorted(profiles):
        row = profiles[query]
        row["total_ms"] = round(sum(row["cell_ms"]), 1)
        row["cell_ms"] = summarize_values(row["cell_ms"])
        for phase in row["phase_ms"]:
            row["phase_ms"][phase] = round(row["phase_ms"][phase], 1)
        out.append(row)
    return out


def render_report(header: dict, entries: list[dict]) -> str:
    """``repro report``: the per-query profile table as aligned text."""
    if not entries:
        return "ledger has no cell entries"
    rows = per_query_profiles(entries)
    headers = [
        "query", "cells", "valid", "optimal", "partial", "iters",
        "gen ms", "learn ms", "val ms", "total ms", "p95 cell", "checks",
    ]
    body = [
        [
            str(row["query"]),
            str(row["cells"]),
            str(row["valid"]),
            str(row["optimal"]),
            str(row["partial"]),
            str(row["iterations"]),
            f"{row['phase_ms']['generation']:.1f}",
            f"{row['phase_ms']['learning']:.1f}",
            f"{row['phase_ms']['validation']:.1f}",
            f"{row['total_ms']:.1f}",
            f"{row['cell_ms']['p95']:.1f}",
            str(row["checks"]),
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in body))
        for i in range(len(headers))
    ]

    def fmt(cells: list[str]) -> str:
        return "  ".join(
            cell.rjust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(line) for line in body)
    totals = {
        "cells": sum(r["cells"] for r in rows),
        "valid": sum(r["valid"] for r in rows),
        "optimal": sum(r["optimal"] for r in rows),
        "partial": sum(r["partial"] for r in rows),
    }
    config = header.get("config") or {}
    lines.append("")
    lines.append(
        f"{totals['cells']} cells over {len(rows)} queries: "
        f"{totals['valid']} valid, {totals['optimal']} optimal, "
        f"{totals['partial']} partial"
        + (
            f" (float_filter={config['float_filter']}"
            + (
                f", deadline_ms={config['deadline_ms']}"
                if config.get("deadline_ms") is not None
                else ""
            )
            + ")"
            if config.get("float_filter")
            else ""
        )
    )
    return "\n".join(lines)
