"""Worker heartbeats: periodic beacons over a lossy side channel.

The sharded bench driver (:mod:`repro.bench.parallel`) runs paper-scale
workloads for minutes with nothing observable between dispatch and the
final merge.  This module adds a *telemetry* plane next to the result
plane -- strictly lossy, never blocking, and invisible when off:

* :class:`StatusBoard` -- a single-writer bulletin board the worker's
  hot path posts its current position to (query, cell, phase, cells
  done).  ``post()`` is a handful of plain attribute stores; the GIL
  makes each store atomic and only the emitter thread reads the board,
  so there is no lock on the hot path.  The module-level
  :data:`GLOBAL_BOARD` is the worker-side singleton (one synthesis
  pipeline per process by contract).
* :class:`BeaconChannel` -- a bounded, non-blocking wrapper around a
  queue: ``post()`` drops the beacon when the queue is full (counting
  drops) instead of ever waiting, ``drain()`` empties without
  blocking.  The channel is the only thing crossing the process
  boundary; losing beacons under load is the design, losing *results*
  is impossible because results use their own queue.
* :class:`HeartbeatEmitter` -- a daemon thread in each worker that
  wakes every ``interval_ms``, reads the board, computes the solver
  counter delta since its previous beat, and posts one beacon.
* :class:`RunModel` -- the parent-side fold: latest beacon per worker,
  counter totals, and silence detection (a worker whose last beacon is
  older than ``silence_intervals`` heartbeat periods is flagged once).

Both board and channel speak the single-producer ``post()``/``drain()``
channel protocol the concurrency analyzer sanctions (see
``repro.analysis.concurrency.inventory``): their writes on
worker-reachable paths are the telemetry design, not a shared-state
hazard, exactly like delta-capable registries under SIA501/SIA504.

Beacon wire format (one JSON object per line in ``heartbeats.jsonl``)::

    {"type": "beacon", "v": 1, "worker": 0, "seq": 7, "t": 123.4,
     "query": 3, "cell": "l_shipdate/SIA", "phase": "cell",
     "cells_done": 12, "deadline_ms": 4000.0,
     "counters": {"checks": 118, "pivots": 904}}

The parent also writes ``driver`` lines (queue depths, steals,
requeues, running cell-time percentiles), ``silence`` lines (one per
newly-flagged worker) and a final ``end`` line; ``repro top`` renders
all of them.
"""

from __future__ import annotations

import queue as queue_mod
import threading
from typing import Any, Callable

from .clock import now

__all__ = [
    "BEACON_VERSION",
    "BeaconChannel",
    "DEFAULT_INTERVAL_MS",
    "GLOBAL_BOARD",
    "HeartbeatEmitter",
    "RunModel",
    "SILENT_INTERVALS",
    "StatusBoard",
]

#: Beacon wire-format version (bump on incompatible shape changes).
BEACON_VERSION = 1

#: Heartbeat period when the caller does not choose one, milliseconds.
DEFAULT_INTERVAL_MS = 500.0

#: A worker is flagged silent after this many missed heartbeat periods.
SILENT_INTERVALS = 2

#: Bounded channel capacity: enough for every worker to buffer several
#: beats between parent polls, small enough that a stuck parent costs
#: dropped telemetry, not memory.
_CHANNEL_CAPACITY = 256


class StatusBoard:
    """Single-writer status bulletin the worker hot path posts to.

    ``post()`` is called from the worker's main (synthesis) thread
    only; ``drain()`` from the emitter thread only.  Every field is a
    plain attribute store -- atomic under the GIL -- and the reader
    tolerates torn *combinations* (a beacon pairing the new query with
    the previous phase for one beat is acceptable telemetry), so the
    hot path takes no lock.
    """

    def __init__(self) -> None:
        self.query: int | None = None
        self.cell: str | None = None
        self.phase: str | None = None
        self.cells_done = 0
        self.deadline_ms: float | None = None

    def post(
        self,
        *,
        query: int | None = None,
        cell: str | None = None,
        phase: str | None = None,
        cells_done: int | None = None,
        deadline_ms: float | None = None,
    ) -> None:
        """Overwrite the board's current position (never blocks)."""
        if query is not None:
            self.query = query
        if cell is not None:
            self.cell = cell
        if phase is not None:
            self.phase = phase
        if cells_done is not None:
            self.cells_done = cells_done
        if deadline_ms is not None:
            self.deadline_ms = deadline_ms

    def drain(self) -> dict[str, Any]:
        """The board's current position, as beacon fields."""
        return {
            "query": self.query,
            "cell": self.cell,
            "phase": self.phase,
            "cells_done": self.cells_done,
            "deadline_ms": self.deadline_ms,
        }

    def reset(self) -> None:
        self.post(cells_done=0)
        self.query = self.cell = self.phase = None
        self.cells_done = 0
        self.deadline_ms = None


#: Worker-side board singleton: one synthesis pipeline per process, so
#: the bench hot path posts here and the emitter reads here.
GLOBAL_BOARD = StatusBoard()


class BeaconChannel:
    """Non-blocking, lossy wrapper around a (process or thread) queue.

    The wrapped queue only needs ``put_nowait``/``get_nowait``; both a
    ``multiprocessing`` queue (sharded driver) and ``queue.Queue``
    (inline driver, tests) qualify.  ``post()`` never blocks: a full
    queue drops the beacon and counts the drop, because telemetry must
    never hold up synthesis.
    """

    def __init__(self, sink: Any | None = None) -> None:
        self.sink = (
            sink if sink is not None
            else queue_mod.Queue(maxsize=_CHANNEL_CAPACITY)
        )
        self.dropped = 0

    def post(self, beacon: dict) -> bool:
        """Enqueue without blocking; ``False`` when the beacon dropped."""
        try:
            self.sink.put_nowait(beacon)
        except queue_mod.Full:
            self.dropped += 1
            return False
        return True

    def drain(self) -> list[dict]:
        """Every beacon currently queued, without blocking."""
        out: list[dict] = []
        while True:
            try:
                out.append(self.sink.get_nowait())
            except queue_mod.Empty:
                return out


class HeartbeatEmitter:
    """Periodic beacon producer running on a worker-side daemon thread.

    ``beat()`` is also callable directly (no thread) so tests drive it
    deterministically.  The counter source defaults to the solver's
    global counters; each beat ships only the *delta* since the
    previous beat, so the parent can fold beacons additively.
    """

    def __init__(
        self,
        worker_id: int,
        channel: BeaconChannel,
        *,
        interval_ms: float = DEFAULT_INTERVAL_MS,
        board: StatusBoard | None = None,
        counter_source: Callable[[], dict[str, int]] | None = None,
    ) -> None:
        self.worker_id = worker_id
        self.channel = channel
        self.interval_ms = interval_ms
        self.board = board if board is not None else GLOBAL_BOARD
        if counter_source is None:
            from ..smt.stats import GLOBAL_COUNTERS

            counter_source = GLOBAL_COUNTERS.snapshot
        self._counter_source = counter_source
        self._last_counters = counter_source()
        self._seq = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- producing -----------------------------------------------------
    def beat(self) -> dict:
        """Compose and post one beacon; returns it (posted or dropped)."""
        current = self._counter_source()
        delta = {
            name: current[name] - self._last_counters.get(name, 0)
            for name in current
            if current[name] - self._last_counters.get(name, 0)
        }
        self._last_counters = current
        self._seq += 1
        beacon = {
            "type": "beacon",
            "v": BEACON_VERSION,
            "worker": self.worker_id,
            "seq": self._seq,
            "t": round(now(), 4),
            "counters": delta,
            **self.board.drain(),
        }
        self.channel.post(beacon)
        return beacon

    # -- thread lifecycle ----------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.interval_ms / 1000.0):
            self.beat()

    def start(self) -> "HeartbeatEmitter":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="heartbeat", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the beater thread and post one final beacon."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.beat()


class RunModel:
    """Parent-side live model folded from worker beacons.

    Tracks the latest beacon and beacon count per worker, sums the
    shipped counter deltas, and detects silence: a worker whose last
    beacon (or registration) is older than ``silence_intervals``
    heartbeat periods is reported by :meth:`flag_silent` exactly once
    (re-flagged only after it resumes beating).
    """

    def __init__(
        self,
        *,
        interval_ms: float = DEFAULT_INTERVAL_MS,
        silence_intervals: int = SILENT_INTERVALS,
    ) -> None:
        self.interval_ms = interval_ms
        self.silence_intervals = silence_intervals
        self.workers: dict[int, dict] = {}
        self.counters: dict[str, int] = {}
        self.beacons = 0
        self.silence_flags = 0
        self._last_seen: dict[int, float] = {}
        self._silent: set[int] = set()

    def register(self, worker_id: int, t: float) -> None:
        """Start the silence clock for a worker before its first beat."""
        self._last_seen.setdefault(worker_id, t)

    def fold(self, beacon: dict, t: float | None = None) -> None:
        """Fold one beacon; ``t`` is the *local-clock* arrival time.

        Beacon ``t`` fields are worker perf-counter readings on an
        arbitrary per-process epoch, so silence tracking must use the
        folder's own clock (arrival time), never the beacon's.
        """
        worker = beacon.get("worker")
        if worker is None:
            return
        self.beacons += 1
        entry = self.workers.setdefault(worker, {"beacons": 0})
        entry["beacons"] += 1
        entry["last"] = beacon
        self._last_seen[worker] = t if t is not None else now()
        self._silent.discard(worker)
        for name, value in (beacon.get("counters") or {}).items():
            self.counters[name] = self.counters.get(name, 0) + value

    def flag_silent(self, t: float) -> list[int]:
        """Worker ids newly crossing the silence threshold at time ``t``."""
        horizon = self.silence_intervals * self.interval_ms / 1000.0
        flagged: list[int] = []
        for worker, last in self._last_seen.items():
            if worker in self._silent:
                continue
            if t - last > horizon:
                self._silent.add(worker)
                self.silence_flags += 1
                flagged.append(worker)
        return flagged

    @property
    def silent(self) -> list[int]:
        return sorted(self._silent)

    def snapshot(self) -> dict:
        """JSON-able rollup for ``repro top`` / pool statistics."""
        return {
            "beacons": self.beacons,
            "workers": {
                wid: {
                    "beacons": entry["beacons"],
                    "query": entry.get("last", {}).get("query"),
                    "cell": entry.get("last", {}).get("cell"),
                    "phase": entry.get("last", {}).get("phase"),
                    "cells_done": entry.get("last", {}).get("cells_done", 0),
                }
                for wid, entry in sorted(self.workers.items())
            },
            "counters": dict(self.counters),
            "silent": self.silent,
            "silence_flags": self.silence_flags,
        }
