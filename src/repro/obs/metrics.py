"""Metrics registry: counters, timers and histograms with percentiles.

:data:`repro.smt.stats.GLOBAL_COUNTERS` answers "how many" for a fixed
set of solver events; this registry generalizes it to *named* metrics
created on demand, with distributions:

* :class:`Counter` -- a monotone integer;
* :class:`Histogram` -- recorded values with deterministic
  p50/p95/max summaries (value retention is capped; count and sum stay
  exact past the cap);
* :class:`Timer` -- a histogram of millisecond durations with a
  context-manager ``time()`` reading the injectable clock.

The registry is **delta-oriented** so the parallel workload driver can
aggregate across worker processes exactly like the solver counters:
``snapshot()`` in the worker before the batch, ``delta_since()``
after, ship the (pure-JSON) delta to the parent, and
:func:`merge_delta` folds worker deltas into one aggregate **in batch
order** -- the merged histogram value streams are deterministic given
a deterministic schedule, and the parent process's own registry is
never mixed in (no double-counting).

Everything here is plain ints/floats on purpose: metrics never touch
solver arithmetic, so SIA001's exact-zone rules do not apply.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator

from .clock import now

__all__ = [
    "Counter",
    "GLOBAL_METRICS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "merge_delta",
    "summarize_values",
]

#: Retained values per histogram.  Past the cap new values stop being
#: retained (count/total stay exact); the cap exists so a million-check
#: workload cannot hold a million floats per timer.  Deterministic: the
#: *first* ``_VALUE_CAP`` recordings are retained, no sampling.
_VALUE_CAP = 8192

#: Pid that imported this module.  A spawn worker re-imports and owns
#: its registry from zero; a fork child inherits the parent's pid here
#: while ``os.getpid()`` disagrees -- the mismatch is how the runtime
#: sanitizer (:mod:`repro.obs.sanitizer`) detects inherited registries.
_OWNER_PID = os.getpid()

#: Guards the get-or-create of every registry in this process.  The
#: lock-free fast path returns an existing metric; only the re-check +
#: insert takes the lock (double-checked locking), so two threads
#: racing on a fresh name can no longer both insert and silently drop
#: one Counter's accumulated value.
_REGISTRY_LOCK = threading.Lock()


class Counter:
    """A monotone integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins).

    Gauges report *state* (worker utilization, pool occupancy), not
    *events*.  They participate in the snapshot/delta protocol with
    last-write-wins semantics: :meth:`MetricsRegistry.snapshot` records
    each gauge's write version, :meth:`MetricsRegistry.delta_since`
    ships the current value for gauges written since the snapshot, and
    :func:`merge_delta` overwrites in merge order (ascending batch
    index), so the aggregate carries the latest state deterministically
    rather than an invented sum.
    """

    __slots__ = ("value", "version")

    def __init__(self) -> None:
        self.value = 0.0
        #: Write counter; lets ``delta_since`` distinguish "set to the
        #: same value again" from "never written" without comparing
        #: floats.
        self.version = 0

    def set(self, value: float) -> None:
        self.value = value
        self.version += 1


class Histogram:
    """Recorded values with percentile summaries (see module doc)."""

    __slots__ = ("count", "total", "max", "values")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.values: list[float] = []

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if len(self.values) < _VALUE_CAP:
            self.values.append(value)

    def summary(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "total": round(self.total, 4),
            **summarize_values(self.values, self.max),
        }


class Timer(Histogram):
    """A histogram of millisecond durations with a timing helper."""

    __slots__ = ()

    @contextmanager
    def time(self) -> Iterator[None]:
        start = now()
        try:
            yield
        finally:
            self.record((now() - start) * 1000.0)


def summarize_values(
    values: list[float], observed_max: float | None = None
) -> dict[str, float]:
    """p50/p95/max of ``values`` (0.0s when empty).

    Percentiles use the nearest-rank method on the retained values;
    ``observed_max`` (exact even past the retention cap) overrides the
    retained maximum when given.
    """
    if not values:
        return {"p50": 0.0, "p95": 0.0, "max": round(observed_max or 0.0, 4)}
    ordered = sorted(values)
    n = len(ordered)
    p50 = ordered[(n - 1) // 2]
    p95 = ordered[min(n - 1, (95 * n + 99) // 100 - 1)]
    top = observed_max if observed_max is not None else ordered[-1]
    return {"p50": round(p50, 4), "p95": round(p95, 4), "max": round(top, 4)}


class MetricsRegistry:
    """Named counters/timers/histograms, created on first use."""

    __slots__ = ("_counters", "_timers", "_histograms", "_gauges")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, Gauge] = {}

    # -- access --------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with _REGISTRY_LOCK:
                metric = self._counters.get(name)
                if metric is None:
                    metric = self._counters[name] = Counter()
        return metric

    def timer(self, name: str) -> Timer:
        metric = self._timers.get(name)
        if metric is None:
            with _REGISTRY_LOCK:
                metric = self._timers.get(name)
                if metric is None:
                    metric = self._timers[name] = Timer()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with _REGISTRY_LOCK:
                metric = self._histograms.get(name)
                if metric is None:
                    metric = self._histograms[name] = Histogram()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with _REGISTRY_LOCK:
                metric = self._gauges.get(name)
                if metric is None:
                    metric = self._gauges[name] = Gauge()
        return metric

    # -- snapshots / deltas -------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Positions of every metric, for a later :meth:`delta_since`."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "timers": {
                k: (t.count, len(t.values), t.total)
                for k, t in self._timers.items()
            },
            "histograms": {
                k: (h.count, len(h.values), h.total)
                for k, h in self._histograms.items()
            },
            "gauges": {k: g.version for k, g in self._gauges.items()},
        }

    def delta_since(self, snapshot: dict[str, Any]) -> dict[str, Any]:
        """Pure-JSON increments since ``snapshot`` (ship-able to the
        parent across a process boundary)."""
        counters = {}
        for name, metric in self._counters.items():
            delta = metric.value - snapshot.get("counters", {}).get(name, 0)
            if delta:
                counters[name] = delta
        out: dict[str, Any] = {"counters": counters}
        for kind, table in (
            ("timers", self._timers),
            ("histograms", self._histograms),
        ):
            deltas = {}
            base = snapshot.get(kind, {})
            for name, metric in table.items():
                count0, retained0, total0 = base.get(name, (0, 0, 0.0))
                added = metric.count - count0
                if not added:
                    continue
                deltas[name] = {
                    "count": added,
                    "total": round(metric.total - total0, 4),
                    "values": [round(v, 4) for v in metric.values[retained0:]],
                    "max": round(metric.max, 4),
                }
            out[kind] = deltas
        gauges = {}
        for name, gauge in self._gauges.items():
            if gauge.version != snapshot.get("gauges", {}).get(name, 0):
                gauges[name] = round(gauge.value, 4)
        out["gauges"] = gauges
        return out

    def summary(self) -> dict[str, Any]:
        """Human/JSON-facing rollup of every metric's current state."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "timers": {
                k: t.summary() for k, t in sorted(self._timers.items())
            },
            "histograms": {
                k: h.summary() for k, h in sorted(self._histograms.items())
            },
            "gauges": {
                k: round(g.value, 4) for k, g in sorted(self._gauges.items())
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()
        self._histograms.clear()
        self._gauges.clear()


def merge_delta(total: dict[str, Any], delta: dict[str, Any]) -> dict[str, Any]:
    """Fold one worker delta into the ``total`` aggregate, in call order.

    ``total`` uses the same shape as :meth:`MetricsRegistry.delta_since`
    output; start from ``{}``.  Counter increments add; timer/histogram
    deltas add counts/sums and **append** value lists in merge order, so
    the caller's ordering discipline (ascending batch index) makes the
    aggregate deterministic.  Gauge values overwrite (last write in
    merge order wins).  Deltas must come from non-overlapping windows
    (per-batch snapshots), or events would be double-counted.
    """
    for name, value in delta.get("counters", {}).items():
        bucket = total.setdefault("counters", {})
        bucket[name] = bucket.get(name, 0) + value
    for name, value in delta.get("gauges", {}).items():
        total.setdefault("gauges", {})[name] = value
    for kind in ("timers", "histograms"):
        for name, entry in delta.get(kind, {}).items():
            bucket = total.setdefault(kind, {}).setdefault(
                name, {"count": 0, "total": 0.0, "values": [], "max": 0.0}
            )
            bucket["count"] += entry.get("count", 0)
            bucket["total"] = round(bucket["total"] + entry.get("total", 0.0), 4)
            bucket["values"].extend(entry.get("values", []))
            bucket["max"] = max(bucket["max"], entry.get("max", 0.0))
    return total


#: The process-wide registry (workers ship their deltas to the parent).
GLOBAL_METRICS = MetricsRegistry()
