"""Zero-dependency span tracer emitting a JSONL event stream.

The CEGIS loop's cost structure (where does synthesis time go --
sample generation, learning, verification, counter-example mining?) is
invisible to monotone counters; this tracer records it as a tree of
**spans**:

* a span has a name, a parent, millisecond start/end offsets on the
  injectable clock (:mod:`repro.obs.clock`), and free-form attributes;
* ``Tracer.span`` is a context manager, so nesting follows the call
  structure: the span opened innermost becomes the parent of any span
  opened inside it;
* point-in-time **events** (e.g. a SAT restart) attach to the span
  open at emission time;
* every completed span is one JSON line in the sink, so traces stream,
  append, and survive crashes up to the last finished span.

Tracing is **off by default**: the module-level tracer is a
:class:`NullTracer` whose ``span()`` returns a shared no-op context
manager -- the instrumented hot paths pay one global read and one
method call.  ``repro trace`` (:mod:`repro.obs.replay`) rebuilds the
tree and renders per-phase attribution tables and a text flamegraph.

The ``phase`` attribute is the attribution label: ``repro trace``
charges a span carrying ``phase=...`` to that phase and ignores any
phase spans nested below it, so instrumentation must put phase labels
only on non-overlapping regions (the CEGIS instrumentation labels the
leaf stages Learn / Verify / CounterT / CounterF / GenerateSamples).

Wire format (one object per line)::

    {"type": "meta", "trace_id": ..., "version": 1}
    {"type": "span", "trace_id": ..., "id": 3, "parent": 2,
     "name": "cegis.learn", "t0": 12.5, "t1": 14.1,
     "attrs": {"phase": "learn"}}
    {"type": "event", "trace_id": ..., "span": 3,
     "name": "sat.restart", "t": 13.0, "attrs": {...}}
"""

from __future__ import annotations

import json
from typing import Any, Callable, IO

from .clock import Clock, get_clock

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
]

TRACE_VERSION = 1


class _NullSpan:
    """Shared do-nothing span for the tracing-disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every call is a no-op."""

    __slots__ = ()

    enabled = False
    smt_spans = False
    trace_id = ""

    def span(self, name: str, *, counters: bool = False, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def close(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Span:
    """One live span; obtained from :meth:`Tracer.span`, used as a
    context manager.  ``set()`` adds attributes until the span closes."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "t0", "t1",
                 "attrs", "_counter_base")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t0 = 0.0
        self.t1: float | None = None
        self.attrs = attrs
        self._counter_base: dict[str, int] | None = None

    def set(self, **attrs: Any) -> None:
        """Attach attributes (last write per key wins)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.t0 = self._tracer._now_ms()
        self._tracer._stack.append(self)
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        self.t1 = self._tracer._now_ms()
        if self._counter_base is not None:
            source = self._tracer._counter_source
            if source is not None:
                for key, value in source().items():
                    delta = value - self._counter_base.get(key, 0)
                    if delta:
                        self.attrs[f"ctr.{key}"] = delta
        if exc_type is not None:
            self.attrs.setdefault("error", getattr(exc_type, "__name__", "error"))
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - unbalanced exit, keep the tree sane
            try:
                stack.remove(self)
            except ValueError:
                pass
        self._tracer._emit_span(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id})"


class Tracer:
    """A live tracer writing spans to a JSONL sink.

    ``sink`` is any text-mode file-like object; the tracer never opens
    or closes paths itself (see :func:`repro.obs.install_file_tracer`
    for the owning wrapper).  ``counter_source`` is an optional
    zero-argument callable returning a ``name -> int`` snapshot
    (normally ``GLOBAL_COUNTERS.snapshot``); spans opened with
    ``counters=True`` record the nonzero deltas over their lifetime as
    ``ctr.*`` attributes -- this is how simplex pivots and SAT
    conflicts land on the phase spans without per-pivot tracing cost.
    ``smt_spans`` opts into one span per ``SmtSession.check`` (high
    volume; off by default).
    """

    __slots__ = ("trace_id", "smt_spans", "_sink", "_clock", "_origin",
                 "_stack", "_next_id", "_counter_source", "_closed")

    enabled = True

    def __init__(
        self,
        sink: IO[str],
        *,
        trace_id: str | None = None,
        clock: Clock | None = None,
        counter_source: Callable[[], dict[str, int]] | None = None,
        smt_spans: bool = False,
    ) -> None:
        self._sink = sink
        self._clock = clock or get_clock()
        self.trace_id = trace_id if trace_id is not None else _fresh_trace_id()
        self.smt_spans = smt_spans
        self._origin = self._clock.now()
        self._stack: list[Span] = []
        self._next_id = 0
        self._counter_source = counter_source
        self._closed = False
        self._write({"type": "meta", "trace_id": self.trace_id,
                     "version": TRACE_VERSION})

    # ------------------------------------------------------------------
    def span(self, name: str, *, counters: bool = False, **attrs: Any) -> Span:
        """Open a span (use as a context manager).

        ``counters=True`` snapshots the counter source on entry and
        records nonzero deltas as ``ctr.*`` attributes on exit.
        """
        self._next_id += 1
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self, name, self._next_id, parent, dict(attrs))
        if counters and self._counter_source is not None:
            span._counter_base = self._counter_source()
        return span

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event under the currently open span."""
        record: dict[str, Any] = {
            "type": "event",
            "trace_id": self.trace_id,
            "span": self._stack[-1].span_id if self._stack else None,
            "name": name,
            "t": round(self._now_ms(), 4),
        }
        if attrs:
            record["attrs"] = attrs
        self._write(record)

    def close(self) -> None:
        """Flush the sink; the tracer emits nothing afterwards."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sink.flush()
        except (OSError, ValueError):  # pragma: no cover - sink gone
            pass

    # ------------------------------------------------------------------
    def _now_ms(self) -> float:
        return (self._clock.now() - self._origin) * 1000.0

    def _emit_span(self, span: Span) -> None:
        record: dict[str, Any] = {
            "type": "span",
            "trace_id": self.trace_id,
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "t0": round(span.t0, 4),
            "t1": round(span.t1 if span.t1 is not None else span.t0, 4),
        }
        if span.attrs:
            record["attrs"] = _jsonable_attrs(span.attrs)
        self._write(record)

    def _write(self, record: dict[str, Any]) -> None:
        if self._closed:
            return
        self._sink.write(json.dumps(record, sort_keys=True) + "\n")


def _jsonable_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    """Coerce attribute values to JSON scalars (repr as a last resort)."""
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, bool)) or value is None:
            out[key] = value
        elif isinstance(value, float):
            out[key] = round(value, 6)
        else:
            out[key] = repr(value)
    return out


def _fresh_trace_id() -> str:
    import uuid

    return uuid.uuid4().hex[:16]


#: The process-wide tracer.  Instrumented code reads it via
#: :func:`get_tracer` on every use (never caches it across calls), so
#: installing a tracer mid-process takes effect immediately.
_TRACER: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The currently installed tracer (the shared null tracer when off)."""
    return _TRACER


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous
