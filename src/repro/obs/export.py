"""Metrics exporters: Prometheus text, JSON snapshots, HTTP endpoint.

The observability layer's read side for *external* consumers: where
``repro trace`` replays a finished run, these exporters expose the
**live** state of :data:`~repro.smt.stats.GLOBAL_COUNTERS` and
:data:`~repro.obs.metrics.GLOBAL_METRICS` -- the first brick of the
advisor daemon the ROADMAP sketches.

* :func:`metrics_snapshot` -- one JSON document: solver counters,
  metric summaries (timer/histogram percentiles, gauges) and the
  current injectable-clock reading.
* :func:`prometheus_text` -- the same data in the Prometheus text
  exposition format (``sia_`` prefix, dots mapped to underscores,
  timers/histograms as summaries with p50/p95 quantile labels).
* :class:`MetricsServer` / :func:`serve` -- a stdlib
  ``http.server`` endpoint (``repro serve-metrics``) answering
  ``/metrics`` (Prometheus text), ``/metrics.json`` (snapshot) and
  ``/healthz``.  Handlers only *read* the registries, so serving from
  a thread never races the pipeline's writes beyond torn-but-typed
  values -- acceptable for scrape-style consumers.

Everything is stdlib; no client library is required on either side.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .clock import now
from .metrics import GLOBAL_METRICS, MetricsRegistry

__all__ = [
    "MetricsServer",
    "metrics_snapshot",
    "prometheus_text",
    "serve",
]

#: Prefix on every exported Prometheus metric name.
_PREFIX = "sia_"


def metrics_snapshot(registry: MetricsRegistry | None = None) -> dict:
    """Live JSON snapshot of solver counters + metrics summaries."""
    from ..smt.stats import GLOBAL_COUNTERS

    registry = registry if registry is not None else GLOBAL_METRICS
    return {
        "clock_s": round(now(), 4),
        "counters": GLOBAL_COUNTERS.snapshot(),
        "metrics": registry.summary(),
    }


def _name(raw: str, suffix: str = "") -> str:
    """Map a dotted metric name to a Prometheus-legal one."""
    safe = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in raw
    )
    return f"{_PREFIX}{safe}{suffix}"


def prometheus_text(snapshot: dict | None = None) -> str:
    """Render a :func:`metrics_snapshot` as Prometheus exposition text."""
    snap = snapshot if snapshot is not None else metrics_snapshot()
    lines: list[str] = []

    def emit(name: str, kind: str, value: Any, labels: str = "") -> None:
        typed = f"# TYPE {name} {kind}"
        if typed not in lines:
            lines.append(typed)
        lines.append(f"{name}{labels} {value}")

    for name, value in sorted(snap.get("counters", {}).items()):
        emit(_name(f"solver_{name}", "_total"), "counter", value)
    metrics = snap.get("metrics", {})
    for name, value in sorted(metrics.get("counters", {}).items()):
        emit(_name(name, "_total"), "counter", value)
    for name, value in sorted(metrics.get("gauges", {}).items()):
        emit(_name(name), "gauge", value)
    for kind in ("timers", "histograms"):
        for name, summary in sorted(metrics.get(kind, {}).items()):
            base = _name(name)
            emit(f"{base}_count", "summary", summary.get("count", 0))
            lines.append(f"{base}_sum {summary.get('total', 0.0)}")
            for quantile, key in (("0.5", "p50"), ("0.95", "p95")):
                lines.append(
                    f"{base}{{quantile=\"{quantile}\"}} "
                    f"{summary.get(key, 0.0)}"
                )
    emit(_name("clock_seconds"), "gauge", snap.get("clock_s", 0.0))
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/metrics`` / ``/metrics.json`` / ``/healthz``."""

    def _respond(self, body: str, content_type: str, status: int = 200) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._respond(
                prometheus_text(), "text/plain; version=0.0.4; charset=utf-8"
            )
        elif path == "/metrics.json":
            self._respond(
                json.dumps(metrics_snapshot(), indent=2, sort_keys=True),
                "application/json",
            )
        elif path == "/healthz":
            self._respond("ok\n", "text/plain")
        else:
            self._respond("not found\n", "text/plain", status=404)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # scrape traffic is not run output


class MetricsServer:
    """A bound-but-not-yet-serving metrics endpoint.

    Binding in the constructor (port 0 supported) lets callers learn
    the actual address before blocking in :meth:`serve_forever`, and
    lets tests drive the server from a background thread.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self.host, self.port = self._server.server_address[:2]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        self._server.serve_forever()

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()


def serve(host: str = "127.0.0.1", port: int = 9109) -> None:
    """Blocking entry point for ``repro serve-metrics``."""
    server = MetricsServer(host, port)
    print(f"serving metrics on {server.url}/metrics (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
