"""``repro.obs``: the observability layer (tracing, metrics, clock).

A zero-dependency substrate the whole stack reports through:

* :mod:`repro.obs.clock` -- the injectable monotonic clock every
  duration in the repo is measured on (lint rule SIA010 pins this);
* :mod:`repro.obs.trace` -- context-manager span tracing to JSONL,
  off by default, with per-span attributes and counter deltas;
* :mod:`repro.obs.metrics` -- named counters/timers/histograms with
  worker-mergeable deltas, generalizing the solver's
  :data:`~repro.smt.stats.GLOBAL_COUNTERS`;
* :mod:`repro.obs.sanitizer` -- opt-in runtime shared-state sanitizer
  recording per-process/thread registry accesses and flagging
  fork-inherited writes (``repro bench --sanitize``);
* :mod:`repro.obs.replay` -- the ``repro trace`` replay: per-phase
  attribution tables and text flamegraphs from a trace file;
* :mod:`repro.obs.heartbeat` -- worker heartbeats over a lossy side
  channel plus the parent-side run model (``repro top``);
* :mod:`repro.obs.ledger` -- the append-only per-attempt run ledger
  and its per-query profiles (``repro report``);
* :mod:`repro.obs.export` -- Prometheus-text / JSON snapshot exporters
  and the stdlib HTTP endpoint (``repro serve-metrics``).

:func:`install_file_tracer` is the one-call entry point the CLI and
benchmarks use::

    with install_file_tracer("run.jsonl") as tracer:
        ...  # everything under here emits spans

See docs/INTERNALS.md, "Observability".
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from .clock import Clock, ManualClock, get_clock, now, set_clock
from .export import MetricsServer, metrics_snapshot, prometheus_text
from .heartbeat import (
    GLOBAL_BOARD,
    BeaconChannel,
    HeartbeatEmitter,
    RunModel,
    StatusBoard,
)
from .ledger import (
    RunLedger,
    cell_entry,
    load_ledger,
    per_query_profiles,
    render_report,
)
from .metrics import (
    GLOBAL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    merge_delta,
    summarize_values,
)
from .sanitizer import (
    SANITIZE_ENV,
    Sanitizer,
    SanitizerReport,
    install_sanitizer,
    maybe_install_sanitizer,
    summarize_reports,
    uninstall_sanitizer,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
)

__all__ = [
    "BeaconChannel",
    "Clock",
    "Counter",
    "GLOBAL_BOARD",
    "GLOBAL_METRICS",
    "Gauge",
    "HeartbeatEmitter",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_TRACER",
    "NullTracer",
    "RunLedger",
    "RunModel",
    "SANITIZE_ENV",
    "Sanitizer",
    "SanitizerReport",
    "Span",
    "StatusBoard",
    "Timer",
    "Tracer",
    "cell_entry",
    "get_clock",
    "get_tracer",
    "install_file_tracer",
    "install_sanitizer",
    "load_ledger",
    "maybe_install_sanitizer",
    "merge_delta",
    "metrics_snapshot",
    "now",
    "per_query_profiles",
    "prometheus_text",
    "render_report",
    "set_clock",
    "set_tracer",
    "summarize_reports",
    "summarize_values",
    "uninstall_sanitizer",
]


@contextmanager
def install_file_tracer(
    path: Path | str,
    *,
    trace_id: str | None = None,
    smt_spans: bool = False,
) -> Iterator[Tracer]:
    """Install a process-wide tracer writing JSONL to ``path``.

    Wires the solver counters (:data:`repro.smt.stats.GLOBAL_COUNTERS`)
    in as the tracer's counter source, so ``span(..., counters=True)``
    records solver-effort deltas (checks, conflicts, restarts, simplex
    pivots) as span attributes.  On exit the previous tracer (normally
    the null tracer) is restored and the file is closed.
    """
    # Imported here, not at module level: repro.obs must stay importable
    # below repro.smt (smt.session reads the tracer at check time).
    from ..smt.stats import GLOBAL_COUNTERS

    sink = open(path, "w", encoding="utf-8")
    try:
        tracer = Tracer(
            sink,
            trace_id=trace_id,
            counter_source=GLOBAL_COUNTERS.snapshot,
            smt_spans=smt_spans,
        )
        previous = set_tracer(tracer)
    except BaseException:
        sink.close()
        raise
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.close()
        sink.close()
