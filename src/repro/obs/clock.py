"""The injectable monotonic clock: the single sanctioned time source.

Every duration measured anywhere in :mod:`repro` flows through this
module (lint rule SIA010 rejects direct ``time.time()`` /
``time.perf_counter()`` calls outside ``obs/``), for two reasons:

* **Deterministic traces in tests.**  Swapping in a
  :class:`ManualClock` makes span durations, timer histograms and
  ``Timings`` breakdowns exact, so tests can assert on attribution
  tables instead of sleeping and hoping.
* **One overhead budget.**  The tracer, the metrics registry and the
  engine's operator stats all pay the same per-read cost, so the
  "tracing disabled" fast path is a single indirect call on top of
  ``time.perf_counter`` (~100ns), not a policy decision per call site.

``now()`` returns *seconds* on an arbitrary monotonic epoch, matching
``time.perf_counter``; callers convert to milliseconds at the edge.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "ManualClock", "get_clock", "set_clock", "now"]


class Clock:
    """Monotonic clock; the default reads ``time.perf_counter``."""

    __slots__ = ()

    def now(self) -> float:
        """Seconds since an arbitrary fixed epoch (monotonic)."""
        return time.perf_counter()


class ManualClock(Clock):
    """A clock tests drive by hand: ``now()`` only moves on ``advance``."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward (negative advances are rejected)."""
        if seconds < 0:
            raise ValueError("monotonic clocks cannot go backwards")
        self._now += seconds


_CLOCK: Clock = Clock()


def get_clock() -> Clock:
    """The currently installed clock."""
    return _CLOCK


def set_clock(clock: Clock) -> Clock:
    """Install ``clock`` process-wide; returns the previous one so
    tests can restore it in a ``finally``."""
    global _CLOCK
    previous = _CLOCK
    _CLOCK = clock
    return previous


def now() -> float:
    """Shorthand for ``get_clock().now()`` (the common call shape)."""
    return _CLOCK.now()
