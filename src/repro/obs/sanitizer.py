"""Opt-in runtime shared-state sanitizer (TSan-lite).

The static concurrency rules (:mod:`repro.analysis.concurrency`,
SIA501-504) reason about *source*; this module checks the same
contract on *live processes*.  When installed it wraps the two
process-global registries --
:data:`repro.smt.stats.GLOBAL_COUNTERS` and
:data:`repro.obs.metrics.GLOBAL_METRICS` -- and records every access
as an aggregate count keyed by (registry, site, pid, tid, op), cheap
enough to leave on for a whole benchmark run:

* ``SolverCounters.__setattr__`` is patched so every counter write
  notes the writing process and thread;
* the ``MetricsRegistry`` accessors (``counter``/``timer``/
  ``histogram``) note which process touched which metric table.

Two things are **violations**:

* a write from a process whose pid differs from the registry module's
  import-time owner pid -- the registry was inherited warm across a
  ``fork``, exactly the hazard the spawn contract (SIA502) exists to
  prevent; under spawn the worker re-imports the module and owns its
  registry from zero;
* counter writes from more than one thread of the same process --
  ``SolverCounters`` is a plain dataclass with no lock, so cross-thread
  ``+=`` loses updates (SIA501/SIA503 at runtime).

Violations additionally emit ``sanitizer.violation`` events into the
PR 4 trace stream (:mod:`repro.obs.trace`), so ``repro trace`` replay
shows *when* the cross-process write happened.

Activation: ``repro bench --parallel N --sanitize`` installs the
sanitizer in the parent and exports :data:`SANITIZE_ENV` so spawned
workers self-install at entry (:func:`maybe_install_sanitizer` in
``repro.bench.parallel._worker_main``).  Workers ship their drained
reports back with the batch deltas; :func:`summarize_reports` folds
them into the run-level summary the CLI prints and CI gates on.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any

from . import metrics as _metrics
from .trace import get_tracer

__all__ = [
    "SANITIZE_ENV",
    "Sanitizer",
    "SanitizerReport",
    "install_sanitizer",
    "maybe_install_sanitizer",
    "summarize_reports",
    "uninstall_sanitizer",
]

#: Environment flag the parent exports so spawned workers self-install.
SANITIZE_ENV = "REPRO_SANITIZE"

#: Serializes install/uninstall and the class-level patching they do.
_INSTALL_LOCK = threading.Lock()

#: Original attributes the install patched, for restoration.
_ORIGINALS: dict[str, Any] = {}

_ACTIVE: "Sanitizer | None" = None


@dataclass
class SanitizerReport:
    """Drained access log of one process, JSON-able for transit."""

    pid: int
    accesses: list[dict] = field(default_factory=list)
    violations: list[dict] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "accesses": self.accesses,
            "violations": self.violations,
        }


class Sanitizer:
    """Access recorder for the patched registries (one per process)."""

    def __init__(self, owners: dict[str, int]) -> None:
        self._owners = owners
        self._lock = threading.Lock()
        # (registry, site, pid, tid, op) -> count
        self._accesses: dict[tuple[str, str, int, int, str], int] = {}
        self._violations: list[dict] = []
        self._reported: set[tuple[str, str, int]] = set()

    def record(self, registry: str, site: str, op: str) -> None:
        """Note one access; called from the patched registry methods."""
        pid = os.getpid()
        tid = threading.get_ident()
        owner = self._owners.get(registry, pid)
        with self._lock:
            key = (registry, site, pid, tid, op)
            self._accesses[key] = self._accesses.get(key, 0) + 1
            if op == "write" and pid != owner:
                dedup = (registry, site, pid)
                if dedup not in self._reported:
                    self._reported.add(dedup)
                    violation = {
                        "kind": "fork-inherited-write",
                        "registry": registry,
                        "site": site,
                        "pid": pid,
                        "owner_pid": owner,
                        "message": (
                            f"{registry}.{site} written by pid {pid} but "
                            f"owned by pid {owner}: the registry was "
                            "inherited warm across a fork"
                        ),
                    }
                    self._violations.append(violation)
                    get_tracer().event(
                        "sanitizer.violation",
                        kind="fork-inherited-write",
                        registry=registry,
                        site=site,
                        pid=pid,
                        owner_pid=owner,
                    )

    def drain(self) -> SanitizerReport:
        """Return and clear everything recorded so far by this process.

        Cross-thread counter writes are diagnosed here rather than in
        :meth:`record` -- they are only visible once all threads'
        accesses sit side by side.
        """
        with self._lock:
            accesses = [
                {
                    "registry": registry,
                    "site": site,
                    "pid": pid,
                    "tid": tid,
                    "op": op,
                    "count": count,
                }
                for (registry, site, pid, tid, op), count in sorted(
                    self._accesses.items()
                )
            ]
            violations = list(self._violations)
            writer_tids: dict[tuple[str, int], set[int]] = {}
            for (registry, _site, pid, tid, op) in self._accesses:
                if op == "write" and registry == "GLOBAL_COUNTERS":
                    writer_tids.setdefault((registry, pid), set()).add(tid)
            for (registry, pid), tids in sorted(writer_tids.items()):
                if len(tids) > 1:
                    violations.append(
                        {
                            "kind": "cross-thread-write",
                            "registry": registry,
                            "pid": pid,
                            "threads": len(tids),
                            "message": (
                                f"{registry} written by {len(tids)} "
                                f"threads of pid {pid} without a lock; "
                                "+= interleavings lose updates"
                            ),
                        }
                    )
            self._accesses.clear()
            self._violations.clear()
            self._reported.clear()
        return SanitizerReport(
            pid=os.getpid(), accesses=accesses, violations=violations
        )


def install_sanitizer() -> Sanitizer:
    """Patch the registries and start recording; idempotent."""
    global _ACTIVE
    # Imported here, not at module level: repro.obs must stay importable
    # below repro.smt (mirrors install_file_tracer).
    from ..smt import stats as _stats

    with _INSTALL_LOCK:
        if _ACTIVE is not None:
            return _ACTIVE
        sanitizer = Sanitizer(
            owners={
                "GLOBAL_COUNTERS": _stats._OWNER_PID,
                "GLOBAL_METRICS": _metrics._OWNER_PID,
            }
        )

        original_setattr = _stats.SolverCounters.__setattr__
        _ORIGINALS["SolverCounters.__setattr__"] = original_setattr

        def _traced_setattr(
            self: Any,
            name: str,
            value: Any,
            _orig: Any = original_setattr,
            _global: Any = _stats.GLOBAL_COUNTERS,
        ) -> None:
            active = _ACTIVE
            if active is not None and self is _global:
                active.record("GLOBAL_COUNTERS", name, "write")
            _orig(self, name, value)

        _stats.SolverCounters.__setattr__ = _traced_setattr  # type: ignore[method-assign]

        for accessor in ("counter", "timer", "histogram", "gauge"):
            original = getattr(_metrics.MetricsRegistry, accessor)
            _ORIGINALS[f"MetricsRegistry.{accessor}"] = original

            def _traced_accessor(
                self: Any,
                name: str,
                _orig: Any = original,
                _accessor: str = accessor,
            ) -> Any:
                active = _ACTIVE
                if active is not None and self is _metrics.GLOBAL_METRICS:
                    active.record(
                        "GLOBAL_METRICS", f"{_accessor}:{name}", "touch"
                    )
                return _orig(self, name)

            setattr(_metrics.MetricsRegistry, accessor, _traced_accessor)

        _ACTIVE = sanitizer
        return sanitizer


def uninstall_sanitizer() -> None:
    """Restore the patched registries; no-op when not installed."""
    global _ACTIVE
    from ..smt import stats as _stats

    with _INSTALL_LOCK:
        if _ACTIVE is None:
            return
        _stats.SolverCounters.__setattr__ = _ORIGINALS.pop(  # type: ignore[method-assign]
            "SolverCounters.__setattr__"
        )
        for accessor in ("counter", "timer", "histogram", "gauge"):
            setattr(
                _metrics.MetricsRegistry,
                accessor,
                _ORIGINALS.pop(f"MetricsRegistry.{accessor}"),
            )
        _ACTIVE = None


def maybe_install_sanitizer() -> Sanitizer | None:
    """The active sanitizer, installing from :data:`SANITIZE_ENV`.

    Worker entry points call this: under ``--sanitize`` the parent
    exports the flag before dispatching, so spawned workers (fresh
    interpreters, no inherited install) activate themselves.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    if os.environ.get(SANITIZE_ENV) != "1":
        return None
    return install_sanitizer()


def summarize_reports(reports: list[dict]) -> dict[str, Any]:
    """Fold per-process report JSONs into one run-level summary."""
    pids: set[int] = set()
    total = 0
    by_registry: dict[str, int] = {}
    violations: list[dict] = []
    for report in reports:
        pids.add(report.get("pid", 0))
        for access in report.get("accesses", []):
            total += access.get("count", 0)
            registry = access.get("registry", "?")
            by_registry[registry] = (
                by_registry.get(registry, 0) + access.get("count", 0)
            )
        violations.extend(report.get("violations", []))
    return {
        "processes": len(pids),
        "accesses": total,
        "by_registry": dict(sorted(by_registry.items())),
        "violations": violations,
    }
