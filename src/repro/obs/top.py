"""``repro top``: live terminal view of a telemetry-enabled bench run.

Reads ``heartbeats.jsonl`` (see :mod:`repro.obs.heartbeat` for the wire
format) and renders a one-screen rollup: driver progress and queue
depth, per-worker current position, silence flags, folded solver
counters, and the running p50/p95 of *query completion* times derived
from consecutive ``driver`` lines.

Pure stdlib and strictly read-only: ``--once`` prints a single frame
(CI-friendly); live mode re-reads the file every ``interval`` seconds
and repaints with an ANSI clear.  All timestamps come from the parent
driver's clock (``rx`` on beacon lines, ``t`` on driver lines), which
share one epoch; worker-side ``t`` values do not and are ignored.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .heartbeat import DEFAULT_INTERVAL_MS, SILENT_INTERVALS
from .metrics import summarize_values

__all__ = ["load_feed", "render_top", "run_top"]


def load_feed(path: Path | str) -> dict:
    """Fold a heartbeat log into a renderable state dict.

    Tolerant of torn trailing lines (the writer flushes per line, but a
    reader can still catch a partial write) and unknown line types.
    """
    workers: dict[int, dict] = {}
    counters: dict[str, int] = {}
    driver: dict = {}
    silent: set[int] = set()
    completions: list[float] = []
    last_driver_t: float | None = None
    last_done = 0
    beacons = 0
    ended = False
    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except OSError:
        lines = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        kind = record.get("type")
        if kind == "beacon":
            wid = record.get("worker")
            if wid is None:
                continue
            beacons += 1
            entry = workers.setdefault(wid, {"beacons": 0})
            entry["beacons"] += 1
            entry["last"] = record
            silent.discard(wid)
            for name, value in (record.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + value
        elif kind == "driver":
            done = record.get("done", 0)
            t = record.get("t")
            if t is not None and last_driver_t is not None and done > last_done:
                # Per-completion elapsed: dt spread over the queries
                # finishing in this window.
                per_query = (t - last_driver_t) * 1000.0 / (done - last_done)
                completions.extend([per_query] * (done - last_done))
            if t is not None:
                last_driver_t = t
            last_done = done
            driver = record
        elif kind == "silence":
            wid = record.get("worker")
            if wid is not None:
                silent.add(wid)
        elif kind == "end":
            ended = True
    return {
        "workers": workers,
        "counters": counters,
        "driver": driver,
        "silent": sorted(silent),
        "completions": completions,
        "beacons": beacons,
        "ended": ended,
        "last_t": last_driver_t,
    }


def _age(state: dict, record: dict) -> str:
    """Beacon age relative to the newest driver timestamp, if knowable."""
    rx = record.get("rx")
    last_t = state.get("last_t")
    if rx is None or last_t is None:
        return "-"
    return f"{max(last_t - rx, 0.0):.1f}s"


def render_top(state: dict) -> str:
    """One frame of the live view, as plain text."""
    driver = state["driver"]
    lines: list[str] = []
    done = driver.get("done", 0)
    total = driver.get("total", "?")
    status = "finished" if state["ended"] else "running"
    lines.append(
        f"run {status}: {done}/{total} queries done, "
        f"queue depth {driver.get('queue_depth', 0)}, "
        f"steals={driver.get('steals', 0)} "
        f"requeues={driver.get('requeues', 0)}"
    )
    active = sum(
        1
        for entry in state["workers"].values()
        if entry.get("last", {}).get("phase") not in (None, "idle")
    )
    lines.append(
        f"workers: {len(state['workers'])} seen, {active} active, "
        f"{len(state['silent'])} silent; {state['beacons']} beacon(s)"
    )
    if state["completions"]:
        summary = summarize_values(state["completions"])
        lines.append(
            f"query completion p50/p95: "
            f"{summary['p50']:.1f}/{summary['p95']:.1f} ms "
            f"over {len(state['completions'])} completion(s)"
        )
    if state["counters"]:
        top_counters = sorted(
            state["counters"].items(), key=lambda kv: -kv[1]
        )[:6]
        lines.append(
            "counters: "
            + " ".join(f"{name}={value}" for name, value in top_counters)
        )
    lines.append("")
    headers = ["worker", "phase", "query", "cell", "done", "beacons", "age"]
    body = []
    for wid in sorted(state["workers"]):
        entry = state["workers"][wid]
        last = entry.get("last", {})
        flag = " (silent)" if wid in state["silent"] else ""
        body.append(
            [
                f"{wid}{flag}",
                str(last.get("phase") or "-"),
                str(last.get("query") if last.get("query") is not None else "-"),
                str(last.get("cell") or "-"),
                str(last.get("cells_done", 0)),
                str(entry["beacons"]),
                _age(state, last),
            ]
        )
    if not body:
        lines.append("no worker beacons yet")
        return "\n".join(lines)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in body))
        for i in range(len(headers))
    ]

    def fmt(cells: list[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in body)
    return "\n".join(lines)


def run_top(
    path: Path | str,
    *,
    once: bool = False,
    interval_s: float = DEFAULT_INTERVAL_MS * SILENT_INTERVALS / 1000.0,
) -> int:
    """Entry point for ``repro top``; returns a process exit code."""
    path = Path(path)
    if not path.exists():
        print(f"top: no heartbeat log at {path} (run bench with --telemetry)")
        return 1
    if once:
        print(render_top(load_feed(path)))
        return 0
    try:
        while True:
            state = load_feed(path)
            # ANSI home+clear keeps the frame in place like top(1).
            print("\x1b[H\x1b[2J" + render_top(state), flush=True)
            if state["ended"]:
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0
