"""Replay a JSONL trace into attribution tables and a text flamegraph.

This is the read side of :mod:`repro.obs.trace`, behind the ``repro
trace`` CLI subcommand.  Given a trace file it rebuilds the span
forest and renders:

* a **per-phase attribution table** -- every span carrying a ``phase``
  attribute is charged to that phase (nested phase spans are ignored:
  only the outermost phase span on any root-to-leaf path counts, so a
  ``verify`` span calling back into a traced helper is not counted
  twice).  The residue row ``(untraced)`` absorbs wall-clock time no
  phase span covers, so the table always sums to the trace wall-clock;
* a **text flamegraph** -- spans aggregated by root-to-leaf name path,
  with bars scaled to the wall-clock and inclusive/percentage columns;
* ``--json`` emits the same data machine-readably for CI trend checks.

Wall-clock is ``max(t1) - min(t0)`` over all spans: for the
single-process traces the instrumentation produces, that is the
distance from the first span opening to the last span closing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .metrics import summarize_values

__all__ = [
    "SpanNode",
    "TraceReplay",
    "load_trace",
    "render_flamegraph",
    "render_phase_table",
    "replay_to_json",
]


@dataclass
class SpanNode:
    """One completed span, linked into the reconstructed forest."""

    span_id: int
    parent_id: int | None
    name: str
    t0: float
    t1: float
    attrs: dict = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def duration_ms(self) -> float:
        return self.t1 - self.t0

    @property
    def phase(self) -> str | None:
        phase = self.attrs.get("phase")
        return phase if isinstance(phase, str) else None


@dataclass
class TraceReplay:
    """A parsed trace: span forest plus the loose events."""

    trace_id: str = ""
    spans: dict[int, SpanNode] = field(default_factory=dict)
    roots: list[SpanNode] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    malformed_lines: int = 0

    @property
    def wall_ms(self) -> float:
        if not self.spans:
            return 0.0
        nodes = self.spans.values()
        return max(n.t1 for n in nodes) - min(n.t0 for n in nodes)

    def gauges(self) -> dict[str, float]:
        """Gauge values recorded as ``metrics.gauge`` events.

        The bench CLI emits one event per gauge at end of run;
        last-write-wins when a gauge was recorded more than once, same
        as the registry semantics.
        """
        out: dict[str, float] = {}
        for record in self.events:
            if record.get("name") != "metrics.gauge":
                continue
            attrs = record.get("attrs") or {}
            name, value = attrs.get("gauge"), attrs.get("value")
            if isinstance(name, str) and isinstance(value, (int, float)):
                out[name] = float(value)
        return out

    # ------------------------------------------------------------------
    def phase_totals(self) -> dict[str, dict]:
        """Aggregate outermost phase spans: phase -> stats.

        Walks each root; the first span carrying a ``phase`` attribute
        on a path claims its whole subtree (nested phase spans are
        attribution labels for *non-overlapping* regions -- see
        :mod:`repro.obs.trace` -- so anything below is double-cover).
        """
        durations: dict[str, list[float]] = {}
        counters: dict[str, dict[str, int]] = {}
        stack = list(self.roots)
        while stack:
            node = stack.pop()
            phase = node.phase
            if phase is None:
                stack.extend(node.children)
                continue
            durations.setdefault(phase, []).append(node.duration_ms)
            bucket = counters.setdefault(phase, {})
            for key, value in node.attrs.items():
                if key.startswith("ctr.") and isinstance(value, int):
                    bucket[key[4:]] = bucket.get(key[4:], 0) + value
        out: dict[str, dict] = {}
        for phase, values in durations.items():
            out[phase] = {
                "count": len(values),
                "total_ms": round(sum(values), 4),
                **summarize_values(values),
                "counters": counters.get(phase, {}),
            }
        return out

    def path_totals(self) -> list[tuple[tuple[str, ...], int, float]]:
        """Flamegraph input: (name path, count, inclusive ms), sorted
        depth-first with heaviest siblings first."""
        totals: dict[tuple[str, ...], list[float]] = {}

        def walk(node: SpanNode, prefix: tuple[str, ...]) -> None:
            path = prefix + (node.name,)
            totals.setdefault(path, []).append(node.duration_ms)
            for child in node.children:
                walk(child, path)

        for root in self.roots:
            walk(root, ())

        def sort_key(path: tuple[str, ...]) -> tuple:
            # Depth-first: order each path by the inclusive time of its
            # ancestors at every level, heaviest first.
            key = []
            for depth in range(len(path)):
                prefix = path[: depth + 1]
                key.append((-sum(totals[prefix]), prefix[-1]))
            return tuple(key)

        return [
            (path, len(values), sum(values))
            for path, values in sorted(totals.items(), key=lambda kv: sort_key(kv[0]))
        ]


def load_trace(path: Path | str) -> TraceReplay:
    """Parse a JSONL trace file into a :class:`TraceReplay`.

    Tolerant of torn final lines (a crashed run is exactly when a trace
    is most interesting); malformed lines are counted, not fatal.
    """
    replay = TraceReplay()
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                replay.malformed_lines += 1
                continue
            kind = record.get("type")
            if kind == "meta":
                replay.trace_id = record.get("trace_id", "")
            elif kind == "span":
                try:
                    node = SpanNode(
                        span_id=int(record["id"]),
                        parent_id=record.get("parent"),
                        name=str(record["name"]),
                        t0=float(record["t0"]),
                        t1=float(record["t1"]),
                        attrs=record.get("attrs") or {},
                    )
                except (KeyError, TypeError, ValueError):
                    replay.malformed_lines += 1
                    continue
                replay.spans[node.span_id] = node
            elif kind == "event":
                replay.events.append(record)
            else:
                replay.malformed_lines += 1
    # Spans are emitted at close, children before parents; link the
    # forest in a second pass.  An orphan (parent never closed, e.g. a
    # crash mid-span) is promoted to a root rather than dropped.
    for node in replay.spans.values():
        parent = (
            replay.spans.get(node.parent_id)
            if node.parent_id is not None
            else None
        )
        if parent is None:
            replay.roots.append(node)
        else:
            parent.children.append(node)
    for node in replay.spans.values():
        node.children.sort(key=lambda child: (child.t0, child.span_id))
    replay.roots.sort(key=lambda root: (root.t0, root.span_id))
    return replay


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
UNTRACED = "(untraced)"


def attribution_rows(replay: TraceReplay) -> list[dict]:
    """Phase rows (heaviest first) plus the ``(untraced)`` residue row.

    Row shares are fractions of the trace wall-clock; the ``total_ms``
    column sums to the wall-clock by construction (the residue row is
    defined as the difference), which is what makes the table an
    *attribution* rather than a sampling.
    """
    wall = replay.wall_ms
    phases = replay.phase_totals()
    rows = [
        {"phase": name, **stats} for name, stats in phases.items()
    ]
    rows.sort(key=lambda row: (-row["total_ms"], row["phase"]))
    covered = sum(row["total_ms"] for row in rows)
    residue = round(wall - covered, 4)
    if rows and residue > 0:
        rows.append(
            {
                "phase": UNTRACED,
                "count": 0,
                "total_ms": residue,
                "p50": 0.0,
                "p95": 0.0,
                "max": 0.0,
                "counters": {},
            }
        )
    for row in rows:
        row["share"] = round(row["total_ms"] / wall, 4) if wall > 0 else 0.0
    return rows


def render_phase_table(replay: TraceReplay) -> str:
    """The per-phase attribution table as aligned text."""
    rows = attribution_rows(replay)
    if not rows:
        return "no phase spans in trace (nothing to attribute)"
    headers = ["phase", "count", "total ms", "p50", "p95", "max", "share"]
    body = [
        [
            row["phase"],
            str(row["count"]),
            f"{row['total_ms']:.1f}",
            f"{row['p50']:.1f}",
            f"{row['p95']:.1f}",
            f"{row['max']:.1f}",
            f"{row['share'] * 100.0:5.1f}%",
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in body))
        for i in range(len(headers))
    ]
    def fmt(cells: list[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(cells)
        ).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(line) for line in body)
    lines.append("")
    lines.append(
        f"wall-clock {replay.wall_ms:.1f} ms over {len(replay.spans)} spans"
        + (f" (trace {replay.trace_id})" if replay.trace_id else "")
    )
    gauges = replay.gauges()
    if gauges:
        lines.append(
            "gauges: "
            + " ".join(
                f"{name}={value}" for name, value in sorted(gauges.items())
            )
        )
    return "\n".join(lines)


def render_flamegraph(
    replay: TraceReplay, *, width: int = 40, depth: int | None = None
) -> str:
    """Indented inclusive-time tree with bars scaled to wall-clock.

    ``depth`` truncates the tree below that many levels (deep SMT spans
    would otherwise dwarf the interesting CEGIS structure).
    """
    wall = replay.wall_ms
    if not replay.spans or wall <= 0:
        return "empty trace"
    lines = []
    for path, count, total in replay.path_totals():
        if depth is not None and len(path) > depth:
            continue
        share = total / wall
        bar = "#" * max(1, round(share * width)) if total > 0 else ""
        label = "  " * (len(path) - 1) + path[-1]
        suffix = f" x{count}" if count > 1 else ""
        lines.append(
            f"{label:<44} {total:>9.1f}ms {share * 100.0:>5.1f}% "
            f"{bar}{suffix}"
        )
    return "\n".join(lines)


def replay_to_json(replay: TraceReplay) -> dict:
    """Machine-readable replay summary (the ``--json`` payload)."""
    return {
        "trace_id": replay.trace_id,
        "wall_ms": round(replay.wall_ms, 4),
        "spans": len(replay.spans),
        "events": len(replay.events),
        "malformed_lines": replay.malformed_lines,
        "phases": {row.pop("phase"): row for row in attribution_rows(replay)},
        "gauges": replay.gauges(),
    }
