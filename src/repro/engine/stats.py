"""Execution statistics and the tuple-flow cost model.

Absolute wall-clock depends on the host, so the benchmarks also report
``tuples_processed`` -- the number of tuples entering each operator --
which is the quantity predicate pushdown actually reduces and tracks
the paper's Postgres timings in shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OperatorStats:
    label: str
    rows_in: int
    rows_out: int
    elapsed_ms: float


@dataclass
class ExecutionStats:
    operators: list[OperatorStats] = field(default_factory=list)
    elapsed_ms: float = 0.0
    peak_bytes: int = 0

    def record(self, label: str, rows_in: int, rows_out: int, elapsed_ms: float) -> None:
        self.operators.append(OperatorStats(label, rows_in, rows_out, elapsed_ms))

    def note_bytes(self, nbytes: int) -> None:
        self.peak_bytes = max(self.peak_bytes, nbytes)

    @property
    def tuples_processed(self) -> int:
        """Sum of tuples entering every operator (the cost proxy)."""
        return sum(op.rows_in for op in self.operators)

    @property
    def join_input_tuples(self) -> int:
        return sum(
            op.rows_in for op in self.operators if op.label.startswith("HashJoin")
        )

    def summary(self) -> str:
        lines = [f"total {self.elapsed_ms:.1f} ms, {self.tuples_processed} tuples"]
        for op in self.operators:
            lines.append(
                f"  {op.label}: in={op.rows_in} out={op.rows_out} ({op.elapsed_ms:.1f} ms)"
            )
        return "\n".join(lines)
