"""Table statistics and cardinality estimation.

A light version of what a real optimizer keeps: per-column equi-width
histograms plus null fractions, and a selectivity estimator over the
predicate IR.  Used to (a) pick the cheaper build side before
execution, and (b) let callers predict whether a synthesized predicate
is worth pushing down without touching the full table (the
:mod:`repro.rewrite.advisor` samples data directly; this module
estimates from pre-built sketches, which is what a production
integration would do).

Estimation rules are the textbook ones: histograms answer range
predicates; equality gets 1/ndv; AND multiplies, OR adds with the
inclusion-exclusion correction; unknown shapes fall back to fixed
default selectivities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..predicates import (
    Col,
    Column,
    Comparison,
    FALSE_PRED,
    IsNull,
    Lit,
    PAnd,
    PNot,
    POr,
    Pred,
    TRUE_PRED,
)
from ..predicates.eval import _encode_literal_epoch
from .table import Table

DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_COMPLEX_SELECTIVITY = 1.0 / 3.0


@dataclass
class ColumnStats:
    """Equi-width histogram sketch of one column."""

    count: int
    null_fraction: float
    min_value: float
    max_value: float
    distinct: int
    bucket_edges: np.ndarray  # len B+1
    bucket_counts: np.ndarray  # len B

    @classmethod
    def from_array(
        cls, values: np.ndarray, nulls: np.ndarray | None, *, buckets: int = 32
    ) -> "ColumnStats":
        total = len(values)
        if nulls is not None:
            valid = values[~nulls]
            null_fraction = 1.0 - len(valid) / max(total, 1)
        else:
            valid = values
            null_fraction = 0.0
        if len(valid) == 0:
            return cls(total, null_fraction, 0.0, 0.0, 0, np.zeros(2), np.zeros(1))
        lo = float(valid.min())
        hi = float(valid.max())
        counts, edges = np.histogram(valid.astype(np.float64), bins=buckets)
        distinct = int(min(len(np.unique(valid)), 10**7))
        return cls(total, null_fraction, lo, hi, distinct, edges, counts)

    # ------------------------------------------------------------------
    def fraction_below(self, value: float, *, inclusive: bool) -> float:
        """Estimated fraction of non-null values ``< value`` (or <=)."""
        if self.count == 0 or self.bucket_counts.sum() == 0:
            return 0.5
        if value < self.min_value:
            return 0.0
        if value > self.max_value:
            return 1.0
        total = float(self.bucket_counts.sum())
        acc = 0.0
        for i, count in enumerate(self.bucket_counts):
            lo, hi = self.bucket_edges[i], self.bucket_edges[i + 1]
            if value >= hi:
                acc += count
            elif value > lo:
                width = hi - lo
                partial = (value - lo) / width if width > 0 else 0.5
                acc += count * partial
                break
            else:
                break
        fraction = acc / total
        if inclusive and self.distinct:
            fraction = min(1.0, fraction + 1.0 / self.distinct)
        return float(np.clip(fraction, 0.0, 1.0))

    def fraction_equal(self) -> float:
        if self.distinct <= 0:
            return DEFAULT_EQ_SELECTIVITY
        return min(1.0, 1.0 / self.distinct)


@dataclass
class TableStats:
    """Statistics for one table."""

    table: str
    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    @classmethod
    def from_table(cls, table: Table, *, buckets: int = 32) -> "TableStats":
        stats = cls(table.name, table.num_rows)
        for name, values in table.columns.items():
            stats.columns[name] = ColumnStats.from_array(
                values, table.nulls.get(name), buckets=buckets
            )
        return stats

    def column(self, column: Column) -> ColumnStats | None:
        return self.columns.get(column.name)


def estimate_selectivity(pred: Pred, stats: TableStats) -> float:
    """Estimated fraction of rows a predicate keeps (clamped [0, 1])."""
    if pred is TRUE_PRED:
        return 1.0
    if pred is FALSE_PRED:
        return 0.0
    if isinstance(pred, PAnd):
        result = 1.0
        for arg in pred.args:
            result *= estimate_selectivity(arg, stats)
        return result
    if isinstance(pred, POr):
        result = 0.0
        for arg in pred.args:
            part = estimate_selectivity(arg, stats)
            result = result + part - result * part
        return result
    if isinstance(pred, PNot):
        return 1.0 - estimate_selectivity(pred.arg, stats)
    if isinstance(pred, IsNull):
        fractions = [
            (stats.column(c).null_fraction if stats.column(c) else 0.0)
            for c in pred.columns()
        ]
        any_null = max(fractions, default=0.0)
        return 1.0 - any_null if pred.negated else any_null
    if isinstance(pred, Comparison):
        return _estimate_comparison(pred, stats)
    return DEFAULT_COMPLEX_SELECTIVITY


def _estimate_comparison(pred: Comparison, stats: TableStats) -> float:
    """col OP literal uses the histogram; anything else gets defaults."""
    if isinstance(pred.left, Col) and isinstance(pred.right, Lit):
        column, literal, op = pred.left.column, pred.right, pred.op
    elif isinstance(pred.right, Col) and isinstance(pred.left, Lit):
        column, literal = pred.right.column, pred.left
        op = _mirror(pred.op)
    else:
        if pred.op == "=":
            return DEFAULT_EQ_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY

    col_stats = stats.column(column)
    if col_stats is None:
        return DEFAULT_RANGE_SELECTIVITY
    value = float(_encode_literal_epoch(literal))
    not_null = 1.0 - col_stats.null_fraction
    if op == "=":
        return col_stats.fraction_equal() * not_null
    if op == "!=":
        return (1.0 - col_stats.fraction_equal()) * not_null
    if op == "<":
        return col_stats.fraction_below(value, inclusive=False) * not_null
    if op == "<=":
        return col_stats.fraction_below(value, inclusive=True) * not_null
    if op == ">":
        return (1.0 - col_stats.fraction_below(value, inclusive=True)) * not_null
    # >=
    return (1.0 - col_stats.fraction_below(value, inclusive=False)) * not_null


def _mirror(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[op]


def estimate_rows(pred: Pred, stats: TableStats) -> int:
    """Estimated surviving row count after filtering."""
    return int(round(stats.row_count * estimate_selectivity(pred, stats)))
