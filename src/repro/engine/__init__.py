"""Columnar relational execution engine with a pushdown optimizer.

Stands in for PostgreSQL in the paper's runtime experiments (DESIGN.md,
substitution table): the mechanism Sia exploits -- pushing synthesized
single-table predicates below the join -- is reproduced by
:func:`build_plan`'s pushdown pass plus the hash-join executor whose
cost scales with input cardinalities.
"""

from .catalog import Catalog
from .executor import execute
from .optimizer import build_plan, push_filter_below_aggregate, split_where
from .plan import (
    Aggregate,
    AggSpec,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
)
from .statistics import ColumnStats, TableStats, estimate_rows, estimate_selectivity
from .stats import ExecutionStats, OperatorStats
from .table import Relation, Table

__all__ = [
    "Aggregate",
    "AggSpec",
    "Catalog",
    "ColumnStats",
    "ExecutionStats",
    "Filter",
    "HashJoin",
    "Limit",
    "OperatorStats",
    "PlanNode",
    "Project",
    "Relation",
    "Scan",
    "Sort",
    "Table",
    "TableStats",
    "build_plan",
    "estimate_rows",
    "estimate_selectivity",
    "execute",
    "push_filter_below_aggregate",
    "split_where",
]
