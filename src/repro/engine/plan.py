"""Logical query plans.

The plan language covers what the paper's evaluation needs: scans,
filters, hash equi-joins, projections and (for completeness of the
substrate) grouped aggregation.  Plans are immutable trees; the
executor walks them bottom-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..predicates import Column, Pred


class PlanNode:
    """Base class of logical plan operators."""

    __slots__ = ()

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def describe(self, indent: int = 0) -> str:
        """EXPLAIN-style rendering."""
        line = " " * indent + self._label()
        parts = [line]
        for child in self.children():
            parts.append(child.describe(indent + 2))
        return "\n".join(parts)

    def _label(self) -> str:  # pragma: no cover - overridden
        return type(self).__name__


@dataclass(frozen=True)
class Scan(PlanNode):
    table: str

    def _label(self) -> str:
        return f"Scan({self.table})"


@dataclass(frozen=True)
class Filter(PlanNode):
    child: PlanNode
    predicate: Pred

    def children(self):
        return (self.child,)

    def _label(self) -> str:
        return f"Filter({self.predicate!r})"


@dataclass(frozen=True)
class HashJoin(PlanNode):
    """Inner equi-join; build side is ``left``."""

    left: PlanNode
    right: PlanNode
    left_key: Column
    right_key: Column

    def children(self):
        return (self.left, self.right)

    def _label(self) -> str:
        return f"HashJoin({self.left_key.qualified} = {self.right_key.qualified})"


@dataclass(frozen=True)
class Project(PlanNode):
    child: PlanNode
    columns: tuple[Column, ...]

    def children(self):
        return (self.child,)

    def _label(self) -> str:
        return f"Project({', '.join(c.qualified for c in self.columns)})"


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: func in COUNT/SUM/AVG/MIN/MAX; column None for COUNT(*)."""

    func: str
    column: Column | None = None

    def __post_init__(self) -> None:
        if self.func not in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            raise ValueError(f"unknown aggregate {self.func!r}")
        if self.func != "COUNT" and self.column is None:
            raise ValueError(f"{self.func} needs a column")


@dataclass(frozen=True)
class Aggregate(PlanNode):
    child: PlanNode
    group_by: tuple[Column, ...]
    aggregates: tuple[AggSpec, ...] = field(default=())

    def children(self):
        return (self.child,)

    def _label(self) -> str:
        keys = ", ".join(c.qualified for c in self.group_by) or "<all>"
        return f"Aggregate(group by {keys})"


@dataclass(frozen=True)
class Sort(PlanNode):
    """Stable multi-key sort; keys are (column, ascending) pairs."""

    child: PlanNode
    keys: tuple[tuple[Column, bool], ...]

    def children(self):
        return (self.child,)

    def _label(self) -> str:
        rendered = ", ".join(
            f"{col.qualified} {'ASC' if asc else 'DESC'}" for col, asc in self.keys
        )
        return f"Sort({rendered})"


@dataclass(frozen=True)
class Limit(PlanNode):
    child: PlanNode
    count: int

    def children(self):
        return (self.child,)

    def _label(self) -> str:
        return f"Limit({self.count})"
