"""Columnar storage for the execution engine.

A :class:`Table` is a named collection of equally-long numpy columns
with optional NULL masks.  DATE columns are stored as int64 day counts
since the global epoch and TIMESTAMP as int64 seconds, matching the
conventions of :mod:`repro.predicates.eval`.

A :class:`Relation` is the runtime shape flowing between operators.
Columns are keyed by fully-qualified :class:`~repro.predicates.Column`
objects, and each column is stored *lazily* as a base array plus an
optional selection-index array (the classic columnar selection-vector
design): filters and joins only compose index arrays, and values are
gathered once, when an operator actually reads the column.  This keeps
a pushed-down filter from paying a full materialisation of every
column it never touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CatalogError
from ..predicates import Column


@dataclass
class _LazyColumn:
    """A base array (+ NULL mask) viewed through optional indices."""

    values: np.ndarray
    nulls: np.ndarray | None = None
    indices: np.ndarray | None = None

    def materialize(self) -> tuple[np.ndarray, np.ndarray | None]:
        if self.indices is None:
            return self.values, self.nulls
        gathered = self.values[self.indices]
        gathered_nulls = None if self.nulls is None else self.nulls[self.indices]
        return gathered, gathered_nulls

    def take(self, indices: np.ndarray) -> "_LazyColumn":
        if self.indices is None:
            composed = indices
        else:
            composed = self.indices[indices]
        return _LazyColumn(self.values, self.nulls, composed)

    @property
    def itemsize(self) -> int:
        size = self.values.dtype.itemsize
        if self.nulls is not None:
            size += 1
        return size


@dataclass
class Table:
    """A base table: schema plus columnar data."""

    name: str
    schema: dict[str, str]  # column name -> ctype (predicates.expr types)
    columns: dict[str, np.ndarray] = field(default_factory=dict)
    nulls: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(values) for values in self.columns.values()}
        if len(lengths) > 1:
            raise CatalogError(f"ragged columns in table {self.name!r}")
        for name in self.columns:
            if name not in self.schema:
                raise CatalogError(
                    f"column {name!r} missing from schema of {self.name!r}"
                )

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def column_ref(self, name: str) -> Column:
        ctype = self.schema.get(name)
        if ctype is None:
            raise CatalogError(f"unknown column {name!r} in table {self.name!r}")
        return Column(self.name, name, ctype)

    def column_refs(self) -> list[Column]:
        return [self.column_ref(name) for name in self.schema]

    def to_relation(self) -> "Relation":
        data = {
            self.column_ref(name): _LazyColumn(values, self.nulls.get(name))
            for name, values in self.columns.items()
        }
        return Relation(data, self.num_rows)


class Relation:
    """Intermediate operator output: qualified lazy columns + row count."""

    __slots__ = ("data", "num_rows", "_cache")

    def __init__(self, data: dict[Column, _LazyColumn], num_rows: int) -> None:
        self.data = data
        self.num_rows = num_rows
        self._cache: dict[Column, tuple[np.ndarray, np.ndarray | None]] = {}

    # ------------------------------------------------------------------
    # Reads (materialise on demand, memoised)
    # ------------------------------------------------------------------
    def values_and_nulls(self, column: Column) -> tuple[np.ndarray, np.ndarray | None]:
        cached = self._cache.get(column)
        if cached is None:
            lazy = self.data.get(column)
            if lazy is None:
                raise CatalogError(f"column {column.qualified} not in relation")
            cached = lazy.materialize()
            self._cache[column] = cached
        return cached

    def column(self, column: Column) -> np.ndarray:
        return self.values_and_nulls(column)[0]

    def null_mask(self, column: Column) -> np.ndarray | None:
        return self.values_and_nulls(column)[1]

    def resolver(self):
        """Column resolver for :func:`repro.predicates.eval_pred_numpy`."""
        return self.values_and_nulls

    # ------------------------------------------------------------------
    # Transformations (index composition only; no data movement)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Relation":
        data = {column: lazy.take(indices) for column, lazy in self.data.items()}
        return Relation(data, len(indices))

    def filter(self, mask: np.ndarray) -> "Relation":
        return self.take(np.flatnonzero(mask))

    def project(self, columns: list[Column]) -> "Relation":
        missing = [c for c in columns if c not in self.data]
        if missing:
            raise CatalogError(f"cannot project missing columns {missing}")
        return Relation({c: self.data[c] for c in columns}, self.num_rows)

    def merge(self, other: "Relation") -> "Relation":
        if self.num_rows != other.num_rows:
            raise CatalogError("merging relations of different lengths")
        merged = dict(self.data)
        merged.update(other.data)
        return Relation(merged, self.num_rows)

    @property
    def nbytes(self) -> int:
        """Approximate footprint if this relation were materialised."""
        per_row = sum(lazy.itemsize for lazy in self.data.values())
        return per_row * self.num_rows


# Backwards-compatible alias for code that constructed relations from
# (values, nulls) tuples directly.
ColumnData = tuple[np.ndarray, np.ndarray | None]


def relation_from_arrays(
    data: dict[Column, ColumnData], num_rows: int
) -> Relation:
    """Build a relation from plain (values, nulls) pairs."""
    return Relation(
        {column: _LazyColumn(values, nulls) for column, (values, nulls) in data.items()},
        num_rows,
    )
