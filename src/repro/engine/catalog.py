"""Catalog: the set of base tables known to the engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError
from ..sql.binder import Schema
from .table import Table


@dataclass
class Catalog:
    tables: dict[str, Table] = field(default_factory=dict)

    def register(self, table: Table) -> None:
        self.tables[table.name.lower()] = table

    def get(self, name: str) -> Table:
        table = self.tables.get(name.lower())
        if table is None:
            raise CatalogError(f"unknown table {name!r}")
        return table

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.tables

    def schema(self) -> Schema:
        """Binder-compatible schema of every registered table."""
        return {
            name: dict(table.schema) for name, table in self.tables.items()
        }
