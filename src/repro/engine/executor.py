"""Plan execution over columnar relations.

All operators are vectorised numpy; the hash join uses the
sort-and-searchsorted equi-join idiom (no Python-level row loops).
Every operator records rows-in/rows-out in :class:`ExecutionStats`.
"""

from __future__ import annotations


import numpy as np

from ..obs.clock import now as _now
from ..errors import PlanError
from ..predicates import eval_pred_numpy
from .catalog import Catalog
from .plan import (
    Aggregate,
    AggSpec,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
)
from .stats import ExecutionStats
from .table import Relation, relation_from_arrays


def execute(plan: PlanNode, catalog: Catalog) -> tuple[Relation, ExecutionStats]:
    """Run a plan; returns the output relation and operator statistics."""
    stats = ExecutionStats()
    start = _now()
    relation = _run(plan, catalog, stats)
    stats.elapsed_ms = (_now() - start) * 1000.0
    stats.note_bytes(relation.nbytes)
    return relation, stats


def _run(plan: PlanNode, catalog: Catalog, stats: ExecutionStats) -> Relation:
    if isinstance(plan, Scan):
        t0 = _now()
        relation = catalog.get(plan.table).to_relation()
        stats.record(
            f"Scan({plan.table})",
            relation.num_rows,
            relation.num_rows,
            (_now() - t0) * 1000.0,
        )
        return relation
    if isinstance(plan, Filter):
        child = _run(plan.child, catalog, stats)
        t0 = _now()
        truth, _ = eval_pred_numpy(
            plan.predicate, child.resolver(), child.num_rows
        )
        out = child.filter(truth)
        stats.record(
            f"Filter({plan.predicate!r})",
            child.num_rows,
            out.num_rows,
            (_now() - t0) * 1000.0,
        )
        return out
    if isinstance(plan, HashJoin):
        left = _run(plan.left, catalog, stats)
        right = _run(plan.right, catalog, stats)
        t0 = _now()
        out = _hash_join(left, right, plan)
        stats.note_bytes(left.nbytes + right.nbytes + out.nbytes)
        stats.record(
            f"HashJoin({plan.left_key.qualified}={plan.right_key.qualified})",
            left.num_rows + right.num_rows,
            out.num_rows,
            (_now() - t0) * 1000.0,
        )
        return out
    if isinstance(plan, Project):
        child = _run(plan.child, catalog, stats)
        t0 = _now()
        out = child.project(list(plan.columns))
        stats.record(
            "Project",
            child.num_rows,
            out.num_rows,
            (_now() - t0) * 1000.0,
        )
        return out
    if isinstance(plan, Aggregate):
        child = _run(plan.child, catalog, stats)
        t0 = _now()
        out = _aggregate(child, plan)
        stats.record(
            "Aggregate",
            child.num_rows,
            out.num_rows,
            (_now() - t0) * 1000.0,
        )
        return out
    if isinstance(plan, Sort):
        child = _run(plan.child, catalog, stats)
        t0 = _now()
        # np.lexsort sorts by the LAST key first: feed keys reversed.
        arrays = []
        for column, ascending in reversed(plan.keys):
            values = child.column(column)
            arrays.append(values if ascending else -values)
        order = np.lexsort(arrays) if arrays else np.arange(child.num_rows)
        out = child.take(order)
        stats.record(
            "Sort", child.num_rows, out.num_rows, (_now() - t0) * 1000.0
        )
        return out
    if isinstance(plan, Limit):
        child = _run(plan.child, catalog, stats)
        t0 = _now()
        out = child.take(np.arange(min(plan.count, child.num_rows)))
        stats.record(
            f"Limit({plan.count})",
            child.num_rows,
            out.num_rows,
            (_now() - t0) * 1000.0,
        )
        return out
    raise PlanError(f"unknown plan node {type(plan).__name__}")


# ----------------------------------------------------------------------
def _hash_join(left: Relation, right: Relation, node: HashJoin) -> Relation:
    # Build on the smaller input (standard practice; also what makes a
    # pushed-down filter pay off on the probe side).
    if right.num_rows < left.num_rows:
        swapped = HashJoin(node.right, node.left, node.right_key, node.left_key)
        return _hash_join(right, left, swapped)
    left_values, left_nulls = left.values_and_nulls(node.left_key)
    right_values, right_nulls = right.values_and_nulls(node.right_key)

    left_valid = (
        np.arange(left.num_rows)
        if left_nulls is None
        else np.flatnonzero(~left_nulls)
    )
    right_valid = (
        np.arange(right.num_rows)
        if right_nulls is None
        else np.flatnonzero(~right_nulls)
    )
    build_keys = left_values[left_valid]
    probe_keys = right_values[right_valid]

    order = np.argsort(build_keys, kind="stable")
    sorted_keys = build_keys[order]
    lo = np.searchsorted(sorted_keys, probe_keys, side="left")
    hi = np.searchsorted(sorted_keys, probe_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())

    probe_rows = np.repeat(np.arange(len(probe_keys)), counts)
    # Flattened [lo_i, hi_i) ranges without a Python loop.
    if total:
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        within = np.arange(total) - offsets
        build_positions = np.repeat(lo, counts) + within
        build_rows = order[build_positions]
    else:
        build_rows = np.empty(0, dtype=np.int64)
        probe_rows = np.empty(0, dtype=np.int64)

    left_out = left.take(left_valid[build_rows])
    right_out = right.take(right_valid[probe_rows])
    return left_out.merge(right_out)


# ----------------------------------------------------------------------
def _aggregate(child: Relation, node: Aggregate) -> Relation:
    if node.group_by:
        key_arrays = [child.column(col) for col in node.group_by]
        keys = np.stack(key_arrays, axis=1) if key_arrays else None
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        group_count = len(uniq)
    else:
        inverse = np.zeros(child.num_rows, dtype=np.int64)
        group_count = 1 if child.num_rows else 0
        uniq = None

    data = {}
    for i, col in enumerate(node.group_by):
        data[col] = (uniq[:, i], None)

    from ..predicates import Column, DOUBLE, INTEGER

    for spec in node.aggregates:
        values = _apply_agg(spec, child, inverse, group_count)
        out_type = INTEGER if spec.func == "COUNT" else DOUBLE
        name = spec.func.lower() + ("" if spec.column is None else f"_{spec.column.name}")
        data[Column("__agg__", name, out_type)] = (values, None)
    return relation_from_arrays(data, group_count)


def _apply_agg(
    spec: AggSpec, child: Relation, inverse: np.ndarray, groups: int
) -> np.ndarray:
    if spec.func == "COUNT":
        return np.bincount(inverse, minlength=groups).astype(np.int64)
    values = child.column(spec.column).astype(np.float64)
    if spec.func == "SUM":
        return np.bincount(inverse, weights=values, minlength=groups)
    if spec.func == "AVG":
        sums = np.bincount(inverse, weights=values, minlength=groups)
        counts = np.bincount(inverse, minlength=groups)
        return np.divide(sums, np.maximum(counts, 1))
    out = np.full(groups, np.inf if spec.func == "MIN" else -np.inf)
    if spec.func == "MIN":
        np.minimum.at(out, inverse, values)
    else:
        np.maximum.at(out, inverse, values)
    return out
