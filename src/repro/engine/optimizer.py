"""Heuristic plan builder with predicate pushdown.

This reproduces the mechanism the paper relies on: a predicate whose
columns all come from one table can be applied *below* the join,
shrinking the join input.  The optimizer:

1. splits the WHERE conjunction into equi-join conditions,
   single-table predicates, and residual multi-table predicates;
2. builds a left-deep join tree over the FROM tables (joining via any
   available equi-condition, falling back to an error for cross
   products -- the paper's workload always joins on keys);
3. pushes each single-table predicate onto its table's scan when
   ``pushdown`` is enabled, otherwise applies everything above the
   final join (the shape Postgres picks for Q1 in Figure 1a).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlanError
from ..predicates import Col, Column, Comparison, Pred, TRUE_PRED, pand
from ..sql.binder import BoundQuery
from .plan import Aggregate, AggSpec, Filter, HashJoin, Limit, PlanNode, Project, Scan, Sort


@dataclass(frozen=True)
class _JoinCond:
    left: Column
    right: Column


def split_where(query: BoundQuery) -> tuple[list[_JoinCond], dict[str, list[Pred]], list[Pred]]:
    """(equi-join conditions, per-table predicates, residual predicates)."""
    joins: list[_JoinCond] = []
    per_table: dict[str, list[Pred]] = {table: [] for table in query.tables}
    residual: list[Pred] = []
    for conjunct in query.where.conjuncts():
        if conjunct is TRUE_PRED:
            continue
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, Col)
            and isinstance(conjunct.right, Col)
            and conjunct.left.column.table != conjunct.right.column.table
        ):
            joins.append(_JoinCond(conjunct.left.column, conjunct.right.column))
            continue
        tables = {column.table for column in conjunct.columns()}
        if len(tables) == 1:
            per_table[next(iter(tables))].append(conjunct)
        else:
            residual.append(conjunct)
    return joins, per_table, residual


def build_plan(
    query: BoundQuery,
    *,
    pushdown: bool = True,
    stats: "dict[str, object] | None" = None,
) -> PlanNode:
    """Logical plan for a bound query.

    ``stats`` (table name -> :class:`~repro.engine.statistics.TableStats`)
    enables cost-based join ordering: the join tree starts from the
    table with the smallest estimated post-filter cardinality and grows
    by the cheapest connectable table.  Without stats, the FROM-clause
    order is kept (the paper's two-table workload does not need more).
    """
    if not query.tables:
        raise PlanError("query has no tables")
    joins, per_table, residual = split_where(query)

    def scan_for(table: str) -> PlanNode:
        node: PlanNode = Scan(table)
        if pushdown and per_table[table]:
            node = Filter(node, pand(list(per_table[table])))
        return node

    table_order = list(query.tables)
    if stats is not None and len(table_order) > 1:
        table_order = _order_by_cardinality(
            query.tables, per_table, stats, pushdown
        )

    node = scan_for(table_order[0])
    joined = {table_order[0]}
    pending = list(table_order[1:])
    remaining_joins = list(joins)

    while pending:
        progress = False
        for table in list(pending):
            cond = _find_join(remaining_joins, joined, table)
            if cond is None:
                continue
            left_key, right_key = cond
            node = HashJoin(node, scan_for(table), left_key, right_key)
            joined.add(table)
            pending.remove(table)
            remaining_joins = [
                j
                for j in remaining_joins
                if not (
                    {j.left.table, j.right.table} == {left_key.table, right_key.table}
                    and {j.left, j.right} == {left_key, right_key}
                )
            ]
            progress = True
            break
        if not progress:
            raise PlanError(
                f"no equi-join condition connects {pending} to {sorted(joined)}"
            )

    # Leftover equi-joins between already-joined tables act as filters.
    top_filters: list[Pred] = [
        Comparison(Col(j.left), "=", Col(j.right)) for j in remaining_joins
    ]
    top_filters.extend(residual)
    if not pushdown:
        for table in table_order:
            top_filters.extend(per_table[table])
    if top_filters:
        node = Filter(node, pand(top_filters))

    if query.aggregates or query.group_by:
        specs = tuple(
            AggSpec(func, column) for func, column in query.aggregates
        )
        node = Aggregate(node, tuple(query.group_by), specs)
    if query.order_by:
        node = Sort(node, tuple(query.order_by))
    if query.projections is not None and not (query.aggregates or query.group_by):
        node = Project(node, tuple(query.projections))
    if query.limit is not None:
        node = Limit(node, query.limit)
    return node


def _order_by_cardinality(
    tables: list[str],
    per_table: dict[str, list[Pred]],
    stats: dict[str, object],
    pushdown: bool,
) -> list[str]:
    """Greedy smallest-first ordering by estimated filtered rows."""
    from .statistics import TableStats, estimate_rows

    def estimated(table: str) -> float:
        table_stats = stats.get(table)
        if not isinstance(table_stats, TableStats):
            return float("inf")
        predicates = per_table.get(table, []) if pushdown else []
        if predicates:
            return estimate_rows(pand(list(predicates)), table_stats)
        return table_stats.row_count

    return sorted(tables, key=lambda table: (estimated(table), tables.index(table)))


def push_filter_below_aggregate(plan: PlanNode) -> PlanNode:
    """The paper's second predicate-centric rule (section 1): a filter
    above a grouped aggregation may move below it when every column it
    references is in the GROUP BY set (groups are filtered wholesale,
    so pre-filtering the input removes exactly the same groups).

    Applied recursively; conjuncts that qualify move down while the
    rest stay above the aggregate.
    """
    if isinstance(plan, Filter) and isinstance(plan.child, Aggregate):
        aggregate = plan.child
        group_columns = set(aggregate.group_by)
        movable: list[Pred] = []
        stuck: list[Pred] = []
        for conjunct in plan.predicate.conjuncts():
            if conjunct.columns() <= group_columns:
                movable.append(conjunct)
            else:
                stuck.append(conjunct)
        if movable:
            pushed_child = Filter(
                push_filter_below_aggregate(aggregate.child), pand(movable)
            )
            new_aggregate = Aggregate(
                pushed_child, aggregate.group_by, aggregate.aggregates
            )
            if stuck:
                return Filter(new_aggregate, pand(stuck))
            return new_aggregate
    # Recurse structurally.
    if isinstance(plan, Filter):
        return Filter(push_filter_below_aggregate(plan.child), plan.predicate)
    if isinstance(plan, HashJoin):
        return HashJoin(
            push_filter_below_aggregate(plan.left),
            push_filter_below_aggregate(plan.right),
            plan.left_key,
            plan.right_key,
        )
    if isinstance(plan, Project):
        return Project(push_filter_below_aggregate(plan.child), plan.columns)
    if isinstance(plan, Aggregate):
        return Aggregate(
            push_filter_below_aggregate(plan.child), plan.group_by, plan.aggregates
        )
    return plan


def _find_join(
    joins: list[_JoinCond], joined: set[str], candidate: str
) -> tuple[Column, Column] | None:
    """A join condition linking the joined set to ``candidate``;
    returned as (key-in-joined-side, key-in-candidate-side)."""
    for cond in joins:
        if cond.left.table in joined and cond.right.table == candidate:
            return cond.left, cond.right
        if cond.right.table in joined and cond.left.table == candidate:
            return cond.right, cond.left
    return None
