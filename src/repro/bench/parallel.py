"""Parallel workload driver for the rewrite benchmarks.

The Table-2/3 efficacy experiment is embarrassingly parallel: every
(query, column subset, technique) cell is an independent synthesis
run.  This driver fans the workload's queries out over a
``ProcessPoolExecutor`` and merges the per-query record batches back
in query order, so the result list matches the sequential driver
field-for-field (``predicate`` excepted -- it is SQL-rendered in
transit) regardless of worker count or scheduling:

* the workload seed fixes each query's predicate before any work is
  dispatched (queries are generated once, in the parent);
* each cell's synthesis RNG is seeded from its ``SiaConfig`` alone,
  deterministic per query and independent of which worker runs it;
* batches are merged by ascending query index, never arrival order.

Workers ship records back as JSON payloads (the ``fullscale``
checkpoint encoding) rather than pickled objects -- the synthesized
``Pred`` trees carry no interned solver state across the process
boundary, and the payloads double as checkpoint lines.  Each worker
also reports its :data:`~repro.smt.stats.GLOBAL_COUNTERS` delta so the
driver can aggregate solver effort across the pool.

Used by ``repro bench --parallel N`` and, via the
``REPRO_BENCH_PARALLEL`` environment knob, by
:func:`repro.bench.harness.efficacy_records`.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..obs.metrics import GLOBAL_METRICS, merge_delta
from ..obs.sanitizer import (
    SANITIZE_ENV,
    install_sanitizer,
    maybe_install_sanitizer,
    summarize_reports,
    uninstall_sanitizer,
)
from ..obs.trace import get_tracer
from ..smt.stats import GLOBAL_COUNTERS
from ..tpch import WorkloadQuery, generate_workload
from .harness import (
    TECHNIQUES,
    EfficacyRecord,
    _ground_truth_possible,
    _run_sia_variant,
    _run_transitive_closure,
    bench_queries,
    bench_seed,
    column_subsets,
)


@dataclass
class ParallelRunResult:
    """Merged records plus aggregated solver counters and metrics."""

    records: list[EfficacyRecord] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, dict] = field(default_factory=dict)
    workers: int = 1
    #: Run-level sanitizer summary (``--sanitize`` only): process
    #: count, access totals per registry, recorded violations.
    sanitizer: dict | None = None


def _query_batch(
    wq: WorkloadQuery, techniques: tuple[str, ...]
) -> tuple[int, list[dict], dict[str, int], dict[str, dict]]:
    """All cells of one query (runs inside a worker process)."""
    from .fullscale import _record_to_json

    tracer = get_tracer()
    before = GLOBAL_COUNTERS.snapshot()
    metrics_before = GLOBAL_METRICS.snapshot()
    payloads: list[dict] = []
    with GLOBAL_METRICS.timer("bench.query_ms").time(), tracer.span(
        "bench.query", index=wq.index, counters=True
    ):
        for subset in column_subsets():
            with tracer.span(
                "bench.ground_truth",
                phase="ground_truth",
                subset=",".join(str(col) for col in subset),
            ):
                possible = _ground_truth_possible(wq, subset)
            for technique in techniques:
                with tracer.span("bench.cell", technique=technique):
                    if technique == "TC":
                        record = _run_transitive_closure(wq, subset)
                    else:
                        record = _run_sia_variant(wq, subset, technique)
                record.possible = possible
                payloads.append(_record_to_json(record))
    GLOBAL_METRICS.counter("bench.cells").inc(len(payloads))
    return (
        wq.index,
        payloads,
        GLOBAL_COUNTERS.delta_since(before),
        GLOBAL_METRICS.delta_since(metrics_before),
    )


def _batch_entry(
    args: tuple,
) -> tuple[int, list[dict], dict[str, int], dict[str, dict], dict | None]:
    # Top-level single-argument wrapper so executor.map can pickle it.
    # Workers self-install the sanitizer from the environment flag the
    # parent exports for --sanitize runs (a spawn worker is a fresh
    # interpreter, so the parent's in-process install does not carry
    # over) and ship their drained access report with the batch.
    sanitizer = maybe_install_sanitizer()
    index, payloads, delta, metrics_delta = _query_batch(*args)
    report = sanitizer.drain().to_json() if sanitizer is not None else None
    return index, payloads, delta, metrics_delta, report


def default_workers() -> int:
    """Worker count when none is requested (all cores, at least 1)."""
    return max(os.cpu_count() or 1, 1)


def parallel_efficacy_records(
    *,
    num_queries: int | None = None,
    seed: int | None = None,
    techniques: tuple[str, ...] = TECHNIQUES,
    workers: int | None = None,
    sanitize: bool = False,
) -> ParallelRunResult:
    """Run the efficacy workload across ``workers`` processes.

    Returns the records in the same order as
    :func:`repro.bench.harness.efficacy_records` (ascending query
    index, subsets and techniques in their canonical enumeration
    order) together with the summed per-worker solver-counter deltas.
    Record ``predicate`` fields are SQL-rendered in transit and come
    back ``None``, exactly like ``fullscale`` checkpoint round-trips.

    ``sanitize=True`` installs the shared-state sanitizer in this
    process, exports its environment flag so every worker installs it
    too, and attaches the folded access report as ``.sanitizer``.
    """
    from .fullscale import _record_from_json

    num_queries = num_queries if num_queries is not None else bench_queries()
    seed = seed if seed is not None else bench_seed()
    workers = workers if workers is not None else default_workers()
    queries = generate_workload(num_queries, seed=seed)
    tasks = [(wq, techniques) for wq in queries]

    sanitizer = None
    if sanitize:
        os.environ[SANITIZE_ENV] = "1"
        sanitizer = install_sanitizer()
    reports: list[dict] = []
    batches: dict[int, list[dict]] = {}
    deltas: dict[int, tuple[dict[str, int], dict[str, dict]]] = {}
    try:
        if workers <= 1:
            results = map(_batch_entry, tasks)
            for index, payloads, delta, metrics_delta, report in results:
                batches[index] = payloads
                deltas[index] = (delta, metrics_delta)
                if report is not None:
                    reports.append(report)
        else:
            # Spawn, never the platform default: fork would clone the
            # parent's warm registries (interned terms, counters) into
            # every worker, and the deltas workers report would ride on
            # inherited state instead of starting from zero.
            context = multiprocessing.get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                for index, payloads, delta, metrics_delta, report in pool.map(
                    _batch_entry, tasks, chunksize=1
                ):
                    batches[index] = payloads
                    deltas[index] = (delta, metrics_delta)
                    if report is not None:
                        reports.append(report)
    finally:
        if sanitize:
            os.environ.pop(SANITIZE_ENV, None)

    # Merge per-batch deltas in ascending query index, never arrival
    # order, so the aggregate is identical for any worker count.
    totals: dict[str, int] = {}
    metric_totals: dict[str, dict] = {}
    for index in sorted(deltas):
        delta, metrics_delta = deltas[index]
        for name, value in delta.items():
            totals[name] = totals.get(name, 0) + value
        merge_delta(metric_totals, metrics_delta)

    records = [
        _record_from_json(payload)
        for index in sorted(batches)
        for payload in batches[index]
    ]
    summary: dict | None = None
    if sanitizer is not None:
        reports.append(sanitizer.drain().to_json())
        uninstall_sanitizer()
        summary = summarize_reports(reports)
    return ParallelRunResult(
        records=records,
        counters=totals,
        metrics=metric_totals,
        workers=workers,
        sanitizer=summary,
    )
