"""Sharded parallel workload driver with persistent warm workers.

The Table-2/3 efficacy experiment is embarrassingly parallel: every
(query, column subset, technique) cell is an independent synthesis
run.  Historically this module fanned queries over a static
``ProcessPoolExecutor``; it is now a sharded work queue over
**persistent** worker processes:

* **Warm workers.**  Each worker installs a
  :class:`~repro.smt.session.SessionPool` for its whole lifetime, so
  ``SmtSession``/enumerator state survives *across* queries, not just
  within one (extending the PR 3 lifecycle).
* **Longest-expected-first shards.**  Queries are ranked by the
  :mod:`repro.bench.schedule` cost model (seeded from
  ``engine/statistics`` cardinalities) and LPT-assigned, so long-tail
  queries start first.
* **Work stealing.**  A worker whose shard drains steals from the tail
  of the largest remaining shard, so nobody idles while a grinder
  holds unstarted work.
* **Deadlines.**  ``deadline_ms`` threads a per-cell
  ``SiaConfig.timeout_ms`` budget through the harness: an expired cell
  yields a *recorded partial result* (section 6.2 semantics), never a
  hung pool.
* **Crash isolation.**  Worker death is detected by liveness probes;
  the in-flight query is requeued **at most once** (an attempt ledger
  caps retries) and the worker restarted.  A query that kills two
  workers is recorded as placeholder cells so the merge stays total.

Determinism is unchanged from the static driver: the workload seed
fixes every predicate in the parent, each cell's synthesis RNG is
seeded from its ``SiaConfig`` alone, all cells of one query run
consecutively on one worker in canonical order (which also pins the
session pool's warm-state trajectory), and batches are merged by
ascending query index, never arrival order.  Workers ship records as
JSON payloads (the ``fullscale`` checkpoint encoding) plus their
:data:`~repro.smt.stats.GLOBAL_COUNTERS` and
:data:`~repro.obs.metrics.GLOBAL_METRICS` deltas; scheduling
statistics (steals, requeues, utilization, queue waits) come back in
``ParallelRunResult.pool``.

Environment knobs (``SIA_FLOAT_FILTER``, ``REPRO_SANITIZE``) cross the
process boundary through an explicit initializer dict handed to every
worker -- never through fork/spawn inheritance -- and each worker
reports the environment it actually applied so tests can assert
parity.

Used by ``repro bench --parallel N [--fullscale] [--deadline-ms B]``
and, via the ``REPRO_BENCH_PARALLEL`` environment knob, by
:func:`repro.bench.harness.efficacy_records`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_mod
from dataclasses import dataclass, field
from pathlib import Path

from ..obs.clock import now as _now
from ..obs.heartbeat import (
    DEFAULT_INTERVAL_MS,
    GLOBAL_BOARD,
    BeaconChannel,
    HeartbeatEmitter,
    RunModel,
)
from ..obs.ledger import RunLedger, cell_entry
from ..obs.metrics import GLOBAL_METRICS, merge_delta, summarize_values
from ..obs.sanitizer import (
    SANITIZE_ENV,
    install_sanitizer,
    maybe_install_sanitizer,
    summarize_reports,
    uninstall_sanitizer,
)
from ..obs.trace import get_tracer
from ..smt.backend import FLOAT_MODE_ENV, resolve_float_mode
from ..smt.stats import GLOBAL_COUNTERS
from ..tpch import WorkloadQuery, generate_workload
from .harness import (
    _CONFIGS,
    TECHNIQUES,
    EfficacyRecord,
    _ground_truth_possible,
    _run_sia_variant,
    _run_transitive_closure,
    bench_queries,
    bench_seed,
    column_subsets,
)
from .schedule import assign_shards, expected_costs

#: Test-only fault injection: a worker handed the query whose index
#: matches this variable's value exits hard (attempt 0 only), so the
#: crash-isolation tests can kill a worker mid-cell deterministically.
CRASH_ENV = "REPRO_BENCH_CRASH_QUERY"

#: Environment keys propagated into every worker through the explicit
#: initializer dict (never via start-method inheritance alone).
PROPAGATED_ENV = (FLOAT_MODE_ENV, SANITIZE_ENV, CRASH_ENV)

#: Attempt ledger cap: a query is dispatched at most this many times.
#: 2 = the at-most-once requeue the crash-isolation contract promises.
_MAX_ATTEMPTS = 2

#: Parent poll interval while waiting on worker results, seconds.
#: Bounds crash-detection latency without busy-waiting.
_POLL_S = 0.25


@dataclass(frozen=True)
class TelemetryConfig:
    """Where and how often the run's telemetry plane writes.

    ``directory`` receives ``heartbeats.jsonl`` (worker beacons +
    parent driver lines, rendered by ``repro top``) and
    ``ledger.jsonl`` (the per-attempt run ledger, rendered by ``repro
    report``).  When no config is given, the telemetry plane does not
    exist: no emitter thread, no beacon queue, no board posts -- the
    null path costs nothing.
    """

    directory: Path
    heartbeat_ms: float = DEFAULT_INTERVAL_MS

    @property
    def heartbeat_path(self) -> Path:
        return Path(self.directory) / "heartbeats.jsonl"

    @property
    def ledger_path(self) -> Path:
        return Path(self.directory) / "ledger.jsonl"


class _TelemetryRecorder:
    """Parent-side telemetry plane: beacon fold + ``heartbeats.jsonl``.

    Owns the :class:`~repro.obs.heartbeat.RunModel` for the run and the
    heartbeat log file.  Every beacon is folded *and* appended verbatim
    (with a flush, so ``repro top`` can tail a live run); the parent
    adds ``driver`` lines (progress, steals, queue depth), ``silence``
    lines (one per newly-flagged worker) and a final ``end`` line.
    """

    def __init__(self, config: TelemetryConfig, workers: int) -> None:
        self.config = config
        self.model = RunModel(interval_ms=config.heartbeat_ms)
        directory = Path(config.directory)
        directory.mkdir(parents=True, exist_ok=True)
        self._fh = open(config.heartbeat_path, "w")

    def register(self, worker_id: int) -> None:
        """Start a worker's silence clock (call once it reports ready,
        so spawn/import latency is not misread as silence)."""
        self.model.register(worker_id, _now())

    def _write(self, line: dict) -> None:
        self._fh.write(json.dumps(line, sort_keys=True) + "\n")
        self._fh.flush()

    def fold(self, beacons: list[dict]) -> None:
        # Beacon "t" is worker perf-counter time (arbitrary epoch); the
        # parent stamps its own arrival clock as "rx" so every line in
        # the log shares one epoch for `repro top` to order by.
        arrival = _now()
        for beacon in beacons:
            self.model.fold(beacon, arrival)
            self._write({**beacon, "rx": round(arrival, 4)})

    def driver_line(
        self,
        *,
        done: int,
        total: int,
        steals: int = 0,
        requeues: int = 0,
        queue_depth: int = 0,
    ) -> None:
        self._write(
            {
                "type": "driver",
                "t": round(_now(), 4),
                "done": done,
                "total": total,
                "steals": steals,
                "requeues": requeues,
                "queue_depth": queue_depth,
            }
        )

    def check_silence(self) -> None:
        for wid in self.model.flag_silent(_now()):
            self._write(
                {"type": "silence", "t": round(_now(), 4), "worker": wid}
            )

    def close(self) -> dict:
        """Write the ``end`` line; returns the run-model rollup."""
        rollup = self.model.snapshot()
        self._write(
            {
                "type": "end",
                "t": round(_now(), 4),
                "beacons": rollup["beacons"],
                "silence_flags": rollup["silence_flags"],
            }
        )
        self._fh.close()
        return rollup


@dataclass
class ParallelRunResult:
    """Merged records plus aggregated solver counters and metrics."""

    records: list[EfficacyRecord] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, dict] = field(default_factory=dict)
    workers: int = 1
    #: Run-level sanitizer summary (``--sanitize`` only): process
    #: count, access totals per registry, recorded violations.
    sanitizer: dict | None = None
    #: Scheduler statistics: steals, requeues, worker restarts,
    #: queue-wait summary, per-worker busy time and utilization.
    pool: dict = field(default_factory=dict)
    #: Propagated-environment snapshot each worker reported from its
    #: initializer (worker id -> {env key: value or None}).
    worker_env: dict[int, dict] = field(default_factory=dict)


def _cell_audit(technique: str) -> str:
    """Ledger audit status: were the cell's verify verdicts certified?"""
    config = _CONFIGS.get(technique)
    if config is not None and config.certify_verify:
        return "certified"
    return "none"


def _query_batch(
    wq: WorkloadQuery,
    techniques: tuple[str, ...],
    deadline_ms: float | None = None,
    *,
    telemetry: bool = False,
) -> tuple[int, list[dict], dict[str, int], dict[str, dict], list[dict]]:
    """All cells of one query (runs inside a worker process).

    With ``telemetry`` on, the hot path additionally posts its current
    position to the heartbeat status board (a few plain attribute
    stores per *cell*, read by the emitter thread) and builds one run
    ledger entry per cell with that cell's solver-counter delta.  Off,
    neither exists -- the null path is unchanged.
    """
    from .fullscale import _record_to_json

    tracer = get_tracer()
    before = GLOBAL_COUNTERS.snapshot()
    metrics_before = GLOBAL_METRICS.snapshot()
    payloads: list[dict] = []
    ledger_entries: list[dict] = []
    cells_done = 0
    with GLOBAL_METRICS.timer("bench.query_ms").time(), tracer.span(
        "bench.query", index=wq.index, counters=True
    ):
        for subset in column_subsets():
            subset_label = "+".join(str(col) for col in subset)
            if telemetry:
                GLOBAL_BOARD.post(
                    query=wq.index,
                    cell=subset_label,
                    phase="ground_truth",
                    cells_done=cells_done,
                    deadline_ms=deadline_ms,
                )
            with tracer.span(
                "bench.ground_truth",
                phase="ground_truth",
                subset=",".join(str(col) for col in subset),
            ):
                possible = _ground_truth_possible(wq, subset)
            for technique in techniques:
                if telemetry:
                    GLOBAL_BOARD.post(
                        cell=f"{subset_label}/{technique}",
                        phase="cell",
                        cells_done=cells_done,
                    )
                    cell_before = GLOBAL_COUNTERS.snapshot()
                with tracer.span("bench.cell", technique=technique):
                    if technique == "TC":
                        record = _run_transitive_closure(wq, subset)
                    else:
                        record = _run_sia_variant(
                            wq, subset, technique, deadline_ms=deadline_ms
                        )
                record.possible = possible
                payload = _record_to_json(record)
                payloads.append(payload)
                cells_done += 1
                if telemetry:
                    ledger_entries.append(
                        cell_entry(
                            payload,
                            counters=GLOBAL_COUNTERS.delta_since(cell_before),
                            audit=_cell_audit(technique),
                            deadline_ms=deadline_ms,
                        )
                    )
    if telemetry:
        GLOBAL_BOARD.post(phase="idle", cells_done=cells_done)
    GLOBAL_METRICS.counter("bench.cells").inc(len(payloads))
    return (
        wq.index,
        payloads,
        GLOBAL_COUNTERS.delta_since(before),
        GLOBAL_METRICS.delta_since(metrics_before),
        ledger_entries,
    )


def _crashed_payloads(
    wq: WorkloadQuery, techniques: tuple[str, ...]
) -> list[dict]:
    """Placeholder cells for a query that killed two workers.

    Shaped exactly like real payloads (``valid``/``optimal`` False) so
    the merged record list stays total and query-ordered even when a
    query is genuinely poisonous.
    """
    from .fullscale import _record_to_json

    payloads = []
    for subset in column_subsets():
        for technique in techniques:
            payloads.append(
                _record_to_json(
                    EfficacyRecord(
                        query_index=wq.index,
                        subset=tuple(c.name for c in subset),
                        n_cols=len(subset),
                        technique=technique,
                        possible=False,
                        valid=False,
                        optimal=False,
                    )
                )
            )
    return payloads


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_env_overrides() -> dict[str, str]:
    """The parent's propagated-environment snapshot at dispatch time."""
    return {
        key: os.environ[key] for key in PROPAGATED_ENV if key in os.environ
    }


def _apply_env_overrides(overrides: dict[str, str]) -> None:
    """Explicit worker initializer for environment-driven knobs.

    Applies exactly the parent's snapshot: keys present in
    ``overrides`` are set, propagated keys absent from it are cleared.
    Spawn children *do* inherit the parent's environment on every
    platform this repo targets, but the contract must not depend on
    start-method details -- the initializer makes worker configuration
    explicit, testable and start-method-proof.
    """
    for key in PROPAGATED_ENV:
        value = overrides.get(key)
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


def _worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    env_overrides: dict[str, str],
    techniques: tuple[str, ...],
    deadline_ms: float | None,
    beacon_queue=None,
    heartbeat_ms: float = DEFAULT_INTERVAL_MS,
) -> None:
    """Persistent worker loop (top-level so spawn can pickle it).

    Pulls ``(query, attempt)`` tasks until the ``None`` sentinel.  One
    session pool spans the whole loop -- that is the point: warm
    sessions survive across queries.  Every result message carries the
    batch payloads, both registry deltas, the drained sanitizer report
    (when installed), the wait/busy timings the parent folds into the
    pool statistics, and (telemetry runs) the batch's ledger entries.

    ``beacon_queue`` is the telemetry side channel: when given, a
    daemon :class:`~repro.obs.heartbeat.HeartbeatEmitter` posts one
    beacon per ``heartbeat_ms`` through a never-blocking
    :class:`~repro.obs.heartbeat.BeaconChannel`.  When ``None``
    (telemetry off) no thread, channel or board post exists.
    """
    _apply_env_overrides(env_overrides)
    sanitizer = maybe_install_sanitizer()
    from ..smt.session import session_pool

    telemetry = beacon_queue is not None
    emitter = None
    if telemetry:
        emitter = HeartbeatEmitter(
            worker_id,
            BeaconChannel(beacon_queue),
            interval_ms=heartbeat_ms,
        ).start()
    result_queue.put(
        (
            "ready",
            worker_id,
            {key: os.environ.get(key) for key in PROPAGATED_ENV},
        )
    )
    try:
        with session_pool():
            while True:
                wait_start = _now()
                task = task_queue.get()
                wait_ms = (_now() - wait_start) * 1000.0
                if task is None:
                    break
                wq, attempt = task
                if attempt == 0 and os.environ.get(CRASH_ENV) == str(wq.index):
                    os._exit(3)  # fault injection, see CRASH_ENV
                busy_start = _now()
                index, payloads, delta, metrics_delta, ledger_entries = (
                    _query_batch(
                        wq, techniques, deadline_ms, telemetry=telemetry
                    )
                )
                busy_ms = (_now() - busy_start) * 1000.0
                report = (
                    sanitizer.drain().to_json()
                    if sanitizer is not None
                    else None
                )
                result_queue.put(
                    (
                        "done",
                        worker_id,
                        index,
                        payloads,
                        delta,
                        metrics_delta,
                        report,
                        busy_ms,
                        wait_ms,
                        ledger_entries,
                    )
                )
    finally:
        if emitter is not None:
            emitter.stop()


def default_workers() -> int:
    """Worker count when none is requested (all cores, at least 1)."""
    return max(os.cpu_count() or 1, 1)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def _run_inline(
    queries: list[WorkloadQuery],
    techniques: tuple[str, ...],
    deadline_ms: float | None,
    batches: dict[int, list[dict]],
    deltas: dict[int, tuple],
    reports: list[dict],
    ledgers: dict[int, list],
    telemetry: TelemetryConfig | None,
) -> tuple[dict, dict[int, dict]]:
    """The ``workers <= 1`` path: same pipeline, no processes.

    Installs the same worker-lifetime session pool the sharded path
    gives each worker, so a single-process run exercises (and its
    records reflect) the identical warm-session trajectory.  With
    telemetry on, the single "worker" (id 0) runs the same emitter
    thread over an in-process channel, so the heartbeat log has the
    same shape as a sharded run's.
    """
    from ..smt.session import session_pool

    recorder = emitter = channel = None
    if telemetry is not None:
        recorder = _TelemetryRecorder(telemetry, workers=1)
        recorder.register(0)
        channel = BeaconChannel()
        emitter = HeartbeatEmitter(
            0, channel, interval_ms=telemetry.heartbeat_ms
        ).start()

    busy_ms = 0.0
    done = 0
    try:
        with session_pool():
            for wq in queries:
                sanitizer = maybe_install_sanitizer()
                start = _now()
                index, payloads, delta, metrics_delta, entries = _query_batch(
                    wq, techniques, deadline_ms,
                    telemetry=telemetry is not None,
                )
                busy_ms += (_now() - start) * 1000.0
                batches[index] = payloads
                deltas[index] = (delta, metrics_delta)
                ledgers[index] = entries
                done += 1
                if sanitizer is not None:
                    reports.append(sanitizer.drain().to_json())
                if recorder is not None:
                    recorder.fold(channel.drain())
                    recorder.driver_line(
                        done=done,
                        total=len(queries),
                        queue_depth=len(queries) - done,
                    )
                    recorder.check_silence()
    finally:
        if emitter is not None:
            emitter.stop()
            GLOBAL_BOARD.reset()
    pool_stats = {
        "steals": 0,
        "requeues": 0,
        "worker_restarts": 0,
        "queue_wait_ms": summarize_values([]),
        "busy_ms": [round(busy_ms, 1)],
    }
    if recorder is not None:
        recorder.fold(channel.drain())
        pool_stats["heartbeats"] = recorder.close()
    return pool_stats, {}


def _run_sharded(
    queries: list[WorkloadQuery],
    techniques: tuple[str, ...],
    deadline_ms: float | None,
    workers: int,
    batches: dict[int, list[dict]],
    deltas: dict[int, tuple],
    reports: list[dict],
    ledgers: dict[int, list],
    telemetry: TelemetryConfig | None,
) -> tuple[dict, dict[int, dict]]:
    """Dispatch ``queries`` over persistent workers (see module doc)."""
    # Spawn, never the platform default: fork would clone the parent's
    # warm registries (interned terms, counters) into every worker, and
    # the deltas workers report would ride on inherited state instead
    # of starting from zero.
    context = multiprocessing.get_context("spawn")
    result_queue = context.Queue()
    recorder = beacon_queue = beacon_channel = None
    heartbeat_ms = DEFAULT_INTERVAL_MS
    if telemetry is not None:
        recorder = _TelemetryRecorder(telemetry, workers=workers)
        heartbeat_ms = telemetry.heartbeat_ms
        beacon_queue = context.Queue()
        beacon_channel = BeaconChannel(beacon_queue)
    env_overrides = _worker_env_overrides()
    shards = [list(shard) for shard in assign_shards(expected_costs(queries), workers)]
    requeued: list[int] = []
    attempts: dict[int, int] = {}  # position -> dispatches so far
    inflight: list[tuple[int, int] | None] = [None] * workers
    task_queues: list = [None] * workers
    procs: list = [None] * workers
    worker_env: dict[int, dict] = {}
    busy = [0.0] * workers
    waits: list[float] = []
    steals = requeues = restarts = 0
    remaining = len(queries)

    def start_worker(wid: int) -> None:
        task_queues[wid] = context.Queue()
        proc = context.Process(
            target=_worker_main,
            args=(
                wid,
                task_queues[wid],
                result_queue,
                env_overrides,
                techniques,
                deadline_ms,
                beacon_queue,
                heartbeat_ms,
            ),
            daemon=True,
        )
        proc.start()
        procs[wid] = proc

    def next_position(wid: int) -> int | None:
        nonlocal steals
        if requeued:
            return requeued.pop(0)
        if shards[wid]:
            return shards[wid].pop(0)
        donor = None
        for w in range(workers):
            if shards[w] and (donor is None or len(shards[w]) > len(shards[donor])):
                donor = w
        if donor is None:
            return None
        steals += 1
        # Tail of the donor shard: the cheapest work it has not started.
        return shards[donor].pop()

    def dispatch(wid: int) -> None:
        position = next_position(wid)
        if position is None:
            return
        attempt = attempts.get(position, 0)
        attempts[position] = attempt + 1
        inflight[wid] = (position, attempt)
        task_queues[wid].put((queries[position], attempt))

    def handle_death(wid: int) -> None:
        nonlocal restarts, requeues, remaining
        procs[wid].join()
        procs[wid] = None
        task, inflight[wid] = inflight[wid], None
        if task is not None:
            position, attempt = task
            if attempt + 1 < _MAX_ATTEMPTS:
                # At-most-once requeue, tracked by the attempt ledger.
                requeues += 1
                requeued.append(position)
            else:
                wq = queries[position]
                batches[wq.index] = _crashed_payloads(wq, techniques)
                deltas[wq.index] = ({}, {})
                ledgers[wq.index] = []
                remaining -= 1
        if requeued or any(shards) or any(inflight):
            restarts += 1
            if restarts > 2 * len(queries) + workers:
                raise RuntimeError(
                    "parallel driver: workers are crash-looping "
                    f"({restarts} restarts for {len(queries)} queries)"
                )
            start_worker(wid)
            dispatch(wid)

    for wid in range(workers):
        start_worker(wid)
    for wid in range(workers):
        dispatch(wid)

    try:
        while remaining:
            if recorder is not None:
                recorder.fold(beacon_channel.drain())
                recorder.check_silence()
            try:
                message = result_queue.get(timeout=_POLL_S)
            except queue_mod.Empty:
                for wid in range(workers):
                    proc = procs[wid]
                    if proc is not None and not proc.is_alive():
                        handle_death(wid)
                continue
            if message[0] == "ready":
                _, wid, env_snapshot = message
                worker_env[wid] = env_snapshot
                if recorder is not None:
                    recorder.register(wid)
                continue
            (
                _,
                wid,
                index,
                payloads,
                delta,
                metrics_delta,
                report,
                busy_ms,
                wait_ms,
                ledger_entries,
            ) = message
            inflight[wid] = None
            busy[wid] += busy_ms
            waits.append(wait_ms)
            if report is not None:
                reports.append(report)
            if index in batches:
                # Duplicate of a cell the crash path already settled
                # (the worker died *after* posting its result): keep
                # the first copy, the merge stays at-most-once.
                dispatch(wid)
                continue
            batches[index] = payloads
            deltas[index] = (delta, metrics_delta)
            ledgers[index] = ledger_entries
            remaining -= 1
            dispatch(wid)
            if recorder is not None:
                recorder.driver_line(
                    done=len(queries) - remaining,
                    total=len(queries),
                    steals=steals,
                    requeues=requeues,
                    queue_depth=sum(len(s) for s in shards) + len(requeued),
                )
    finally:
        for wid in range(workers):
            proc = procs[wid]
            if proc is not None and proc.is_alive():
                task_queues[wid].put(None)
        for proc in procs:
            if proc is None:
                continue
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - shutdown backstop
                proc.terminate()
                proc.join()

    pool_stats = {
        "steals": steals,
        "requeues": requeues,
        "worker_restarts": restarts,
        "queue_wait_ms": summarize_values(waits),
        "busy_ms": [round(value, 1) for value in busy],
    }
    if recorder is not None:
        # Final beats posted by each worker's emitter.stop() land here.
        recorder.fold(beacon_channel.drain())
        pool_stats["heartbeats"] = recorder.close()
    return pool_stats, worker_env


def parallel_efficacy_records(
    *,
    num_queries: int | None = None,
    seed: int | None = None,
    techniques: tuple[str, ...] = TECHNIQUES,
    workers: int | None = None,
    sanitize: bool = False,
    deadline_ms: float | None = None,
    queries: list[WorkloadQuery] | None = None,
    telemetry: TelemetryConfig | None = None,
) -> ParallelRunResult:
    """Run the efficacy workload across ``workers`` processes.

    Returns the records in the same order as
    :func:`repro.bench.harness.efficacy_records` (ascending query
    index, subsets and techniques in their canonical enumeration
    order) together with the summed per-worker solver-counter deltas.
    Record ``predicate`` fields are SQL-rendered in transit and come
    back ``None``, exactly like ``fullscale`` checkpoint round-trips.

    ``deadline_ms`` caps each SIA cell's synthesis wall-clock; expired
    cells come back as recorded partial results (best valid predicate
    so far, section 6.2), never exceptions.  ``queries`` overrides the
    workload (the fullscale runner passes its pending subset);
    ``num_queries``/``seed`` generate it otherwise.

    ``sanitize=True`` installs the shared-state sanitizer in this
    process, exports its environment flag so every worker installs it
    too, and attaches the folded access report as ``.sanitizer``.

    ``telemetry`` (a :class:`TelemetryConfig`) turns on the heartbeat
    plane and the run ledger: workers beat into
    ``<dir>/heartbeats.jsonl`` and every cell lands in
    ``<dir>/ledger.jsonl`` (ascending query order, like the merge).
    """
    from .fullscale import _record_from_json

    num_queries = num_queries if num_queries is not None else bench_queries()
    seed = seed if seed is not None else bench_seed()
    workers = workers if workers is not None else default_workers()
    if queries is None:
        queries = generate_workload(num_queries, seed=seed)

    sanitizer = None
    if sanitize:
        os.environ[SANITIZE_ENV] = "1"
        sanitizer = install_sanitizer()
    reports: list[dict] = []
    batches: dict[int, list[dict]] = {}
    deltas: dict[int, tuple] = {}
    ledgers: dict[int, list] = {}
    start = _now()
    try:
        if workers <= 1:
            pool_stats, worker_env = _run_inline(
                queries, techniques, deadline_ms, batches, deltas, reports,
                ledgers, telemetry,
            )
        else:
            pool_stats, worker_env = _run_sharded(
                queries, techniques, deadline_ms, workers,
                batches, deltas, reports, ledgers, telemetry,
            )
    finally:
        if sanitize:
            os.environ.pop(SANITIZE_ENV, None)
    wall_ms = (_now() - start) * 1000.0
    effective = max(workers, 1)
    pool_stats["workers"] = effective
    pool_stats["wall_ms"] = round(wall_ms, 1)
    pool_stats["utilization"] = round(
        min(sum(pool_stats["busy_ms"]) / max(effective * wall_ms, 1e-9), 1.0),
        4,
    )
    if deadline_ms is not None:
        pool_stats["deadline_ms"] = deadline_ms

    # Merge per-batch deltas in ascending query index, never arrival
    # order, so the aggregate is identical for any worker count.
    totals: dict[str, int] = {}
    metric_totals: dict[str, dict] = {}
    for index in sorted(deltas):
        delta, metrics_delta = deltas[index]
        for name, value in delta.items():
            totals[name] = totals.get(name, 0) + value
        merge_delta(metric_totals, metrics_delta)

    records = [
        _record_from_json(payload)
        for index in sorted(batches)
        for payload in batches[index]
    ]
    if telemetry is not None:
        # Ledger lines land in ascending query order, exactly like the
        # record merge, so a ledger is reproducible across worker
        # counts (timestamps and counters aside).
        with RunLedger(
            telemetry.ledger_path,
            {
                "float_filter": resolve_float_mode(
                    _CONFIGS["SIA"].float_filter
                ),
                "techniques": list(techniques),
                "workers": workers,
                "deadline_ms": deadline_ms,
                "sanitize": sanitize,
                "seed": seed,
                "queries": len(queries),
            },
        ) as run_ledger:
            for index in sorted(ledgers):
                for entry in ledgers[index]:
                    run_ledger.append(entry)
    summary: dict | None = None
    if sanitizer is not None:
        reports.append(sanitizer.drain().to_json())
        uninstall_sanitizer()
        summary = summarize_reports(reports)
    return ParallelRunResult(
        records=records,
        counters=totals,
        metrics=metric_totals,
        workers=workers,
        sanitizer=summary,
        pool=pool_stats,
        worker_env=worker_env,
    )
