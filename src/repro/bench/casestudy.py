"""Synthetic production-workload case study (Figure 6).

The paper examines one day of Alibaba MaxCompute production queries and
classifies them into *syntax-based prospective* queries (a cross-table
predicate exists and one referenced table has no local predicate, so it
must be fully scanned) and the subset of *symbolically relevant* ones
(Sia can actually derive an unsatisfaction tuple for the scanned
table).  The production log is proprietary; per DESIGN.md we substitute
a synthetic population with the same structure:

* a configurable fraction of prospective queries drawn from the
  section 6.3 grammar (every term crosses tables), and
* non-prospective queries that already carry local predicates on both
  sides.

For each query we record execution time, a CPU proxy (tuples processed)
and a memory proxy (peak materialised bytes) on the bundled engine,
yielding the same three distributions as Figure 6.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass

from ..engine import build_plan, execute
from ..predicates import Col, Comparison, Lit, lower_predicate, pand
from ..rewrite import is_syntax_based_prospective
from ..smt import is_satisfiable
from ..smt.qe import unsat_region
from ..tpch import LINEITEM_DATES, generate_workload
from ..tpch.workload import ORDERDATE, make_query


@dataclass
class CaseStudyRecord:
    query_index: int
    prospective: bool
    symbolically_relevant: bool
    elapsed_ms: float
    tuples: int
    peak_bytes: int


def _non_prospective_query(index: int, rng: random.Random):
    """A query whose tables both have local predicates (not prospective)."""
    ship = rng.choice(LINEITEM_DATES)
    d1 = dt.date(1993, 1, 1) + dt.timedelta(days=rng.randrange(1500))
    d2 = dt.date(1993, 1, 1) + dt.timedelta(days=rng.randrange(1500))
    pred = pand(
        [
            Comparison(Col(ship), "<", Lit.date(d1)),
            Comparison(Col(ORDERDATE), "<", Lit.date(d2)),
        ]
    )
    return make_query(index, pred)


def _is_symbolically_relevant(wq) -> bool:
    """Sia can generate an unsatisfaction tuple for the lineitem side."""
    targets = {
        column for column in wq.predicate.columns() if column.table == "lineitem"
    }
    if not targets:
        return False
    formula, ctx = lower_predicate(wq.predicate)
    target_vars = {ctx.var_of_column[c] for c in targets if c in ctx.var_of_column}
    if len(target_vars) != len(targets):
        return False
    try:
        region = unsat_region(formula, target_vars)
        return is_satisfiable(region.formula)
    except Exception:
        return False


def case_study_records(
    *,
    num_queries: int = 40,
    prospective_fraction: float = 0.6,
    scale_factor: float = 0.01,
    seed: int = 7,
) -> list[CaseStudyRecord]:
    """Run the synthetic population and collect the Figure 6 metrics."""
    from .harness import catalog_for

    rng = random.Random(seed)
    catalog = catalog_for(scale_factor, seed=0)
    num_prospective = int(num_queries * prospective_fraction)
    prospective = generate_workload(num_prospective, seed=seed)
    others = [
        _non_prospective_query(num_prospective + i, rng)
        for i in range(num_queries - num_prospective)
    ]

    records: list[CaseStudyRecord] = []
    for wq in list(prospective) + others:
        is_prospective = is_syntax_based_prospective(wq.query)
        relevant = is_prospective and _is_symbolically_relevant(wq)
        relation, stats = execute(build_plan(wq.query), catalog)
        records.append(
            CaseStudyRecord(
                query_index=wq.index,
                prospective=is_prospective,
                symbolically_relevant=relevant,
                elapsed_ms=stats.elapsed_ms,
                tuples=stats.tuples_processed,
                peak_bytes=stats.peak_bytes,
            )
        )
        del relation
    return records


def fig6_rows(records: list[CaseStudyRecord]):
    """Bucketed distributions for the two query classes."""
    from statistics import mean

    from .report import histogram

    classes = {
        "syntax-based prospective": [r for r in records if r.prospective],
        "symbolically relevant": [r for r in records if r.symbolically_relevant],
    }
    time_edges = (5, 10, 25, 50, 100)
    rows = []
    for label, subset in classes.items():
        if not subset:
            rows.append([label, 0, "-", "-", "-"] + [0] * (len(time_edges) + 1))
            continue
        rows.append(
            [
                label,
                len(subset),
                f"{mean(r.elapsed_ms for r in subset):.1f}",
                f"{mean(r.tuples for r in subset):.0f}",
                f"{mean(r.peak_bytes for r in subset) / 1e6:.2f}",
            ]
            + histogram([r.elapsed_ms for r in subset], time_edges)
        )
    labels = ["<=5ms", "<=10ms", "<=25ms", "<=50ms", "<=100ms", ">100ms"]
    return rows, labels
