"""Machine-readable perf trajectory: ``BENCH_smt_micro.json``.

The micro-benchmarks (``benchmarks/bench_smt_micro.py``) and the
parallel workload driver (``repro bench``) record their timings and
solver counters here, one JSON document at the repo root, so CI can
archive a perf point per commit and the trajectory can be diffed
across the PR stack.

Schema (version 1)::

    {
      "schema": 1,
      "benchmarks": {
        "<name>": {
          "median_ms": float,      # median wall-clock per run
          "p95_ms": float,         # 95th percentile per run
          "runs": int,             # timed runs aggregated
          "counters": {...},       # GLOBAL_COUNTERS delta over the runs
          "trace_id": str,         # optional: links the entry to the
                                   # JSONL trace captured for the same
                                   # run (``repro trace`` on that file
                                   # attributes the wall-clock here)
          "metrics": {...},        # optional: GLOBAL_METRICS summary
          ...                      # benchmark-specific extras
        }
      }
    }

Writes merge by benchmark name, so the micro-bench and the workload
driver can contribute to the same file independently.  ``trace_id``
and ``metrics`` are additive extras within schema version 1: absent
in entries written before observability landed, present whenever a
run was traced (see :func:`stamp_trace_id`).
"""

from __future__ import annotations

import json
from pathlib import Path
from statistics import median, quantiles

SCHEMA_VERSION = 1
DEFAULT_PATH = Path("BENCH_smt_micro.json")


def summarize_times(times_ms: list[float]) -> dict:
    """Median / p95 / run-count summary of per-run wall-clock times."""
    if not times_ms:
        raise ValueError("no timed runs to summarize")
    if len(times_ms) == 1:
        p95 = times_ms[0]
    else:
        # sia: allow(SIA001) -- timing summary, not solver arithmetic
        p95 = quantiles(times_ms, n=20)[-1]
    return {
        "median_ms": round(median(times_ms), 4),
        "p95_ms": round(p95, 4),
        "runs": len(times_ms),
    }


def stamp_trace_id(benchmarks: dict[str, dict], trace_id: str | None) -> None:
    """Attach ``trace_id`` to every entry (no-op when untraced)."""
    if not trace_id:
        return
    for entry in benchmarks.values():
        entry["trace_id"] = trace_id


def update_bench_json(
    benchmarks: dict[str, dict], path: Path | str = DEFAULT_PATH
) -> Path:
    """Merge ``benchmarks`` (name -> entry) into the JSON file."""
    path = Path(path)
    payload: dict = {"schema": SCHEMA_VERSION, "benchmarks": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing.get("benchmarks"), dict):
                payload["benchmarks"] = existing["benchmarks"]
        except (ValueError, OSError):
            pass  # unreadable trajectory: start fresh rather than crash
    payload["benchmarks"].update(benchmarks)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
