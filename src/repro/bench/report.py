"""Plain-text table rendering and result persistence for experiments.

Every benchmark writes both to stdout and to ``results/<name>.txt`` in
the repository root so EXPERIMENTS.md can cite stable artefacts.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

RESULTS_DIR = Path(
    os.environ.get("REPRO_RESULTS_DIR", Path(__file__).resolve().parents[3] / "results")
)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a separator under the header."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def emit(name: str, text: str) -> None:
    """Print a report and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def histogram(values: Sequence[float], edges: Sequence[float]) -> list[int]:
    """Counts per bucket: (-inf, e0], (e0, e1], ..., (en, +inf)."""
    counts = [0] * (len(edges) + 1)
    for value in values:
        placed = False
        for i, edge in enumerate(edges):
            if value <= edge:
                counts[i] += 1
                placed = True
                break
        if not placed:
            counts[-1] += 1
    return counts
