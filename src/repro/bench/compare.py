"""Structural BENCH diff: the perf-regression gate behind ``--compare``.

``BENCH_smt_micro.json`` (see :mod:`repro.bench.perflog`) accumulates
one perf entry per benchmark; this module diffs two such documents and
decides, entry by entry, whether the new side regressed:

* an entry regresses when its ``median_ms`` *or* ``p95_ms`` exceeds
  the old value by more than the corresponding ratio threshold **and**
  by more than an absolute floor (``min_ms``) -- the floor keeps
  microsecond-scale entries from tripping a 1.5x ratio on noise;
* an entry present in the old document but absent from the new one is
  a regression too (a benchmark silently dropping out of the
  trajectory is exactly what a gate must catch), unless
  ``allow_missing`` is set;
* entries only in the new document are reported as added, never fatal.

p95 gets its own (typically looser) threshold because the ROADMAP
wants the tail "tracked per-PR, not just the median" -- the tail is
noisier, but a sustained 2x tail drift should fail CI even when the
median holds.

``repro bench --compare OLD.json`` runs this as a compare-only mode
(no workload is executed) and exits nonzero on any regression.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "CompareResult",
    "EntryDiff",
    "compare_bench",
    "load_bench",
    "render_compare",
]

#: Default drift thresholds: ratios a new median/p95 may reach before
#: counting as a regression, and the absolute floor (ms) both must
#: also clear.  CI passes looser ratios for tiny-scale smoke entries.
DEFAULT_MEDIAN_RATIO = 1.5
DEFAULT_P95_RATIO = 2.0
DEFAULT_MIN_MS = 5.0


@dataclass(frozen=True)
class EntryDiff:
    """One benchmark's old-vs-new medians and the verdict."""

    name: str
    status: str  # "ok" | "regressed" | "missing" | "added"
    old_median: float | None = None
    new_median: float | None = None
    old_p95: float | None = None
    new_p95: float | None = None
    reasons: tuple[str, ...] = ()

    @property
    def median_ratio(self) -> float | None:
        if not self.old_median or self.new_median is None:
            return None
        return self.new_median / self.old_median

    @property
    def p95_ratio(self) -> float | None:
        if not self.old_p95 or self.new_p95 is None:
            return None
        return self.new_p95 / self.old_p95


@dataclass
class CompareResult:
    """Every entry diff plus the regression verdict."""

    entries: list[EntryDiff] = field(default_factory=list)
    thresholds: dict = field(default_factory=dict)

    @property
    def regressions(self) -> list[EntryDiff]:
        return [e for e in self.entries if e.status in ("regressed", "missing")]

    @property
    def ok(self) -> bool:
        return not self.regressions


def load_bench(path: Path | str) -> dict[str, dict]:
    """The ``benchmarks`` table of a perflog JSON document."""
    payload = json.loads(Path(path).read_text())
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise ValueError(f"{path}: not a BENCH document (no 'benchmarks')")
    return benchmarks


def compare_bench(
    old: dict[str, dict],
    new: dict[str, dict],
    *,
    median_ratio: float = DEFAULT_MEDIAN_RATIO,
    p95_ratio: float = DEFAULT_P95_RATIO,
    min_ms: float = DEFAULT_MIN_MS,
    allow_missing: bool = False,
) -> CompareResult:
    """Diff two benchmark tables (see module docstring for the rules)."""
    result = CompareResult(
        thresholds={
            "median_ratio": median_ratio,
            "p95_ratio": p95_ratio,
            "min_ms": min_ms,
        }
    )
    for name in sorted(old):
        old_entry = old[name]
        old_median = old_entry.get("median_ms")
        old_p95 = old_entry.get("p95_ms")
        new_entry = new.get(name)
        if new_entry is None:
            result.entries.append(
                EntryDiff(
                    name=name,
                    status="ok" if allow_missing else "missing",
                    old_median=old_median,
                    old_p95=old_p95,
                    reasons=() if allow_missing else (
                        "entry absent from the new document",
                    ),
                )
            )
            continue
        new_median = new_entry.get("median_ms")
        new_p95 = new_entry.get("p95_ms")
        reasons = []
        for label, old_v, new_v, ratio in (
            ("median_ms", old_median, new_median, median_ratio),
            ("p95_ms", old_p95, new_p95, p95_ratio),
        ):
            if old_v is None or new_v is None:
                continue
            if new_v > old_v * ratio and new_v - old_v > min_ms:
                reasons.append(
                    f"{label} {old_v:.1f} -> {new_v:.1f} "
                    f"({new_v / old_v if old_v else float('inf'):.2f}x "
                    f"> {ratio:.2f}x)"
                )
        result.entries.append(
            EntryDiff(
                name=name,
                status="regressed" if reasons else "ok",
                old_median=old_median,
                new_median=new_median,
                old_p95=old_p95,
                new_p95=new_p95,
                reasons=tuple(reasons),
            )
        )
    for name in sorted(set(new) - set(old)):
        entry = new[name]
        result.entries.append(
            EntryDiff(
                name=name,
                status="added",
                new_median=entry.get("median_ms"),
                new_p95=entry.get("p95_ms"),
            )
        )
    return result


def _cell(value: float | None) -> str:
    return f"{value:.1f}" if value is not None else "-"


def render_compare(result: CompareResult) -> str:
    """The diff as an aligned table plus a one-line verdict."""
    headers = ["benchmark", "status", "median old", "new", "p95 old", "new"]
    body = [
        [
            diff.name,
            diff.status,
            _cell(diff.old_median),
            _cell(diff.new_median),
            _cell(diff.old_p95),
            _cell(diff.new_p95),
        ]
        for diff in result.entries
    ]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in body))
        if body
        else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(cells: list[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) if i < 2 else cell.rjust(widths[i])
            for i, cell in enumerate(cells)
        ).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(line) for line in body)
    for diff in result.regressions:
        for reason in diff.reasons:
            lines.append(f"  regression {diff.name}: {reason}")
    thresholds = result.thresholds
    lines.append("")
    lines.append(
        ("PASS" if result.ok else "FAIL")
        + f": {len(result.regressions)} regression(s) at thresholds "
        f"median {thresholds.get('median_ratio')}x / "
        f"p95 {thresholds.get('p95_ratio')}x / "
        f"floor {thresholds.get('min_ms')} ms"
    )
    return "\n".join(lines)
