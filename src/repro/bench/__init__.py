"""Benchmark harness for reproducing the paper's tables and figures."""

from .casestudy import CaseStudyRecord, case_study_records, fig6_rows
from .harness import (
    EfficacyRecord,
    RuntimeRecord,
    TECHNIQUES,
    bench_queries,
    bench_seed,
    catalog_for,
    column_subsets,
    efficacy_records,
    fig7_rows,
    fig8_rows,
    fig9_summary,
    runtime_records,
    sf_large,
    sf_small,
    table2_rows,
    table3_rows,
    table4_rows,
)
from .report import emit, format_table, histogram

__all__ = [
    "CaseStudyRecord",
    "EfficacyRecord",
    "RuntimeRecord",
    "TECHNIQUES",
    "bench_queries",
    "bench_seed",
    "case_study_records",
    "catalog_for",
    "column_subsets",
    "efficacy_records",
    "emit",
    "fig6_rows",
    "fig7_rows",
    "fig8_rows",
    "fig9_summary",
    "format_table",
    "histogram",
    "runtime_records",
    "sf_large",
    "sf_small",
    "table2_rows",
    "table3_rows",
    "table4_rows",
]
