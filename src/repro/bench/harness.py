"""Shared experiment driver for the paper's tables and figures.

All benchmarks draw from two cached record sets:

* :func:`efficacy_records` -- one synthesis attempt per (query, column
  subset, technique), backing Table 2, Table 3, Figure 7 and Figure 8.
* :func:`runtime_records` -- one rewrite + original/rewritten execution
  per query and scale factor, backing Figure 9 and Table 4.

Scale knobs (environment variables):

=====================  =======  ==========================================
REPRO_BENCH_QUERIES    8        workload size (paper: 200)
REPRO_BENCH_SEED       42       workload seed
REPRO_BENCH_SF_SMALL   0.005    small scale factor (paper: 1)
REPRO_BENCH_SF_LARGE   0.02     large scale factor (paper: 10)
REPRO_BENCH_PARALLEL   0        efficacy worker processes (0/1 = in-process)
=====================  =======  ==========================================

The defaults keep the whole benchmark suite in the minutes range; set
``REPRO_BENCH_QUERIES=200`` for the paper-scale run (about an hour).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, replace
from statistics import mean

from ..obs.clock import now as _now
from ..core import (
    SIA_DEFAULT,
    SIA_V1,
    SIA_V2,
    SiaConfig,
    Synthesizer,
    TransitiveClosure,
)
from ..core.synthesize import _implication_holds
from ..engine import Catalog, build_plan, execute
from ..predicates import Column, Pred, lower_predicate, selectivity
from ..rewrite import rewrite_query
from ..smt import conj, is_satisfiable
from ..smt.qe import unsat_region
from ..tpch import LINEITEM_DATES, WorkloadQuery, generate_catalog, generate_workload

TECHNIQUES = ("SIA", "TC", "SIA_v1", "SIA_v2")

_CONFIGS: dict[str, SiaConfig] = {
    "SIA": SIA_DEFAULT,
    "SIA_v1": SIA_V1,
    "SIA_v2": SIA_V2,
}


def env_int(name: str, default: int) -> int:
    """Integer knob from the environment."""
    return int(os.environ.get(name, default))


def env_float(name: str, default: float) -> float:
    """Float knob from the environment."""
    return float(os.environ.get(name, default))


def bench_queries() -> int:
    """Workload size for the benchmark suite (paper: 200)."""
    return env_int("REPRO_BENCH_QUERIES", 8)


def bench_seed() -> int:
    """Workload seed for the benchmark suite."""
    return env_int("REPRO_BENCH_SEED", 42)


def sf_small() -> float:
    """Small engine scale factor (stands in for the paper's SF 1)."""
    return env_float("REPRO_BENCH_SF_SMALL", 0.005)


def sf_large() -> float:
    """Large engine scale factor (stands in for the paper's SF 10)."""
    return env_float("REPRO_BENCH_SF_LARGE", 0.02)


def column_subsets() -> list[tuple[Column, ...]]:
    """All non-empty subsets of the three lineitem date columns."""
    out: list[tuple[Column, ...]] = []
    for size in (1, 2, 3):
        out.extend(itertools.combinations(LINEITEM_DATES, size))
    return out


# ----------------------------------------------------------------------
# Efficacy records (Tables 2/3, Figures 7/8)
# ----------------------------------------------------------------------
@dataclass
class EfficacyRecord:
    query_index: int
    subset: tuple[str, ...]
    n_cols: int
    technique: str
    possible: bool
    valid: bool
    optimal: bool
    iterations: int = 0
    true_samples: int = 0
    false_samples: int = 0
    generation_ms: float = 0.0
    learning_ms: float = 0.0
    validation_ms: float = 0.0
    predicate: Pred | None = None
    #: SQL rendering of ``predicate``, preserved across JSON transit
    #: (checkpoint lines, worker payloads) where the ``Pred`` tree
    #: itself is not shipped.
    predicate_sql: str | None = None
    #: The cell's synthesis deadline expired (section 6.2): verdict and
    #: timings describe a truncated run.  Flows through checkpoint
    #: lines, the run ledger and reports so aggregates can keep partial
    #: cells out of timing averages.
    partial: bool = False


_EFFICACY_CACHE: dict[tuple, list[EfficacyRecord]] = {}


def _ground_truth_possible(wq: WorkloadQuery, subset: tuple[Column, ...]) -> bool:
    """Whether any non-trivial valid predicate over ``subset`` exists:
    the unsatisfaction region must be non-empty (Lemma 4)."""
    if not set(subset) <= wq.predicate.columns():
        return False
    formula, ctx = lower_predicate(wq.predicate)
    target_vars = {ctx.var_of_column[c] for c in subset if c in ctx.var_of_column}
    if len(target_vars) != len(subset):
        return False
    region = unsat_region(formula, target_vars)
    try:
        return is_satisfiable(region.formula)
    except Exception:
        return False


def _run_sia_variant(
    wq: WorkloadQuery,
    subset: tuple[Column, ...],
    technique: str,
    *,
    deadline_ms: float | None = None,
) -> EfficacyRecord:
    """One synthesis cell.  ``deadline_ms`` caps the CEGIS wall-clock
    via ``SiaConfig.timeout_ms`` (cooperative, section 6.2): an expired
    run still returns a record carrying the best predicate found."""
    config = _CONFIGS[technique]
    if deadline_ms is not None:
        config = replace(config, timeout_ms=deadline_ms)
    outcome = Synthesizer(config).synthesize(wq.predicate, set(subset))
    return EfficacyRecord(
        query_index=wq.index,
        subset=tuple(c.name for c in subset),
        n_cols=len(subset),
        technique=technique,
        possible=False,  # filled by the caller
        valid=outcome.is_valid,
        optimal=outcome.is_optimal,
        iterations=outcome.iterations,
        true_samples=outcome.true_samples,
        false_samples=outcome.false_samples,
        generation_ms=outcome.timings.generation_ms,
        learning_ms=outcome.timings.learning_ms,
        validation_ms=outcome.timings.validation_ms,
        predicate=outcome.predicate,
        partial=outcome.timed_out,
    )


def _run_transitive_closure(
    wq: WorkloadQuery, subset: tuple[Column, ...]
) -> EfficacyRecord:
    start = _now()
    derived = TransitiveClosure(wq.predicate).derive(set(subset))
    generation_ms = (_now() - start) * 1000.0
    record = EfficacyRecord(
        query_index=wq.index,
        subset=tuple(c.name for c in subset),
        n_cols=len(subset),
        technique="TC",
        possible=False,
        valid=derived is not None,
        optimal=False,
        generation_ms=generation_ms,
        predicate=derived,
    )
    if derived is not None:
        start = _now()
        record.optimal = _tc_is_optimal(wq, subset, derived)
        record.validation_ms = (_now() - start) * 1000.0
    return record


def _tc_is_optimal(
    wq: WorkloadQuery, subset: tuple[Column, ...], derived: Pred
) -> bool:
    formula, ctx = lower_predicate(wq.predicate)
    target_vars = {ctx.var_of_column[c] for c in subset}
    region = unsat_region(formula, target_vars)
    derived_formula, _ = lower_predicate(derived, ctx)
    return _implication_holds(conj([region.formula, derived_formula]), 2000)


def efficacy_records(
    *,
    num_queries: int | None = None,
    seed: int | None = None,
    techniques: tuple[str, ...] = TECHNIQUES,
) -> list[EfficacyRecord]:
    """Synthesis attempts for every (query, subset, technique).

    With ``REPRO_BENCH_PARALLEL`` set above 1, the workload is fanned
    out over that many worker processes (see
    :mod:`repro.bench.parallel`); record order is identical either way.
    """
    num_queries = num_queries if num_queries is not None else bench_queries()
    seed = seed if seed is not None else bench_seed()
    key = (num_queries, seed, techniques)
    cached = _EFFICACY_CACHE.get(key)
    if cached is not None:
        return cached

    workers = env_int("REPRO_BENCH_PARALLEL", 0)
    if workers > 1:
        from .parallel import parallel_efficacy_records

        result = parallel_efficacy_records(
            num_queries=num_queries,
            seed=seed,
            techniques=techniques,
            workers=workers,
        )
        _EFFICACY_CACHE[key] = result.records
        return result.records

    records: list[EfficacyRecord] = []
    for wq in generate_workload(num_queries, seed=seed):
        for subset in column_subsets():
            possible = _ground_truth_possible(wq, subset)
            for technique in techniques:
                if technique == "TC":
                    record = _run_transitive_closure(wq, subset)
                else:
                    record = _run_sia_variant(wq, subset, technique)
                record.possible = possible
                records.append(record)
    _EFFICACY_CACHE[key] = records
    return records


# ----------------------------------------------------------------------
# Aggregations for Tables 2/3 and Figures 7/8
# ----------------------------------------------------------------------
def table2_rows(records: list[EfficacyRecord]) -> list[list[object]]:
    """# possible / per-technique # valid and # optimal, by column count."""
    rows = []
    for n_cols in (1, 2, 3):
        subset_records = [r for r in records if r.n_cols == n_cols]
        possible_keys = {
            (r.query_index, r.subset) for r in subset_records if r.possible
        }
        row: list[object] = [_COL_LABEL[n_cols], len(possible_keys)]
        for technique in TECHNIQUES:
            tech = [
                r
                for r in subset_records
                if r.technique == technique and r.possible
            ]
            row.append(sum(1 for r in tech if r.valid))
            row.append(sum(1 for r in tech if r.optimal))
        rows.append(row)
    return rows


_COL_LABEL = {1: "one", 2: "two", 3: "three"}


def table3_rows(records: list[EfficacyRecord]) -> list[list[object]]:
    """Average generation/learning/validation ms per column count.

    Partial cells (expired deadlines) are excluded: their timings are
    truncated at the budget, and averaging them in would silently bias
    the per-phase costs downward.
    """
    rows = []
    for n_cols in (1, 2, 3):
        row: list[object] = [_COL_LABEL[n_cols]]
        for technique in ("SIA", "SIA_v1", "SIA_v2"):
            tech = [
                r
                for r in records
                if r.n_cols == n_cols and r.technique == technique
                and r.possible and not r.partial
            ]
            if tech:
                row.extend(
                    [
                        mean(r.generation_ms for r in tech),
                        mean(r.learning_ms for r in tech),
                        mean(r.validation_ms for r in tech),
                    ]
                )
            else:
                row.extend(["-", "-", "-"])
        rows.append(row)
    return rows


def fig7_rows(records: list[EfficacyRecord]) -> tuple[list[list[object]], list[str]]:
    """Iterations-to-optimal distribution for SIA, by column count."""
    edges = (1, 10, 20, 30, 40)
    labels = ["1", "2-10", "11-20", "21-30", "31-40", "41+"]
    rows = []
    for n_cols in (1, 2, 3):
        optimal = [
            r.iterations
            for r in records
            if r.technique == "SIA" and r.n_cols == n_cols and r.optimal
        ]
        from .report import histogram

        counts = histogram(optimal, edges)
        avg = mean(optimal) if optimal else 0.0
        rows.append([_COL_LABEL[n_cols], len(optimal), f"{avg:.1f}"] + counts)
    return rows, labels


def fig8_rows(records: list[EfficacyRecord]) -> tuple[list[list[object]], list[str]]:
    """Distribution of final TRUE/FALSE sample counts for SIA."""
    edges = (25, 50, 100, 150, 200)
    labels = ["<=25", "26-50", "51-100", "101-150", "151-200", ">200"]
    from .report import histogram

    rows = []
    for kind, getter in (
        ("TRUE", lambda r: r.true_samples),
        ("FALSE", lambda r: r.false_samples),
    ):
        for n_cols in (1, 2, 3):
            values = [
                getter(r)
                for r in records
                if r.technique == "SIA" and r.n_cols == n_cols and r.valid
            ]
            rows.append([kind, _COL_LABEL[n_cols]] + histogram(values, edges))
    return rows, labels


# ----------------------------------------------------------------------
# Runtime records (Figure 9, Table 4)
# ----------------------------------------------------------------------
@dataclass
class RuntimeRecord:
    query_index: int
    rewritten: bool
    selectivity: float = 1.0
    original_ms: float = 0.0
    rewritten_ms: float = 0.0
    original_tuples: int = 0
    rewritten_tuples: int = 0
    original_rows: int = 0
    rewritten_rows: int = 0

    @property
    def time_speedup(self) -> float:
        if self.rewritten_ms <= 0:
            return 1.0
        return self.original_ms / self.rewritten_ms

    @property
    def tuple_speedup(self) -> float:
        """Hardware-independent proxy: join-input tuples saved.

        Predicate pushdown acts exactly here (fewer tuples enter the
        join), so this ratio isolates the paper's mechanism from
        engine-specific constant factors.
        """
        if self.rewritten_tuples <= 0:
            return 1.0
        return self.original_tuples / self.rewritten_tuples


_RUNTIME_CACHE: dict[tuple, list[RuntimeRecord]] = {}
_CATALOG_CACHE: dict[tuple, Catalog] = {}


def catalog_for(scale_factor: float, seed: int = 0) -> Catalog:
    """Cached TPC-H catalog per (scale factor, seed)."""
    key = (scale_factor, seed)
    if key not in _CATALOG_CACHE:
        _CATALOG_CACHE[key] = generate_catalog(scale_factor, seed=seed)
    return _CATALOG_CACHE[key]


def runtime_records(
    *,
    scale_factor: float,
    num_queries: int | None = None,
    seed: int | None = None,
    repeats: int = 3,
) -> list[RuntimeRecord]:
    """Original vs rewritten execution for every rewritable query."""
    num_queries = num_queries if num_queries is not None else bench_queries()
    seed = seed if seed is not None else bench_seed()
    key = (scale_factor, num_queries, seed)
    cached = _RUNTIME_CACHE.get(key)
    if cached is not None:
        return cached

    catalog = catalog_for(scale_factor)
    lineitem = catalog.get("lineitem").to_relation()
    records: list[RuntimeRecord] = []
    for wq in generate_workload(num_queries, seed=seed):
        result = rewrite_query(wq.query, "lineitem")
        if not result.succeeded:
            records.append(RuntimeRecord(wq.index, rewritten=False))
            continue
        sel = selectivity(
            result.outcome.predicate, lineitem.resolver(), lineitem.num_rows
        )
        plan_orig = build_plan(wq.query)
        plan_rew = build_plan(result.rewritten)
        orig_ms, orig_tuples, orig_rows = _measure(plan_orig, catalog, repeats)
        rew_ms, rew_tuples, rew_rows = _measure(plan_rew, catalog, repeats)
        if orig_rows != rew_rows:
            raise AssertionError(
                f"semantics changed for query {wq.index}: "
                f"{orig_rows} vs {rew_rows} rows"
            )
        records.append(
            RuntimeRecord(
                query_index=wq.index,
                rewritten=True,
                selectivity=sel,
                original_ms=orig_ms,
                rewritten_ms=rew_ms,
                original_tuples=orig_tuples,
                rewritten_tuples=rew_tuples,
                original_rows=orig_rows,
                rewritten_rows=rew_rows,
            )
        )
    _RUNTIME_CACHE[key] = records
    return records


def _measure(plan, catalog: Catalog, repeats: int) -> tuple[float, int, int]:
    best_ms = float("inf")
    tuples = rows = 0
    for _ in range(repeats):
        relation, stats = execute(plan, catalog)
        best_ms = min(best_ms, stats.elapsed_ms)
        tuples = stats.join_input_tuples
        rows = relation.num_rows
    return best_ms, tuples, rows


def fig9_summary(records: list[RuntimeRecord]) -> dict[str, int]:
    """The counts the paper reads off the Figure 9 scatter plots."""
    done = [r for r in records if r.rewritten]
    return {
        "rewritten": len(done),
        "faster": sum(1 for r in done if r.time_speedup > 1.0),
        "faster_2x": sum(1 for r in done if r.time_speedup >= 2.0),
        "slower": sum(1 for r in done if r.time_speedup < 1.0),
        "slower_2x": sum(1 for r in done if r.time_speedup <= 0.5),
        "cost_faster": sum(1 for r in done if r.tuple_speedup > 1.0),
        "cost_faster_2x": sum(1 for r in done if r.tuple_speedup >= 2.0),
    }


def table4_rows(records: list[RuntimeRecord]) -> list[list[object]]:
    """Average synthesized-predicate selectivity per outcome class."""
    done = [r for r in records if r.rewritten]
    classes = {
        "faster": [r for r in done if r.time_speedup > 1.0],
        "2x faster": [r for r in done if r.time_speedup >= 2.0],
        "slower": [r for r in done if r.time_speedup < 1.0],
        "2x slower": [r for r in done if r.time_speedup <= 0.5],
    }
    rows = []
    for label, subset in classes.items():
        avg = mean(r.selectivity for r in subset) if subset else float("nan")
        rows.append([label, len(subset), avg if subset else "-"])
    return rows
