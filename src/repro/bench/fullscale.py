"""Resumable paper-scale experiment runner.

The full Table-2/3 experiment (200 queries × 7 subsets × 4 techniques)
takes on the order of an hour in this pure-Python reproduction, so this
runner checkpoints one JSON line per finished (query, subset,
technique) cell and skips completed cells on restart:

    python -m repro.bench.fullscale --queries 200 --out results/full.jsonl
    python -m repro.bench.fullscale --summarize results/full.jsonl

The summary prints Table 2 and Table 3 from whatever cells exist, so a
partial run is already inspectable.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from ..obs.clock import now as _now
from ..sql.printer import render_pred
from ..tpch import generate_workload
from .harness import (
    TECHNIQUES,
    EfficacyRecord,
    _ground_truth_possible,
    _run_sia_variant,
    _run_transitive_closure,
    column_subsets,
    table2_rows,
    table3_rows,
)
from .report import format_table


def _record_to_json(record: EfficacyRecord) -> dict:
    payload = dataclasses.asdict(record)
    del payload["predicate_sql"]  # folded into the "predicate" key
    payload["predicate"] = (
        render_pred(record.predicate)
        if record.predicate is not None
        else record.predicate_sql
    )
    return payload


def _record_from_json(payload: dict) -> EfficacyRecord:
    payload = dict(payload)
    payload["subset"] = tuple(payload["subset"])
    # Checkpoints written before the partial flag existed lack the key.
    payload.setdefault("partial", False)
    # The Pred tree is not shipped across JSON transit; its SQL
    # rendering is kept so re-encoding a decoded record (the parallel
    # fullscale path) does not blank the checkpoint's predicate field.
    payload["predicate_sql"] = payload["predicate"]
    payload["predicate"] = None
    return EfficacyRecord(**payload)


def _cell_key(payload: dict) -> tuple:
    return (payload["query_index"], tuple(payload["subset"]), payload["technique"])


def run(
    queries: int,
    seed: int,
    out_path: Path,
    techniques=TECHNIQUES,
    *,
    workers: int = 1,
    deadline_ms: float | None = None,
    sanitize: bool = False,
    stats: dict | None = None,
    telemetry=None,
) -> int:
    """Run (resumably) and return the number of new cells computed.

    ``workers > 1`` hands the pending queries to the sharded
    work-stealing driver (:mod:`repro.bench.parallel`): queries with
    any missing cell run as whole batches on persistent warm workers
    and only the cells absent from the checkpoint are appended, so
    parallel and sequential runs extend the same file
    interchangeably.  The driver's scheduling statistics land in
    ``stats`` (when given).  ``deadline_ms`` bounds each SIA cell's
    synthesis wall-clock on both paths; expired cells are checkpointed
    as partial results (``partial: true``, truncated timings).

    ``telemetry`` (a :class:`~repro.bench.parallel.TelemetryConfig`)
    turns on the heartbeat/ledger plane; it routes even single-worker
    runs through the driver so the telemetry shape is uniform.
    """
    done: set[tuple] = set()
    if out_path.exists():
        with out_path.open() as handle:
            for line in handle:
                if line.strip():
                    done.add(_cell_key(json.loads(line)))
    out_path.parent.mkdir(parents=True, exist_ok=True)

    if workers > 1 or telemetry is not None:
        return _run_parallel(
            queries, seed, out_path, tuple(techniques), done,
            workers=workers, deadline_ms=deadline_ms,
            sanitize=sanitize, stats=stats, telemetry=telemetry,
        )

    new_cells = 0
    with out_path.open("a") as handle:
        for wq in generate_workload(queries, seed=seed):
            for subset in column_subsets():
                subset_names = tuple(c.name for c in subset)
                pending = [
                    t for t in techniques
                    if (wq.index, subset_names, t) not in done
                ]
                if not pending:
                    continue
                possible = _ground_truth_possible(wq, subset)
                for technique in pending:
                    start = _now()
                    if technique == "TC":
                        record = _run_transitive_closure(wq, subset)
                    else:
                        record = _run_sia_variant(
                            wq, subset, technique, deadline_ms=deadline_ms
                        )
                    record.possible = possible
                    handle.write(json.dumps(_record_to_json(record)) + "\n")
                    handle.flush()
                    new_cells += 1
                    print(
                        f"q{wq.index} {'+'.join(subset_names)} {technique}: "
                        f"valid={record.valid} optimal={record.optimal} "
                        f"({_now() - start:.1f}s)",
                        file=sys.stderr,
                    )
    return new_cells


def _run_parallel(
    queries: int,
    seed: int,
    out_path: Path,
    techniques: tuple[str, ...],
    done: set[tuple],
    *,
    workers: int,
    deadline_ms: float | None,
    sanitize: bool,
    stats: dict | None,
    telemetry=None,
) -> int:
    """Sharded-driver path of :func:`run` (whole-query granularity)."""
    from .parallel import parallel_efficacy_records

    pending = [
        wq
        for wq in generate_workload(queries, seed=seed)
        if any(
            (wq.index, tuple(c.name for c in subset), technique) not in done
            for subset in column_subsets()
            for technique in techniques
        )
    ]
    if not pending:
        if stats is not None:
            stats.update({"workers": workers, "steals": 0, "requeues": 0})
        return 0
    result = parallel_efficacy_records(
        techniques=techniques,
        workers=workers,
        sanitize=sanitize,
        deadline_ms=deadline_ms,
        queries=pending,
        telemetry=telemetry,
    )
    if stats is not None:
        stats.update(result.pool)
        stats["counters"] = result.counters
        stats["metrics"] = result.metrics
        if result.sanitizer is not None:
            stats["sanitizer"] = result.sanitizer
    new_cells = 0
    with out_path.open("a") as handle:
        for record in result.records:
            payload = _record_to_json(record)
            if _cell_key(payload) in done:
                continue
            handle.write(json.dumps(payload) + "\n")
            new_cells += 1
    print(
        f"parallel x{workers}: {new_cells} new cells, "
        f"steals={result.pool.get('steals', 0)} "
        f"requeues={result.pool.get('requeues', 0)} "
        f"utilization={result.pool.get('utilization', 0.0)}",
        file=sys.stderr,
    )
    return new_cells


def summarize(path: Path) -> str:
    """Render Table 2/3 from whatever checkpoint cells exist."""
    records = []
    with path.open() as handle:
        for line in handle:
            if line.strip():
                records.append(_record_from_json(json.loads(line)))
    headers2 = ["cols", "possible"]
    for technique in TECHNIQUES:
        headers2 += [f"{technique} valid", f"{technique} optimal"]
    headers3 = ["cols"]
    for technique in ("SIA", "SIA_v1", "SIA_v2"):
        headers3 += [f"{technique} gen", f"{technique} learn", f"{technique} val"]
    partials = sum(1 for r in records if r.partial)
    out = (
        format_table(headers2, table2_rows(records), title=f"Table 2 ({len(records)} cells)")
        + "\n\n"
        + format_table(headers3, table3_rows(records), title="Table 3 (ms)")
    )
    if partials:
        out += (
            f"\n\n{partials} partial cell(s) (deadline expired); "
            "their timings are excluded from Table 3."
        )
    return out


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (see module docstring for usage)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", type=Path, default=Path("results/fullscale.jsonl"))
    parser.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="worker processes for the sharded driver (1 = in-process)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None, metavar="B",
        help="per-cell synthesis budget; expired cells checkpoint partials",
    )
    parser.add_argument(
        "--telemetry", type=Path, default=None, metavar="DIR",
        help="write heartbeats.jsonl and ledger.jsonl under DIR",
    )
    parser.add_argument(
        "--summarize", type=Path, default=None, metavar="JSONL",
        help="print Table 2/3 from an existing checkpoint file and exit",
    )
    args = parser.parse_args(argv)
    if args.summarize is not None:
        print(summarize(args.summarize))
        return 0
    telemetry = None
    if args.telemetry is not None:
        from .parallel import TelemetryConfig

        telemetry = TelemetryConfig(directory=args.telemetry)
    new_cells = run(
        args.queries, args.seed, args.out,
        workers=args.parallel, deadline_ms=args.deadline_ms,
        telemetry=telemetry,
    )
    print(f"computed {new_cells} new cells -> {args.out}", file=sys.stderr)
    print(summarize(args.out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
