"""Longest-expected-first scheduling for the sharded workload driver.

The efficacy workload's wall-clock lives in its tail: BENCH history
shows p95 around 8x the median even with the float tier on, so a
static one-query-per-slot fan-out leaves most workers idle while one
grinds.  The sharded driver (:mod:`repro.bench.parallel`) instead
ranks queries by *expected* synthesis cost before dispatching and
assigns them longest-first to the least-loaded shard (the classic LPT
heuristic), so the grinders start early and the cheap queries fill the
gaps -- with work stealing mopping up whatever the estimate got wrong.

The cost estimate is seeded from :mod:`repro.engine.statistics`
cardinalities, as a real optimizer would seed admission control: a
synthetic uniform histogram over the workload's date domain (the
workload generator draws its literals uniformly from that range, so
the sketch is faithful by construction and needs no dbgen run) prices
each query's predicate selectivity, and the term/column counts price
the CEGIS search dimensionality.  The estimate only has to *rank*
sensibly -- scheduling is a heuristic, correctness never depends on it
(the merge is by query index regardless of placement).
"""

from __future__ import annotations

import datetime as dt

import numpy as np

from ..engine.statistics import ColumnStats, TableStats, estimate_selectivity
from ..predicates import Comparison, PAnd, PNot, POr, Pred
from ..predicates.dates import date_to_days
from ..tpch import LINEITEM_DATES, WorkloadQuery

__all__ = ["assign_shards", "expected_costs", "synthetic_lineitem_stats"]

#: The workload generator's literal domain (tpch.workload draws dates
#: uniformly from this range); the synthetic histogram mirrors it.
_DATE_LO = dt.date(1992, 6, 1)
_DATE_HI = dt.date(1998, 1, 1)

#: Rows in the synthetic sketch.  Only ratios matter for selectivity;
#: the count just has to dwarf the histogram bucket count.
_SKETCH_ROWS = 4096

_STATS_CACHE: TableStats | None = None


def synthetic_lineitem_stats() -> TableStats:
    """Uniform date-column sketch of lineitem, built without dbgen.

    Each of the three workload date columns gets an equi-width
    histogram over the generator's literal domain.  Cached: the sketch
    is deterministic and every caller wants the same one.
    """
    global _STATS_CACHE
    if _STATS_CACHE is not None:
        return _STATS_CACHE
    lo = date_to_days(_DATE_LO)
    hi = date_to_days(_DATE_HI)
    values = np.linspace(lo, hi, _SKETCH_ROWS).astype(np.int64)
    stats = TableStats("lineitem", _SKETCH_ROWS)
    for column in LINEITEM_DATES:
        stats.columns[column.name] = ColumnStats.from_array(values, None)
    _STATS_CACHE = stats
    return stats


def _count_terms(pred: Pred) -> int:
    """Comparison leaves of a predicate tree."""
    if isinstance(pred, Comparison):
        return 1
    if isinstance(pred, (PAnd, POr)):
        return sum(_count_terms(arg) for arg in pred.args)
    if isinstance(pred, PNot):
        return _count_terms(pred.arg)
    return 0


def expected_costs(queries: list[WorkloadQuery]) -> list[float]:
    """Relative expected synthesis cost per query (same order).

    Two deterministic signals, both monotone in observed CEGIS effort:

    * **dimensionality** -- more terms and more touched columns mean
      more atoms per check and more column subsets with a non-trivial
      unsat region;
    * **selectivity** -- the tighter the predicate keeps the estimated
      surviving fraction, the larger its unsat region and the more
      counter-example rounds the loop historically burns.
    """
    stats = synthetic_lineitem_stats()
    costs = []
    for wq in queries:
        terms = _count_terms(wq.predicate)
        cols = len(wq.predicate.columns())
        selectivity = estimate_selectivity(wq.predicate, stats)
        costs.append(float(terms + 2 * cols) * (2.0 - selectivity))
    return costs


def assign_shards(costs: list[float], workers: int) -> list[list[int]]:
    """LPT assignment: positions into ``costs``, one list per worker.

    Queries are taken in descending expected cost (ties broken by
    position, so the assignment is deterministic) and each goes to the
    currently least-loaded shard.  Within a shard the resulting order
    is descending cost -- workers run their grinders first -- and the
    driver steals from the *tail* of the largest remaining shard, i.e.
    the cheapest work the busiest worker has not started.
    """
    workers = max(workers, 1)
    shards: list[list[int]] = [[] for _ in range(workers)]
    loads = [0.0] * workers
    order = sorted(range(len(costs)), key=lambda pos: (-costs[pos], pos))
    for pos in order:
        target = min(range(workers), key=lambda w: (loads[w], w))
        shards[target].append(pos)
        loads[target] += costs[pos]
    return shards
