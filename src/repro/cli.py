"""Command-line interface: rewrite SQL queries with learned predicates.

Usage::

    python -m repro rewrite "SELECT * FROM lineitem, orders WHERE ..." \
        --table lineitem [--iterations 41] [--strategy per_column] [--explain]
    python -m repro demo
    python -m repro bench --parallel 4 [--queries 8] [--seed 42]
    python -m repro bench --fullscale --parallel 4 [--deadline-ms 5000]
    python -m repro bench --parallel 2 --telemetry telemetry/
    python -m repro bench --compare old_BENCH.json
    python -m repro top telemetry/heartbeats.jsonl --once
    python -m repro report telemetry/ledger.jsonl
    python -m repro serve-metrics --port 9109

The TPC-H schema is built in; any query over its tables parses
directly.  ``rewrite`` prints the rewritten SQL (or the reason nothing
could be synthesized); ``--explain`` additionally shows both plans.
``demo`` runs the paper's motivating example end to end.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace

from .core import SIA_DEFAULT
from .engine import build_plan
from .errors import ReproError
from .rewrite import rewrite_query
from .rewrite.rewriter import COMBINED, FULL_SET, PER_COLUMN
from .sql import parse_query, render_pred
from .tpch import TPCH_SCHEMA


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sia (SIGMOD'21) reproduction: query rewriting with "
        "learned predicates",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rewrite = sub.add_parser("rewrite", help="rewrite a SQL query")
    rewrite.add_argument("sql", help="a SELECT over the TPC-H schema")
    rewrite.add_argument(
        "--table",
        default="lineitem",
        help="table whose columns the synthesized predicate may use",
    )
    rewrite.add_argument(
        "--iterations",
        type=int,
        default=SIA_DEFAULT.max_iterations,
        help="learning-loop budget (paper default: 41)",
    )
    rewrite.add_argument(
        "--strategy",
        choices=[PER_COLUMN, FULL_SET, COMBINED],
        default=PER_COLUMN,
        help="column subsets to synthesize over",
    )
    rewrite.add_argument(
        "--seed", type=int, default=SIA_DEFAULT.seed, help="sampling seed"
    )
    rewrite.add_argument(
        "--explain", action="store_true", help="print both logical plans"
    )

    run = sub.add_parser(
        "run", help="execute a query on a generated TPC-H database"
    )
    run.add_argument("sql", help="a SELECT over the TPC-H schema")
    run.add_argument(
        "--scale-factor", type=float, default=0.005, help="dbgen scale factor"
    )
    run.add_argument("--seed", type=int, default=0, help="dbgen seed")
    run.add_argument(
        "--rewrite",
        metavar="TABLE",
        default=None,
        help="rewrite with a synthesized predicate over TABLE first",
    )
    run.add_argument(
        "--no-pushdown", action="store_true", help="disable predicate pushdown"
    )

    sub.add_parser("demo", help="run the paper's motivating example")

    bench = sub.add_parser(
        "bench",
        help="run the efficacy workload and record solver perf "
        "(writes BENCH_smt_micro.json)",
    )
    bench.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (0 = one per core, 1 = in-process)",
    )
    bench.add_argument(
        "--queries",
        type=int,
        default=None,
        help="workload size (default: REPRO_BENCH_QUERIES or 8; "
        "200 under --fullscale)",
    )
    bench.add_argument(
        "--fullscale",
        action="store_true",
        help="route through the resumable checkpoint runner "
        "(bench/fullscale): cells append to --out across restarts and "
        "the perf entry is written as 'parallel/fullscale'",
    )
    bench.add_argument(
        "--deadline-ms",
        dest="deadline_ms",
        type=float,
        default=None,
        metavar="B",
        help="per-cell synthesis budget; an expired cell records a "
        "partial result (best valid predicate so far), never an error",
    )
    bench.add_argument(
        "--out",
        dest="fullscale_out",
        default=None,
        metavar="JSONL",
        help="checkpoint file for --fullscale "
        "(default: results/fullscale.jsonl)",
    )
    bench.add_argument(
        "--seed",
        type=int,
        default=None,
        help="workload seed (default: REPRO_BENCH_SEED or 42)",
    )
    bench.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="perf-JSON path (default: BENCH_smt_micro.json; '-' skips)",
    )
    bench.add_argument(
        "--sanitize",
        action="store_true",
        help="install the shared-state sanitizer in the parent and "
        "every worker; prints an access report and fails on "
        "cross-process unsynchronized writes",
    )
    bench.add_argument(
        "--trace",
        dest="trace_path",
        default=None,
        metavar="PATH",
        help="write a JSONL span trace of the run (replay with "
        "'repro trace PATH'); traced spans cover the in-process "
        "portion of the run only",
    )
    bench.add_argument(
        "--telemetry",
        nargs="?",
        const="telemetry",
        default=None,
        metavar="DIR",
        help="write live telemetry under DIR (default 'telemetry'): "
        "heartbeats.jsonl for 'repro top' and ledger.jsonl for "
        "'repro report'; off when the flag is absent",
    )
    bench.add_argument(
        "--heartbeat-ms",
        dest="heartbeat_ms",
        type=float,
        default=None,
        metavar="MS",
        help="worker heartbeat period for --telemetry (default: 500)",
    )
    bench.add_argument(
        "--compare",
        dest="compare_path",
        default=None,
        metavar="OLD.json",
        help="compare-only mode: diff OLD.json against the current "
        "perf JSON (--json or BENCH_smt_micro.json) and exit nonzero "
        "on regression; no workload runs",
    )
    bench.add_argument(
        "--median-ratio",
        type=float,
        default=None,
        metavar="R",
        help="--compare: fail when new median > old * R (default 1.5)",
    )
    bench.add_argument(
        "--p95-ratio",
        type=float,
        default=None,
        metavar="R",
        help="--compare: fail when new p95 > old * R (default 2.0)",
    )
    bench.add_argument(
        "--min-ms",
        type=float,
        default=None,
        metavar="MS",
        help="--compare: absolute drift floor a regression must also "
        "clear (default 5.0)",
    )
    bench.add_argument(
        "--allow-missing",
        action="store_true",
        help="--compare: entries absent from the new document are not "
        "regressions",
    )

    top = sub.add_parser(
        "top",
        help="live terminal view of a telemetry-enabled bench run "
        "(reads heartbeats.jsonl)",
    )
    top.add_argument(
        "path",
        nargs="?",
        default="telemetry/heartbeats.jsonl",
        help="heartbeat log (default: telemetry/heartbeats.jsonl)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit (CI-friendly)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="S",
        help="refresh period in seconds for live mode (default: 1.0)",
    )

    report = sub.add_parser(
        "report",
        help="per-query profiles from a run ledger (reads ledger.jsonl)",
    )
    report.add_argument(
        "path",
        nargs="?",
        default="telemetry/ledger.jsonl",
        help="run ledger (default: telemetry/ledger.jsonl)",
    )
    report.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the profiles as JSON for CI",
    )

    serve = sub.add_parser(
        "serve-metrics",
        help="stdlib HTTP endpoint exposing live metrics "
        "(/metrics Prometheus text, /metrics.json, /healthz)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9109)

    trace = sub.add_parser(
        "trace",
        help="replay a JSONL span trace into a per-phase time "
        "attribution table and a text flamegraph",
    )
    trace.add_argument("path", help="JSONL trace file (see 'bench --trace')")
    trace.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the attribution as JSON for CI",
    )
    trace.add_argument(
        "--depth",
        type=int,
        default=4,
        help="flamegraph depth limit (default: 4)",
    )

    analyze = sub.add_parser(
        "analyze",
        help="run the invariant checker + soundness linter "
        "(exit 0 clean / 1 findings / 2 internal error)",
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as JSON for CI annotations",
    )
    analyze.add_argument(
        "--fix-hints",
        action="store_true",
        help="append a remediation hint to each finding",
    )
    analyze.add_argument(
        "--flow",
        action="store_true",
        help="also run the interprocedural dataflow passes "
        "(SIA401 float taint, SIA402 determinism, SIA403 lifecycle)",
    )
    analyze.add_argument(
        "--concurrency",
        action="store_true",
        help="also run the shared-state/fork-safety passes "
        "(SIA501 escape, SIA502 fork hazards, SIA503 lock discipline, "
        "SIA504 snapshot/delta protocol)",
    )
    analyze.add_argument(
        "--skip-domain",
        action="store_true",
        help="lint only; skip the rewrite-rule soundness pass",
    )
    analyze.add_argument(
        "--certify",
        action="store_true",
        help="re-run every rewrite-rule solver obligation with proof "
        "logging and audit the proofs (SIA301-SIA303)",
    )
    return parser


def _cmd_rewrite(args: argparse.Namespace) -> int:
    schema = {name: dict(cols) for name, cols in TPCH_SCHEMA.items()}
    query = parse_query(args.sql, schema)
    config = replace(SIA_DEFAULT, max_iterations=args.iterations, seed=args.seed)
    result = rewrite_query(
        query, args.table, config, strategy=args.strategy
    )
    if not result.succeeded:
        print(
            f"-- no predicate synthesized ({result.outcome.status}"
            + (f": {result.outcome.detail}" if result.outcome.detail else "")
            + ")"
        )
        print(result.original_sql)
        return 1
    print(f"-- synthesized ({result.outcome.status}, "
          f"{result.outcome.iterations} iterations): "
          f"{render_pred(result.synthesized_predicate)}")
    print(result.rewritten_sql)
    if args.explain:
        print("\n-- original plan:")
        print(build_plan(result.original).describe())
        print("\n-- rewritten plan:")
        print(build_plan(result.rewritten).describe())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import (
        AnalysisError,
        EXIT_INTERNAL_ERROR,
        render_json,
        render_text,
        run_analysis,
    )

    try:
        report = run_analysis(
            args.paths,
            flow=args.flow,
            concurrency=args.concurrency,
            domain=not args.skip_domain,
            certify=args.certify,
        )
    except AnalysisError as exc:
        print(f"analyze: error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL_ERROR
    except Exception as exc:  # noqa: BLE001 - exit-code contract
        print(f"analyze: internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL_ERROR
    try:
        if args.as_json:
            print(render_json(report))
        else:
            print(render_text(report, fix_hints=args.fix_hints))
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; the findings it
        # did read are valid, so keep the exit-code contract.  Point
        # stdout at devnull so the interpreter's exit-time flush does
        # not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return report.exit_code


def _run_gauges(pool: dict, metrics: dict | None) -> dict[str, float]:
    """Every gauge the run produced: worker deltas + parent registry.

    Setting ``bench.worker_utilization`` here (not just printing it)
    keeps the parent registry the single source the exporters read.
    """
    from .obs.metrics import GLOBAL_METRICS

    gauges: dict[str, float] = dict((metrics or {}).get("gauges", {}))
    if pool:
        GLOBAL_METRICS.gauge("bench.worker_utilization").set(
            pool.get("utilization", 0.0)
        )
    gauges.update(GLOBAL_METRICS.summary()["gauges"])
    return gauges


def _print_pool_stats(pool: dict, metrics: dict | None = None) -> None:
    """Scheduler summary, gauge values, and the telemetry rollup."""
    if not pool:
        return
    utilization = pool.get("utilization", 0.0)
    wait = pool.get("queue_wait_ms", {})
    print(
        f"pool: {pool.get('workers', 1)} worker(s) at "
        f"{utilization:.0%} utilization, "
        f"steals={pool.get('steals', 0)} "
        f"requeues={pool.get('requeues', 0)} "
        f"restarts={pool.get('worker_restarts', 0)}, "
        f"queue wait p50/p95 {wait.get('p50', 0.0):.1f}/"
        f"{wait.get('p95', 0.0):.1f} ms"
    )
    gauges = _run_gauges(pool, metrics)
    if gauges:
        print(
            "gauges: "
            + " ".join(
                f"{name}={value}" for name, value in sorted(gauges.items())
            )
        )
    heartbeats = pool.get("heartbeats")
    if heartbeats:
        print(
            f"telemetry: {heartbeats.get('beacons', 0)} beacon(s) from "
            f"{len(heartbeats.get('workers', {}))} worker(s), "
            f"{heartbeats.get('silence_flags', 0)} silence flag(s)"
        )


def _print_sanitizer(summary: dict | None) -> int:
    """Print the sanitizer rollup; 1 when violations were recorded."""
    if summary is None:
        return 0
    print(
        f"sanitizer: {summary['accesses']} shared-state accesses across "
        f"{summary['processes']} process(es), "
        f"{len(summary['violations'])} violation(s)"
    )
    for violation in summary["violations"]:
        print(f"  violation: {violation['message']}")
    return 1 if summary["violations"] else 0


def _telemetry_config(args: argparse.Namespace):
    """The run's ``TelemetryConfig``, or ``None`` when --telemetry is off."""
    if args.telemetry is None:
        return None
    from pathlib import Path

    from .bench.parallel import TelemetryConfig
    from .obs.heartbeat import DEFAULT_INTERVAL_MS

    return TelemetryConfig(
        directory=Path(args.telemetry),
        heartbeat_ms=args.heartbeat_ms or DEFAULT_INTERVAL_MS,
    )


def _print_telemetry_paths(telemetry) -> None:
    if telemetry is None:
        return
    print(
        f"telemetry: heartbeats -> {telemetry.heartbeat_path}, "
        f"ledger -> {telemetry.ledger_path}"
    )


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    """``repro bench --compare OLD.json``: the perf-regression gate."""
    from .bench.compare import (
        DEFAULT_MEDIAN_RATIO,
        DEFAULT_MIN_MS,
        DEFAULT_P95_RATIO,
        compare_bench,
        load_bench,
        render_compare,
    )
    from .bench.perflog import DEFAULT_PATH

    new_path = (
        args.json_path
        if args.json_path not in (None, "-")
        else DEFAULT_PATH
    )
    try:
        old = load_bench(args.compare_path)
        new = load_bench(new_path)
    except (OSError, ValueError) as exc:
        print(f"bench --compare: error: {exc}", file=sys.stderr)
        return 2
    result = compare_bench(
        old,
        new,
        median_ratio=(
            args.median_ratio
            if args.median_ratio is not None
            else DEFAULT_MEDIAN_RATIO
        ),
        p95_ratio=(
            args.p95_ratio if args.p95_ratio is not None else DEFAULT_P95_RATIO
        ),
        min_ms=args.min_ms if args.min_ms is not None else DEFAULT_MIN_MS,
        allow_missing=args.allow_missing,
    )
    print(f"comparing {args.compare_path} (old) -> {new_path} (new)")
    print(render_compare(result))
    return 0 if result.ok else 1


def _cmd_bench_fullscale(args: argparse.Namespace, workers: int) -> int:
    """``repro bench --fullscale``: checkpointed paper-scale run.

    Every finished (query, subset, technique) cell appends one JSON
    line to the checkpoint, so an interrupted run resumes where it
    stopped; ``--parallel N`` fans pending queries over the sharded
    warm-worker driver.  The perf entry lands as ``parallel/fullscale``
    with the scheduler statistics attached.
    """
    import json
    from pathlib import Path

    from .bench.fullscale import run as fullscale_run
    from .bench.perflog import DEFAULT_PATH, summarize_times, update_bench_json
    from .obs import now

    num_queries = args.queries if args.queries is not None else 200
    seed = args.seed if args.seed is not None else 42
    out = Path(args.fullscale_out or "results/fullscale.jsonl")
    telemetry = _telemetry_config(args)
    stats: dict = {}
    start = now()
    new_cells = fullscale_run(
        num_queries,
        seed,
        out,
        workers=workers,
        deadline_ms=args.deadline_ms,
        sanitize=args.sanitize,
        stats=stats,
        telemetry=telemetry,
    )
    wall_clock_ms = (now() - start) * 1000.0

    times: list[float] = []
    cells = valid = optimal = partial = 0
    with out.open() as handle:
        for line in handle:
            if not line.strip():
                continue
            payload = json.loads(line)
            cells += 1
            valid += bool(payload["valid"])
            optimal += bool(payload["optimal"])
            partial += bool(payload.get("partial", False))
            if not payload.get("partial", False):
                # Partial (deadline-expired) cells have truncated
                # timings; keep them out of the perf trajectory.
                times.append(
                    payload["generation_ms"]
                    + payload["learning_ms"]
                    + payload["validation_ms"]
                )
    print(
        f"fullscale: {new_cells} new cells ({cells} total, {valid} valid, "
        f"{optimal} optimal, {partial} partial) in "
        f"{wall_clock_ms / 1000.0:.1f} s on {workers} worker(s) -> {out}"
    )
    _print_telemetry_paths(telemetry)
    pool = {
        key: stats[key]
        for key in (
            "workers", "steals", "requeues", "worker_restarts",
            "queue_wait_ms", "busy_ms", "utilization", "wall_ms",
            "deadline_ms", "heartbeats",
        )
        if key in stats
    }
    _print_pool_stats(pool, stats.get("metrics"))
    exit_code = _print_sanitizer(stats.get("sanitizer")) if args.sanitize else 0
    if args.json_path != "-" and times:
        entry = summarize_times(times)
        entry.update(
            {
                "workers": workers,
                "records": cells,
                "new_cells": new_cells,
                "valid": valid,
                "optimal": optimal,
                "partial": partial,
                "wall_clock_ms": round(wall_clock_ms, 1),
            }
        )
        if pool:
            entry["pool"] = pool
        if "counters" in stats:
            entry["counters"] = stats["counters"]
        path = update_bench_json(
            {"parallel/fullscale": entry}, args.json_path or DEFAULT_PATH
        )
        print(f"wrote {path}")
    return exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from .bench.parallel import default_workers, parallel_efficacy_records
    from .bench.perflog import (
        DEFAULT_PATH,
        stamp_trace_id,
        summarize_times,
        update_bench_json,
    )
    from .obs import install_file_tracer, now

    if args.compare_path is not None:
        return _cmd_bench_compare(args)
    workers = default_workers() if args.parallel == 0 else args.parallel
    if args.fullscale:
        return _cmd_bench_fullscale(args, workers)
    telemetry = _telemetry_config(args)
    tracing = (
        install_file_tracer(args.trace_path)
        if args.trace_path
        else nullcontext(None)
    )
    with tracing as tracer:
        trace_id = tracer.trace_id if tracer is not None else None
        start = now()
        with (
            tracer.span("bench.workload", workers=workers, counters=True)
            if tracer is not None
            else nullcontext()
        ):
            result = parallel_efficacy_records(
                num_queries=args.queries,
                seed=args.seed,
                workers=workers,
                sanitize=args.sanitize,
                deadline_ms=args.deadline_ms,
                telemetry=telemetry,
            )
        wall_clock_ms = (now() - start) * 1000.0
        if tracer is not None:
            # Gauges ride the trace as events so `repro trace --json`
            # surfaces them alongside the phase attribution.
            for name, value in sorted(
                _run_gauges(result.pool, result.metrics).items()
            ):
                tracer.event("metrics.gauge", gauge=name, value=value)
    records = result.records
    valid = sum(1 for r in records if r.valid)
    optimal = sum(1 for r in records if r.optimal)
    partial = sum(1 for r in records if r.partial)
    print(
        f"{len(records)} cells ({valid} valid, {optimal} optimal, "
        f"{partial} partial) in "
        f"{wall_clock_ms / 1000.0:.1f} s on {result.workers} worker(s)"
    )
    counters = result.counters
    print(
        "solver counters: "
        f"{counters.get('solvers_constructed', 0)} constructed, "
        f"{counters.get('checks', 0)} checks "
        f"({counters.get('session_checks', 0)} served warm by "
        f"{counters.get('sessions_created', 0)} sessions), "
        f"{counters.get('clauses_learned', 0)} clauses learned"
    )
    _print_pool_stats(result.pool, result.metrics)
    _print_telemetry_paths(telemetry)
    exit_code = _print_sanitizer(result.sanitizer) if args.sanitize else 0
    if args.trace_path:
        print(f"trace {trace_id} written to {args.trace_path}")
    if args.json_path != "-" and records:
        entry = summarize_times(
            [
                r.generation_ms + r.learning_ms + r.validation_ms
                for r in records
                if not r.partial
            ]
            or [0.0]
        )
        entry.update(
            {
                "counters": counters,
                "workers": result.workers,
                "records": len(records),
                "valid": valid,
                "optimal": optimal,
                "partial": partial,
                "wall_clock_ms": round(wall_clock_ms, 1),
            }
        )
        if result.metrics:
            entry["metrics"] = result.metrics
        if result.pool:
            entry["pool"] = result.pool
        entries = {"workload/efficacy": entry}
        stamp_trace_id(entries, trace_id)
        path = update_bench_json(entries, args.json_path or DEFAULT_PATH)
        print(f"wrote {path}")
    return exit_code


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.replay import (
        load_trace,
        render_flamegraph,
        render_phase_table,
        replay_to_json,
    )

    try:
        replay = load_trace(args.path)
    except OSError as exc:
        print(f"trace: error: {exc}", file=sys.stderr)
        return 2
    if not replay.spans:
        print(f"trace: no spans in {args.path}", file=sys.stderr)
        return 1
    if args.as_json:
        import json

        print(json.dumps(replay_to_json(replay), indent=2, sort_keys=True))
        return 0
    print(render_phase_table(replay))
    print()
    print(render_flamegraph(replay, depth=args.depth))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.top import run_top

    return run_top(args.path, once=args.once, interval_s=args.interval)


def _cmd_report(args: argparse.Namespace) -> int:
    from .obs.ledger import load_ledger, per_query_profiles, render_report

    try:
        header, entries = load_ledger(args.path)
    except OSError as exc:
        print(f"report: error: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        import json

        print(
            json.dumps(
                {
                    "config": header.get("config", {}),
                    "version": header.get("version"),
                    "profiles": per_query_profiles(entries),
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(render_report(header, entries))
    return 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    from .obs.export import serve

    serve(args.host, args.port)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .engine import execute
    from .tpch import generate_catalog

    catalog = generate_catalog(args.scale_factor, seed=args.seed)
    query = parse_query(args.sql, catalog.schema())
    if args.rewrite:
        result = rewrite_query(query, args.rewrite)
        if result.succeeded:
            print(
                "-- synthesized:",
                render_pred(result.synthesized_predicate),
            )
            query = result.rewritten
        else:
            print(f"-- no predicate synthesized ({result.outcome.status})")
    plan = build_plan(query, pushdown=not args.no_pushdown)
    print("-- plan:")
    print(plan.describe())
    relation, stats = execute(plan, catalog)
    print(f"-- {relation.num_rows} rows in {stats.elapsed_ms:.1f} ms "
          f"({stats.tuples_processed} tuples processed)")
    _print_rows(relation, limit=10)
    return 0


def _print_rows(relation, *, limit: int) -> None:
    columns = list(relation.data)
    print("  " + " | ".join(c.qualified for c in columns))
    for i in range(min(limit, relation.num_rows)):
        cells = [str(relation.column(c)[i]) for c in columns]
        print("  " + " | ".join(cells))
    if relation.num_rows > limit:
        print(f"  ... ({relation.num_rows - limit} more rows)")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "rewrite":
            return _cmd_rewrite(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "top":
            return _cmd_top(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "serve-metrics":
            return _cmd_serve_metrics(args)
        # demo
        from .engine import execute
        from .tpch import generate_catalog

        catalog = generate_catalog(0.01, seed=0)
        sql = (
            "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
            "AND l_shipdate - o_orderdate < 20 "
            "AND o_orderdate < DATE '1993-06-01' "
            "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10"
        )
        print("Q1:", sql)
        query = parse_query(sql, catalog.schema())
        result = rewrite_query(query, "lineitem")
        print("\nQ2:", result.rewritten_sql)
        _, stats_o = execute(build_plan(query), catalog)
        _, stats_r = execute(build_plan(result.rewritten), catalog)
        print(
            f"\njoin input: {stats_o.join_input_tuples} -> "
            f"{stats_r.join_input_tuples} tuples "
            f"({stats_o.join_input_tuples / max(stats_r.join_input_tuples, 1):.1f}x less work)"
        )
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
