"""Interprocedural dataflow analyses for the repro codebase.

Layers:

* :mod:`~repro.analysis.flow.cfg` -- per-function control-flow graphs
  over :mod:`ast`, with exceptional edges and finally-routing.
* :mod:`~repro.analysis.flow.engine` -- generic worklist fixpoint over
  ``dict[str, frozenset]`` lattices.
* :mod:`~repro.analysis.flow.callgraph` -- module index + conservative
  call resolution across the analyzed file set.
* Passes: :mod:`~repro.analysis.flow.taint` (SIA401 float taint into
  exact-zone calls), :mod:`~repro.analysis.flow.determinism` (SIA402
  nondeterminism into persisted outputs), and
  :mod:`~repro.analysis.flow.lifecycle` (SIA403 must-close /
  must-retract on all paths).

Use :func:`~repro.analysis.flow.driver.flow_paths` as the front door;
``repro analyze --flow`` is the CLI surface.
"""

from .callgraph import FunctionInfo, ModuleInfo, Project
from .cfg import CFG, build_cfg
from .determinism import analyze_determinism
from .driver import flow_paths
from .engine import FlowAnalysis, State, join_states, run_fixpoint
from .lifecycle import analyze_lifecycle
from .taint import analyze_taint

__all__ = [
    "CFG",
    "FlowAnalysis",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "State",
    "analyze_determinism",
    "analyze_lifecycle",
    "analyze_taint",
    "build_cfg",
    "flow_paths",
    "join_states",
    "run_fixpoint",
]
