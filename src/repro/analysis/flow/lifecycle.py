"""SIA403: must-close / must-retract along every path.

Warm CEGIS keeps one Z3 process alive across queries; a
:class:`~repro.smt.session.SmtSession` scope that is pushed but not
retracted on some path poisons every later query in the session, and a
leaked tracer file handle loses buffered spans.  The syntactic linter
cannot see "some path": this pass runs the resource facts through the
CFG, exceptional edges included.

*Acquisitions* are ``open(...)`` calls, ``<expr>.push(...)`` calls
(session scopes and activation literals), and
``install_file_tracer(...)``.  Each call site becomes an abstract
resource; the site is *live* from the acquisition until a matching
release reaches it on that path:

* ``x.close()`` / ``x.retract()`` on a name bound to the site,
* leaving a ``with`` block whose context expression produced the site
  (the exit runs on the exceptional path too, mirroring runtime
  ``__exit__`` semantics),
* an *escape* -- the value is returned, yielded, passed to a call, or
  stored into an attribute/subscript/container.  Ownership moved
  somewhere this intraprocedural pass cannot see, so it stops
  tracking rather than guess.

A site still live in the state flowing into the function's exit block
is reported at its acquisition line: some normal or exceptional path
reaches function exit without releasing it.  ``try/finally: retract``
is clean by construction; suppress deliberate leaks (process-lifetime
handles) with ``# sia: allow(SIA403)``.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from .callgraph import FunctionInfo, Project
from .cfg import Test, WithExit, immediate_exprs
from .engine import FlowAnalysis, State, run_fixpoint
from .taint import _target_names

__all__ = ["analyze_lifecycle"]

#: State cell holding the set of may-live (unreleased) site keys.
_LIVE = "<live>"

_RELEASE_METHODS = frozenset({"close", "retract"})

_ACQUIRE_NAME_CALLS = frozenset({"open", "install_file_tracer"})

_KIND_LABEL = {
    "open": "file handle from open()",
    "install_file_tracer": "tracer from install_file_tracer()",
    "push": "SMT scope from .push()",
}


def _site_key(call: ast.Call) -> str:
    return f"{call.lineno}:{call.col_offset}"


def _acquisitions(expr: ast.expr) -> list[ast.Call]:
    """Acquisition calls anywhere inside ``expr``."""
    out: list[ast.Call] = []
    for node in ast.walk(expr):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ACQUIRE_NAME_CALLS:
            out.append(node)
        elif isinstance(func, ast.Attribute) and func.attr == "push":
            out.append(node)
    return out


def _acquisition_kind(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    assert isinstance(func, ast.Name)
    return func.id


class _LifecycleState(FlowAnalysis):
    def __init__(self, func: FunctionInfo) -> None:
        self.func = func
        #: site key -> acquisition call node (for reporting).
        self.sites: dict[str, ast.Call] = {}

    def initial(self) -> State:
        return {_LIVE: frozenset()}

    # -- helpers --------------------------------------------------------
    def _register(self, expr: ast.expr) -> frozenset:
        """Record acquisition sites under ``expr``; returns their keys."""
        keys: list[str] = []
        for call in _acquisitions(expr):
            key = _site_key(call)
            self.sites[key] = call
            keys.append(key)
        return frozenset(keys)

    def _sites_of(self, expr: ast.expr | None, state: State) -> frozenset:
        """Site keys an expression's value may carry."""
        if expr is None:
            return frozenset()
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, ast.IfExp):
            return self._sites_of(expr.body, state) | self._sites_of(
                expr.orelse, state
            )
        if isinstance(expr, ast.Call):
            return self._register(expr)
        out: frozenset = frozenset()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                out |= self._sites_of(child, state)
        return out

    def _release(self, state: State, keys: frozenset) -> None:
        state[_LIVE] = state[_LIVE] - keys

    def _escapes_in(self, expr: ast.expr, state: State) -> frozenset:
        """Sites escaping via call arguments anywhere in ``expr``."""
        escaped: frozenset = frozenset()
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                for arg in [*node.args, *[k.value for k in node.keywords]]:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name):
                            escaped |= state.get(sub.id, frozenset())
        return escaped

    # -- transfer -------------------------------------------------------
    def transfer(self, stmt: object, state: State) -> State:
        out = dict(state)
        out[_LIVE] = state.get(_LIVE, frozenset())

        if isinstance(stmt, Test):
            self._release(out, self._escapes_in(stmt.expr, out))
            return out
        if isinstance(stmt, WithExit):
            released: frozenset = frozenset()
            for item in stmt.node.items:
                released |= self._sites_of(item.context_expr, out)
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        released |= out.get(name, frozenset())
            self._release(out, released)
            return out
        if isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                out[stmt.name] = frozenset()
            return out
        if not isinstance(stmt, ast.stmt):
            return out

        if isinstance(stmt, (ast.Return, ast.Expr)) and self._is_release(stmt):
            receiver = stmt.value.func.value  # type: ignore[union-attr]
            self._release(out, self._sites_of(receiver, out))
            return out

        # Escapes via call arguments happen before anything else.
        for expr in immediate_exprs(stmt):
            self._release(out, self._escapes_in(expr, out))

        if isinstance(stmt, ast.Assign):
            keys = self._sites_of(stmt.value, out)
            out[_LIVE] = out[_LIVE] | keys
            plain = all(
                isinstance(t, ast.Name) for t in stmt.targets
            )
            if plain:
                for target in stmt.targets:
                    for name in _target_names(target):
                        out[name] = keys
            else:
                # Attribute / subscript / destructuring store: the
                # value escapes this function's view.
                self._release(out, keys)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            keys = self._sites_of(stmt.value, out)
            out[_LIVE] = out[_LIVE] | keys
            if isinstance(stmt.target, ast.Name):
                out[stmt.target.id] = keys
            else:
                self._release(out, keys)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                keys = self._sites_of(item.context_expr, out)
                out[_LIVE] = out[_LIVE] | keys
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    out[item.optional_vars.id] = keys
        elif isinstance(stmt, ast.Return):
            self._release(out, self._sites_of(stmt.value, out))
        elif isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
                value = stmt.value.value
                if value is not None:
                    self._release(out, self._sites_of(value, out))
            else:
                # Bare acquisition (``session.push(...)`` discarded):
                # nothing can ever release it -- live immediately.
                out[_LIVE] = out[_LIVE] | self._register(stmt.value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.pop(target.id, None)
        else:
            # Any other statement that contains an acquisition call
            # (e.g. ``for line in open(p):``) acquires without a
            # trackable binding.
            for expr in immediate_exprs(stmt):
                out[_LIVE] = out[_LIVE] | self._register(expr)
        return out

    def exc_state(self, stmt: object, pre: State, post: State) -> State:
        # Precision overrides for exceptional edges:
        #
        # * ``__exit__`` runs even when the with-body raised, so the
        #   WithExit release sticks on the re-raise path.
        # * A release call that itself raises leaves the resource in an
        #   unknown state; reporting it as a leak is pure noise.
        # * A ``with`` head raising means ``__enter__`` never finished:
        #   a generator-based context manager (install_file_tracer)
        #   acquired nothing, so its sites are not live on that path.
        if isinstance(stmt, WithExit):
            return post
        if isinstance(stmt, ast.stmt) and self._is_release(stmt):
            return post
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            out = dict(pre)
            dropped: frozenset = frozenset()
            for item in stmt.items:
                dropped |= self._sites_of(item.context_expr, pre)
            out[_LIVE] = pre.get(_LIVE, frozenset()) - dropped
            return out
        # A value already handed to a callee stays handed over when the
        # call raises -- the callee (or its cleanup) owns it now.
        escaped: frozenset = frozenset()
        for expr in immediate_exprs(stmt):
            escaped |= self._escapes_in(expr, pre)
        if escaped:
            out = dict(pre)
            out[_LIVE] = out.get(_LIVE, frozenset()) - escaped
            return out
        return pre

    @staticmethod
    def _is_release(stmt: ast.stmt) -> bool:
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr in _RELEASE_METHODS
        )


def analyze_lifecycle(project: Project) -> list[Finding]:
    """Run the lifecycle pass over every function in the project."""
    findings: list[Finding] = []
    for func in project.all_functions():
        analysis = _LifecycleState(func)
        in_states = run_fixpoint(func.cfg, analysis)
        exit_state = in_states.get(func.cfg.exit)
        if exit_state is None:
            continue
        for key in sorted(exit_state.get(_LIVE, frozenset())):
            call = analysis.sites[key]
            kind = _acquisition_kind(call)
            label = _KIND_LABEL.get(kind, kind)
            findings.append(
                Finding(
                    file=str(func.module.path),
                    line=call.lineno,
                    col=call.col_offset + 1,
                    rule="SIA403",
                    message=(
                        f"{label} may not be released on all paths "
                        f"out of {func.name}()"
                    ),
                    pass_name="flow",
                )
            )
    return findings
