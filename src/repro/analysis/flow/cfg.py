"""Intraprocedural control-flow graphs over Python ``ast``.

The syntactic linter (:mod:`repro.analysis.lint`) sees one statement at
a time; the flow analyses (SIA401/402/403) need *paths*: a float that
is acquired on one line and sinks three branches later, a scope that is
retracted on the happy path but leaks through an ``except``.  This
module builds the graph those analyses run on.

Design points:

* **One leaf statement per block.**  The analyzed functions are small
  (this is a linter, not a compiler backend), so the simplicity of
  block == statement beats basic-block packing.  Synthetic blocks
  (entry, exit, joins) carry ``stmt=None``; structured events that are
  not statements carry marker objects (:class:`Test` for a branch
  condition, :class:`WithExit` for leaving a ``with`` block).

* **Exceptional edges are explicit.**  Any statement that *can raise*
  (contains a call, a ``raise``, an ``assert``, or a subscript) gets an
  ``EXC``-labelled edge to the innermost exception continuation: the
  ``except`` handler entries and/or the ``finally`` entry of the
  enclosing ``try``, or the function exit.  Analyses propagate the
  *pre*-state along these edges -- the statement's effect may not have
  happened when the exception fired.

* **``finally`` is built once and shared.**  Normal completion, every
  handler, and early ``return`` all route through the same ``finally``
  subgraph, whose end has a normal edge to the code after the ``try``
  and an exceptional edge onward (the re-raise path).  This
  over-approximates the path set (a normal entry appears able to leave
  via the re-raise edge), which is sound for the may-analyses built on
  top: extra paths can only add findings for states that genuinely
  reach the ``finally``.

* **``return``/``break``/``continue`` respect cleanups.**  An early
  exit inside ``try ... finally`` or a ``with`` block routes through
  the ``finally`` entry / the ``with`` exit instead of jumping
  straight out -- the single most important edges for the must-retract
  analysis (SIA403), whose canonical clean patterns are ``scope =
  session.push(...); try: ... finally: scope.retract()`` and ``with
  open(...) as f: return f.read()``.  A cleanup's continuation edge
  toward the exit (or the next outer cleanup) exists only when a
  ``return`` actually routed through it, so normal completions do not
  grow phantom paths that skip later releases.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Block", "CFG", "Test", "WithExit", "build_cfg", "NORM", "EXC"]

NORM = "norm"
EXC = "exc"


class Test:
    """Marker: evaluation of a branch/loop condition expression."""

    __test__ = False  # not a pytest class, despite the name
    __slots__ = ("expr",)

    def __init__(self, expr: ast.expr) -> None:
        self.expr = expr


class WithExit:
    """Marker: leaving a ``with`` block (``__exit__`` runs here)."""

    __slots__ = ("node",)

    def __init__(self, node: ast.With | ast.AsyncWith) -> None:
        self.node = node


#: Statements/markers a CFG block can carry.
BlockStmt = object


@dataclass
class Block:
    """One CFG node: a leaf statement (or marker) plus labelled edges."""

    bid: int
    stmt: BlockStmt | None = None
    succs: list[tuple[int, str]] = field(default_factory=list)


class CFG:
    """A single function's (or module body's) control-flow graph."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry = self.new_block().bid
        self.exit = self.new_block().bid

    def new_block(self, stmt: BlockStmt | None = None) -> Block:
        block = Block(len(self.blocks), stmt)
        self.blocks.append(block)
        return block

    def edge(self, src: int, dst: int, kind: str = NORM) -> None:
        if (dst, kind) not in self.blocks[src].succs:
            self.blocks[src].succs.append((dst, kind))

    def statements(self) -> list[tuple[Block, BlockStmt]]:
        """Every non-synthetic block paired with its statement."""
        return [(b, b.stmt) for b in self.blocks if b.stmt is not None]


def immediate_exprs(stmt: BlockStmt | None) -> list[ast.expr]:
    """Expressions evaluated *at* a block, not in nested suites.

    Compound statements land in CFG blocks as their own heads (``for``
    evaluates its iterable there, ``with`` its context managers), but
    their suite statements have their own blocks -- walking the whole
    node would double-count the body.  Nested ``def``/``class`` bodies
    are likewise excluded (they get their own CFGs); only decorators
    and default expressions are evaluated at the definition site.
    """
    if isinstance(stmt, Test):
        return [stmt.expr]
    if isinstance(stmt, WithExit) or stmt is None:
        return []
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = stmt.args
        return [
            *stmt.decorator_list,
            *[d for d in args.defaults],
            *[d for d in args.kw_defaults if d is not None],
        ]
    if isinstance(stmt, ast.ClassDef):
        return [*stmt.decorator_list, *stmt.bases, *[k.value for k in stmt.keywords]]
    if isinstance(stmt, ast.AnnAssign):
        # The annotation is not evaluated in function bodies (and
        # ``x: list[Point] = []`` must not look like it can raise).
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.stmt):
        # Simple statements carry no nested suites; every child
        # expression is evaluated here.
        return [child for child in ast.iter_child_nodes(stmt)
                if isinstance(child, ast.expr)]
    return []


def _can_raise(node: BlockStmt) -> bool:
    """Whether executing ``node`` may transfer control exceptionally.

    Checks only the expressions evaluated *at* the block
    (:func:`immediate_exprs`) -- a ``for`` head whose body contains
    calls does not itself raise.
    """
    if isinstance(node, WithExit):
        return True  # __exit__ is a call
    if isinstance(node, (ast.Raise, ast.Assert)):
        return True
    for expr in immediate_exprs(node):
        for sub in ast.walk(expr):
            if isinstance(sub, (ast.Call, ast.Subscript)):
                return True
    return False


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.current: int | None = self.cfg.entry
        # Innermost-last stack of exception continuations: each entry is
        # the list of block ids an in-flight exception may reach next.
        self.exc_targets: list[list[int]] = [[self.cfg.exit]]
        # (break target, continue target) per enclosing loop.
        self.loops: list[tuple[int, int]] = []
        # Entries of cleanup suites (`finally` bodies and `with` exits)
        # currently open around the point being built; early exits
        # route through the innermost one.
        self.finallies: list[int] = []
        # Cleanup entries an early `return` actually routed through;
        # only these get a continuation edge toward the function exit
        # (an unconditional edge would fabricate paths that skip the
        # releases between the cleanup and the real exit).
        self.return_routed: set[int] = set()

    # -- plumbing ------------------------------------------------------
    def _exc_edges(self, bid: int, stmt: BlockStmt) -> None:
        if _can_raise(stmt):
            for target in self.exc_targets[-1]:
                self.cfg.edge(bid, target, EXC)

    def _leaf(self, stmt: BlockStmt) -> int:
        block = self.cfg.new_block(stmt)
        if self.current is not None:
            self.cfg.edge(self.current, block.bid)
        self._exc_edges(block.bid, stmt)
        self.current = block.bid
        return block.bid

    def _early_exit_target(self, default: int) -> int:
        """Where return/break/continue actually goes (finally first)."""
        if self.finallies:
            return self.finallies[-1]
        return default

    def build(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if self.current is None:
                break  # statically unreachable tail
            self._stmt(stmt)

    # -- statement dispatch --------------------------------------------
    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._for(stmt)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
        elif isinstance(stmt, ast.Return):
            bid = self._leaf(stmt)
            if self.finallies:
                self.cfg.edge(bid, self.finallies[-1])
                self.return_routed.update(self.finallies)
            else:
                self.cfg.edge(bid, self.cfg.exit)
            self.current = None
        elif isinstance(stmt, ast.Raise):
            self._leaf(stmt)
            self.current = None
        elif isinstance(stmt, ast.Break):
            if self.loops:
                bid = self._leaf(stmt)
                self.cfg.edge(bid, self._early_exit_target(self.loops[-1][0]))
            self.current = None
        elif isinstance(stmt, ast.Continue):
            if self.loops:
                bid = self._leaf(stmt)
                self.cfg.edge(bid, self._early_exit_target(self.loops[-1][1]))
            self.current = None
        elif isinstance(stmt, ast.Match):
            self._match(stmt)
        else:
            # Leaf: simple statements, plus nested def/class (their
            # bodies get their own CFGs; here they just bind a name).
            self._leaf(stmt)

    def _if(self, node: ast.If) -> None:
        test = self._leaf(Test(node.test))
        join = self.cfg.new_block()
        self.current = test
        self.build(node.body)
        if self.current is not None:
            self.cfg.edge(self.current, join.bid)
        self.current = test
        self.build(node.orelse)
        if self.current is not None:
            self.cfg.edge(self.current, join.bid)
        self.current = join.bid if any(
            (join.bid, NORM) in b.succs for b in self.cfg.blocks
        ) else None

    def _while(self, node: ast.While) -> None:
        head = self._leaf(Test(node.test))
        after = self.cfg.new_block()
        self.loops.append((after.bid, head))
        self.current = head
        self.build(node.body)
        if self.current is not None:
            self.cfg.edge(self.current, head)
        self.loops.pop()
        # Loop condition false: fall through the else suite to after.
        self.current = head
        self.build(node.orelse)
        if self.current is not None:
            self.cfg.edge(self.current, after.bid)
        self.current = after.bid

    def _for(self, node: ast.For | ast.AsyncFor) -> None:
        head = self._leaf(node)  # evaluates iter, binds target per round
        after = self.cfg.new_block()
        self.loops.append((after.bid, head))
        self.current = head
        self.build(node.body)
        if self.current is not None:
            self.cfg.edge(self.current, head)
        self.loops.pop()
        self.current = head
        self.build(node.orelse)
        if self.current is not None:
            self.cfg.edge(self.current, after.bid)
        self.current = after.bid

    def _match(self, node: ast.Match) -> None:
        subject = self._leaf(Test(node.subject))
        join = self.cfg.new_block()
        for case in node.cases:
            self.current = subject
            self.build(case.body)
            if self.current is not None:
                self.cfg.edge(self.current, join.bid)
        # No case may match at all.
        self.cfg.edge(subject, join.bid)
        self.current = join.bid

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        entry = self._leaf(node)  # evaluates contexts, binds `as` names
        wexit = self.cfg.new_block(WithExit(node))
        # Exceptions inside the body reach __exit__ first, then (if
        # re-raised) the enclosing continuation; ``return`` inside the
        # body likewise runs __exit__ before leaving, so the with exit
        # joins the cleanup stack.
        self.exc_targets.append([wexit.bid])
        self.finallies.append(wexit.bid)
        self.current = entry
        self.build(node.body)
        self.finallies.pop()
        self.exc_targets.pop()
        if self.current is not None:
            self.cfg.edge(self.current, wexit.bid)
        for target in self.exc_targets[-1]:
            self.cfg.edge(wexit.bid, target, EXC)
        if wexit.bid in self.return_routed:
            outer = self.finallies[-1] if self.finallies else self.cfg.exit
            self.cfg.edge(wexit.bid, outer)
        self.current = wexit.bid

    def _try(self, node: ast.Try) -> None:
        after = self.cfg.new_block()
        finally_entry = (
            self.cfg.new_block().bid if node.finalbody else None
        )
        handler_entries = [
            self.cfg.new_block(handler).bid for handler in node.handlers
        ]

        # Body: exceptions may match any handler, or (unmatched / raised
        # during matching) fall through to finally / the outer context.
        body_exc = list(handler_entries)
        if finally_entry is not None:
            body_exc.append(finally_entry)
        elif not handler_entries:
            body_exc.extend(self.exc_targets[-1])
        self.exc_targets.append(body_exc)
        if finally_entry is not None:
            self.finallies.append(finally_entry)
        body_entry = self.current
        self.build(node.body)
        body_end = self.current
        # The else suite runs iff the body completed; its exceptions are
        # *not* caught by this try's handlers.
        self.exc_targets.pop()
        self.exc_targets.append(
            [finally_entry] if finally_entry is not None
            else list(self.exc_targets[-1])
        )
        self.current = body_end
        if body_end is not None:
            self.build(node.orelse)
        normal_end = self.current
        self.exc_targets.pop()

        # Handlers: their own exceptions go to finally / outward.
        handler_exc = (
            [finally_entry] if finally_entry is not None
            else list(self.exc_targets[-1])
        )
        handler_ends: list[int] = []
        for entry in handler_entries:
            self.exc_targets.append(handler_exc)
            self.current = entry
            handler_node = self.cfg.blocks[entry].stmt
            assert isinstance(handler_node, ast.ExceptHandler)
            self.build(handler_node.body)
            self.exc_targets.pop()
            if self.current is not None:
                handler_ends.append(self.current)

        if finally_entry is not None:
            self.finallies.pop()
            # All completions converge on the shared finally suite.
            for end in [normal_end, *handler_ends]:
                if end is not None:
                    self.cfg.edge(end, finally_entry)
            self.exc_targets.append(list(self.exc_targets[-1]))
            self.current = finally_entry
            self.build(node.finalbody)
            self.exc_targets.pop()
            if self.current is not None:
                # Normal continuation, plus the re-raise path onward.
                # A `return` that routed through this finally continues
                # to the next outer cleanup (or the function exit).
                self.cfg.edge(self.current, after.bid)
                for target in self.exc_targets[-1]:
                    self.cfg.edge(self.current, target, EXC)
                if finally_entry in self.return_routed:
                    outer = (
                        self.finallies[-1]
                        if self.finallies
                        else self.cfg.exit
                    )
                    self.cfg.edge(self.current, outer)
        else:
            for end in [normal_end, *handler_ends]:
                if end is not None:
                    self.cfg.edge(end, after.bid)
        self.current = after.bid


def build_cfg(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
) -> CFG:
    """Build the CFG of one function body (or a module's top level)."""
    builder = _Builder()
    builder.build(list(node.body))
    if builder.current is not None:
        builder.cfg.edge(builder.current, builder.cfg.exit)
    return builder.cfg
