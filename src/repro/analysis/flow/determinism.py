"""SIA402: nondeterminism flowing into persisted outputs or merge order.

The sharded-synthesis roadmap item rests on an invariant the test
suite can only sample: bench results, perflog rows and merged worker
deltas must be byte-identical across runs and worker counts.  This
pass flags the three ways that invariant quietly breaks:

* **Unseeded global RNG** -- module-level ``random.random()`` /
  ``randint`` / ``choice`` / ... calls (a ``random.Random(seed)``
  instance is fine, and so is the module API *after* a dominating
  ``random.seed(...)`` on every path -- the seeded flag is a
  must-fact, killed at joins where one branch did not seed).
* **Set iteration order** -- iterating a ``set``/``frozenset`` value
  (``for x in s``, ``list(s)``, ``s.pop()``) produces
  hash-randomized order; ``sorted(...)``, ``min``/``max`` restore
  determinism and strip the tag.
* **``id()``-based keys** -- ``id(...)`` values are per-process; using
  them in persisted data or as a sort/merge key makes output depend
  on allocator behaviour.

Sinks: ``json.dump(s)``/``pickle.dump`` payloads, ``.write()``/
``.writelines()`` arguments, resolved calls into the perflog /
fullscale checkpoint writers, and ``sorted(..., key=...)`` /
``.sort(key=...)`` keys (merge order).  Findings are reported at the
sink with the offending source kind; suppress a deliberate exception
with ``# sia: allow(SIA402)``.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from .callgraph import FunctionInfo, Project
from .cfg import Test, WithExit, immediate_exprs
from .engine import FlowAnalysis, State, run_fixpoint
from .taint import _target_names

__all__ = ["analyze_determinism"]

RNG = "unseeded-rng"
SET_ORDER = "set-order"
ID_KEY = "id-key"
IS_SET = "is-set"

#: The must-fact "the global RNG has been seeded on every path here".
_SEEDED = "<rng-seeded>"

_REPORTABLE = (RNG, SET_ORDER, ID_KEY)

_RNG_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "triangular", "gauss", "normalvariate",
        "betavariate", "expovariate", "getrandbits", "randbytes",
    }
)

_ORDER_SANITIZERS = frozenset({"sorted", "min", "max", "sum", "len"})

#: Module keys whose functions persist rows (checkpoint / perflog
#: writers in this repo).
_PERSIST_MODULE_SUFFIXES = ("bench.perflog", "bench.fullscale")

_SOURCE_LABEL = {
    RNG: "unseeded global random",
    SET_ORDER: "set iteration order",
    ID_KEY: "id()-based key",
}


class _DetState(FlowAnalysis):
    must_keys = frozenset({_SEEDED})

    def __init__(self, project: Project, func: FunctionInfo) -> None:
        self.project = project
        self.func = func

    # -- source classification -----------------------------------------
    def _is_random_module(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Name):
            return False
        bound = self.project.external_module_of(node, self.func.module)
        return (bound or "").split(".")[0] == "random"

    def _random_symbol(self, name: str) -> bool:
        """Whether ``name`` is ``from random import <rng func>``."""
        bound = self.func.module.symbol_imports.get(name)
        return (
            bound is not None
            and bound[0].split(".")[0] == "random"
            and bound[1] in _RNG_FUNCS
        )

    # -- expression evaluation -----------------------------------------
    def eval(self, expr: ast.expr | None, state: State) -> frozenset:
        if expr is None:
            return frozenset()
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        if isinstance(expr, (ast.Set,)):
            return frozenset({IS_SET})
        if isinstance(expr, ast.SetComp):
            return frozenset({IS_SET})
        if isinstance(expr, ast.BinOp):
            return self.eval(expr.left, state) | self.eval(expr.right, state)
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand, state)
        if isinstance(expr, ast.BoolOp):
            out: frozenset = frozenset()
            for value in expr.values:
                out |= self.eval(value, state)
            return out
        if isinstance(expr, ast.IfExp):
            return self.eval(expr.body, state) | self.eval(expr.orelse, state)
        if isinstance(expr, (ast.Tuple, ast.List)):
            out = frozenset()
            for elt in expr.elts:
                out |= self.eval(elt, state)
            return out - frozenset({IS_SET})
        if isinstance(expr, ast.Dict):
            out = frozenset()
            for key in expr.keys:
                out |= self.eval(key, state)
            for value in expr.values:
                out |= self.eval(value, state)
            return out - frozenset({IS_SET})
        if isinstance(expr, ast.Subscript):
            return self.eval(expr.value, state) - frozenset({IS_SET})
        if isinstance(expr, ast.Attribute):
            return self.eval(expr.value, state)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, state)
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comp(expr.elt, expr.generators, state)
        if isinstance(expr, ast.DictComp):
            return self._eval_comp(
                expr.key, expr.generators, state
            ) | self._eval_comp(expr.value, expr.generators, state)
        if isinstance(expr, ast.Compare):
            return frozenset()
        return frozenset()

    def _eval_comp(
        self,
        elt: ast.expr,
        generators: list[ast.comprehension],
        state: State,
    ) -> frozenset:
        inner = dict(state)
        extra: frozenset = frozenset()
        for gen in generators:
            iter_tags = self.eval(gen.iter, inner)
            elem_tags = iter_tags - frozenset({IS_SET})
            if IS_SET in iter_tags:
                elem_tags |= frozenset({SET_ORDER})
                extra |= frozenset({SET_ORDER})
            for name in _target_names(gen.target):
                inner[name] = elem_tags
        return (self.eval(elt, inner) | extra) - frozenset({IS_SET})

    def _eval_call(self, call: ast.Call, state: State) -> frozenset:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "id":
                return frozenset({ID_KEY})
            if func.id in ("set", "frozenset"):
                inner: frozenset = frozenset()
                for arg in call.args:
                    inner = inner | self.eval(arg, state)
                return (inner - frozenset({IS_SET})) | frozenset({IS_SET})
            if func.id in _ORDER_SANITIZERS:
                out: frozenset = frozenset()
                for arg in call.args:
                    out |= self.eval(arg, state)
                # Deterministic reductions: order and set-ness washed out.
                out -= frozenset({SET_ORDER, IS_SET})
                for keyword in call.keywords:
                    if keyword.arg == "key":
                        if _contains_id_call(keyword.value):
                            out |= frozenset({ID_KEY})
                        out |= self.eval(keyword.value, state)
                return out
            if func.id in ("list", "tuple", "iter", "enumerate", "reversed"):
                out = frozenset()
                for arg in call.args:
                    tags = self.eval(arg, state)
                    if IS_SET in tags:
                        out |= frozenset({SET_ORDER})
                    out |= tags - frozenset({IS_SET})
                return out
            if self._random_symbol(func.id) and _SEEDED not in state:
                return frozenset({RNG})
        if isinstance(func, ast.Attribute):
            if self._is_random_module(func.value):
                if func.attr in _RNG_FUNCS and _SEEDED not in state:
                    return frozenset({RNG})
                return frozenset()
            receiver_tags = self.eval(func.value, state)
            if func.attr == "pop" and IS_SET in receiver_tags:
                return (receiver_tags - frozenset({IS_SET})) | frozenset(
                    {SET_ORDER}
                )
            if func.attr in ("union", "intersection", "difference",
                             "symmetric_difference", "copy"):
                return receiver_tags
            # Method result inherits the receiver's order/rng taint but
            # not its set-ness (type unknown).
            return receiver_tags - frozenset({IS_SET})
        resolved = self.project.resolve_call(func, self.func.module)
        if resolved is not None:
            return frozenset()
        return frozenset()

    # -- statements ----------------------------------------------------
    def transfer(self, stmt: object, state: State) -> State:
        out = dict(state)
        if isinstance(stmt, Test):
            return out
        if isinstance(stmt, WithExit):
            return out
        if isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                out[stmt.name] = frozenset()
            return out
        if not isinstance(stmt, ast.stmt):
            return out
        if self._seeds_rng(stmt):
            out[_SEEDED] = frozenset({"yes"})
            return out
        if isinstance(stmt, ast.Assign):
            tags = self.eval(stmt.value, out)
            for target in stmt.targets:
                for name in _target_names(target):
                    out[name] = tags
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            tags = self.eval(stmt.value, out)
            for name in _target_names(stmt.target):
                out[name] = tags
        elif isinstance(stmt, ast.AugAssign):
            tags = self.eval(stmt.value, out)
            for name in _target_names(stmt.target):
                out[name] = out.get(name, frozenset()) | tags
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_tags = self.eval(stmt.iter, out)
            elem_tags = iter_tags - frozenset({IS_SET})
            if IS_SET in iter_tags:
                elem_tags |= frozenset({SET_ORDER})
            for name in _target_names(stmt.target):
                out[name] = elem_tags
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    tags = self.eval(item.context_expr, out)
                    for name in _target_names(item.optional_vars):
                        out[name] = tags
        return out

    def _seeds_rng(self, stmt: ast.stmt) -> bool:
        """Whether the statement is a ``random.seed(...)`` call."""
        if not isinstance(stmt, ast.Expr) or not isinstance(
            stmt.value, ast.Call
        ):
            return False
        func = stmt.value.func
        if isinstance(func, ast.Attribute) and func.attr == "seed":
            return self._is_random_module(func.value)
        if isinstance(func, ast.Name):
            bound = self.func.module.symbol_imports.get(func.id)
            return bound is not None and (
                bound[0].split(".")[0], bound[1]
            ) == ("random", "seed")
        return False


def _contains_id_call(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
        ):
            return True
    return False


def analyze_determinism(project: Project) -> list[Finding]:
    """Run the determinism pass over every function in the project."""
    findings: list[Finding] = []
    for func in project.all_functions():
        analysis = _DetState(project, func)
        in_states = run_fixpoint(func.cfg, analysis)
        for block, stmt in func.cfg.statements():
            if block.bid not in in_states:
                continue
            state = in_states[block.bid]
            for expr in immediate_exprs(stmt):
                for call in ast.walk(expr):
                    if isinstance(call, ast.Call):
                        findings.extend(
                            _sink_findings(analysis, call, state, func)
                        )
    return findings


def _sink_findings(
    analysis: _DetState,
    call: ast.Call,
    state: State,
    func: FunctionInfo,
) -> list[Finding]:
    """Findings for one call expression if it is a nondeterminism sink."""
    sinks: list[tuple[ast.expr, str]] = []  # (payload expr, sink label)
    cfunc = call.func
    if isinstance(cfunc, ast.Attribute):
        root = cfunc.value
        if (
            cfunc.attr in ("dump", "dumps")
            and isinstance(root, ast.Name)
            and (analysis.project.external_module_of(root, func.module) or "")
            .split(".")[0] in ("json", "pickle", "marshal")
        ):
            if call.args:
                sinks.append((call.args[0], f"{root.id}.{cfunc.attr}()"))
        elif cfunc.attr in ("write", "writelines"):
            for arg in call.args:
                sinks.append((arg, f".{cfunc.attr}()"))
        elif cfunc.attr == "sort":
            for keyword in call.keywords:
                if keyword.arg == "key":
                    sinks.append((keyword.value, "sort key (merge order)"))
                    if _contains_id_call(keyword.value):
                        return [
                            _finding(func, call, ID_KEY, "sort key (merge order)")
                        ]
    if isinstance(cfunc, ast.Name) and cfunc.id == "sorted":
        for keyword in call.keywords:
            if keyword.arg == "key":
                if _contains_id_call(keyword.value):
                    return [
                        _finding(func, call, ID_KEY, "sort key (merge order)")
                    ]
                sinks.append((keyword.value, "sort key (merge order)"))
    resolved = analysis.project.resolve_call(cfunc, func.module)
    if resolved is not None and resolved.module.dotted.endswith(
        _PERSIST_MODULE_SUFFIXES
    ):
        for arg in [*call.args, *[k.value for k in call.keywords]]:
            sinks.append((arg, f"{resolved.name}() (persisted bench row)"))

    findings: list[Finding] = []
    for payload, label in sinks:
        tags = analysis.eval(payload, state)
        for tag in _REPORTABLE:
            if tag in tags:
                findings.append(_finding(func, call, tag, label))
    return findings


def _finding(
    func: FunctionInfo, call: ast.Call, tag: str, sink: str
) -> Finding:
    return Finding(
        file=str(func.module.path),
        line=call.lineno,
        col=call.col_offset + 1,
        rule="SIA402",
        message=f"{_SOURCE_LABEL[tag]} flows into {sink}",
        pass_name="flow",
    )
