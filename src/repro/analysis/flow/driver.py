"""Entry point tying the three flow passes together.

:func:`flow_paths` mirrors :func:`repro.analysis.lint.lint_paths`: it
walks the given files/directories, loads every Python file into one
:class:`~repro.analysis.flow.callgraph.Project` (so cross-module calls
resolve), runs the taint, determinism and lifecycle passes, and
filters the findings through the same ``# sia: allow(...)`` pragma
mechanism the syntactic linter honors.
"""

from __future__ import annotations

from pathlib import Path

from ..findings import Finding
from ..lint import iter_python_files
from ..pragmas import extract_pragmas, is_suppressed
from .callgraph import Project
from .determinism import analyze_determinism
from .lifecycle import analyze_lifecycle
from .taint import analyze_taint

__all__ = ["flow_paths"]


def flow_paths(
    paths: list[Path], *, honor_pragmas: bool = True
) -> tuple[list[Finding], int]:
    """Run all flow passes; returns ``(findings, files_analyzed)``.

    Files that fail to parse are skipped here -- the syntactic linter
    already reports SIA000 for them, and one broken file should not
    take down the whole interprocedural run.
    """
    files = iter_python_files(paths)
    loadable: list[Path] = []
    project = Project()
    for file_path in files:
        try:
            project.add_source(
                file_path.read_text(encoding="utf-8"), file_path
            )
        except (SyntaxError, OSError):
            continue
        loadable.append(file_path)
    for module in project.modules.values():
        project._bind_imports(module)

    findings = [
        *analyze_taint(project),
        *analyze_determinism(project),
        *analyze_lifecycle(project),
    ]

    if honor_pragmas:
        pragma_cache: dict[str, dict[int, frozenset[str]]] = {}
        for module in project.modules.values():
            pragma_cache[str(module.path)] = extract_pragmas(module.source)
        findings = [
            finding
            for finding in findings
            if not is_suppressed(
                pragma_cache.get(finding.file, {}),
                finding.line,
                finding.rule,
            )
        ]

    findings = sorted(set(findings))
    return findings, len(loadable)
