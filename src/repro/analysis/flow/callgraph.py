"""Module index and call resolution for the flow analyses.

The interprocedural passes need to answer two questions the syntactic
linter cannot: *which function does this call land in* (so a call into
``repro/smt/`` is recognised as an exact-zone sink even when imported
under an alias), and *what does that function do with its arguments*
(summaries, computed in :mod:`repro.analysis.flow.taint`).

Resolution is deliberately conservative and purely static:

* Plain-name calls resolve through local ``def``s and ``from m import
  f [as g]`` bindings; ``m.f(...)`` resolves when ``m`` is a module
  binding from ``import m [as n]`` or ``from p import m``.
* Relative imports resolve against the dotted module key derived from
  the file path; absolute imports resolve by exact key first, then by
  *unique* dotted-suffix match, so fixture trees and the real
  ``src/repro`` tree resolve the same way without sys.path games.
* Method calls on objects (``obj.f(...)``) do **not** resolve -- the
  receiver's type is unknown and a wrong guess would fabricate
  findings.  Unresolved calls contribute no taint and are not sinks.

Both top-level functions and class methods are indexed (each gets a
CFG and a summary); only top-level functions are reachable through
call resolution.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from ..lint import zone_of
from .cfg import CFG, build_cfg

__all__ = ["FunctionInfo", "ModuleInfo", "Project"]


@dataclass
class FunctionInfo:
    """One analyzed function (or method, or module top level)."""

    qualname: str  # dotted module key + local (Class.)name
    name: str
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module
    zone: str
    is_method: bool = False
    _cfg: CFG | None = None

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg

    @property
    def params(self) -> list[str]:
        """Positional-ish parameter names, ``self``/``cls`` included."""
        if isinstance(self.node, ast.Module):
            return []
        args = self.node.args
        return [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname})"


@dataclass
class ModuleInfo:
    """One parsed source file plus its name-binding environment."""

    path: Path
    dotted: str
    tree: ast.Module
    source: str
    zone: str
    # local name -> top-level FunctionInfo
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    # class name -> method name -> FunctionInfo
    methods: dict[str, dict[str, FunctionInfo]] = field(default_factory=dict)
    # local name -> module binding (dotted target)
    module_imports: dict[str, str] = field(default_factory=dict)
    # local name -> (dotted target module, symbol name there)
    symbol_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    toplevel: FunctionInfo | None = None

    def all_functions(self) -> list[FunctionInfo]:
        out = list(self.functions.values())
        for methods in self.methods.values():
            out.extend(methods.values())
        if self.toplevel is not None:
            out.append(self.toplevel)
        return out


def _dotted_key(path: Path) -> str:
    """Stable dotted module key for a file path.

    Uses the path components after the last ``src`` segment when one
    exists (so ``src/repro/smt/solver.py`` -> ``repro.smt.solver``),
    the full relative component list otherwise.  ``__init__.py`` maps
    to its package.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[0] in ("/", "\\"):
        parts = parts[1:]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part not in (".", ""))


class Project:
    """All modules under analysis, indexed for call resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def load(cls, files: list[Path]) -> "Project":
        project = cls()
        for path in files:
            source = path.read_text(encoding="utf-8")
            project.add_source(source, path)
        for module in project.modules.values():
            project._bind_imports(module)
        return project

    def add_source(self, source: str, path: Path) -> ModuleInfo:
        tree = ast.parse(source, filename=str(path))
        module = ModuleInfo(
            path=path,
            dotted=_dotted_key(path),
            tree=tree,
            source=source,
            zone=zone_of(path),
        )
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.functions[node.name] = FunctionInfo(
                    qualname=f"{module.dotted}.{node.name}",
                    name=node.name,
                    module=module,
                    node=node,
                    zone=module.zone,
                )
            elif isinstance(node, ast.ClassDef):
                methods: dict[str, FunctionInfo] = {}
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods[sub.name] = FunctionInfo(
                            qualname=f"{module.dotted}.{node.name}.{sub.name}",
                            name=sub.name,
                            module=module,
                            node=sub,
                            zone=module.zone,
                            is_method=True,
                        )
                module.methods[node.name] = methods
        module.toplevel = FunctionInfo(
            qualname=f"{module.dotted}.<module>",
            name="<module>",
            module=module,
            node=tree,
            zone=module.zone,
        )
        self.modules[module.dotted] = module
        return module

    # -- import binding ------------------------------------------------
    def _resolve_module_key(self, dotted: str) -> str | None:
        """Exact dotted key, else a unique dotted-suffix match."""
        if dotted in self.modules:
            return dotted
        suffix = "." + dotted
        hits = [key for key in self.modules if key.endswith(suffix)]
        return hits[0] if len(hits) == 1 else None

    def _bind_imports(self, module: ModuleInfo) -> None:
        package = module.dotted.rsplit(".", 1)[0] if "." in module.dotted else ""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = self._resolve_module_key(
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    # Record external modules too (random, json, ...):
                    # source/sink matching keys on the *imported* name.
                    module.module_imports[local] = target or alias.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    anchor = package.split(".") if package else []
                    anchor = anchor[: len(anchor) - (node.level - 1)]
                    base = ".".join([*anchor, base] if base else anchor)
                target = self._resolve_module_key(base) if base else None
                for alias in node.names:
                    local = alias.asname or alias.name
                    if alias.name == "*":
                        continue
                    if target is not None:
                        submodule = f"{target}.{alias.name}"
                        if submodule in self.modules:
                            module.module_imports[local] = submodule
                        else:
                            module.symbol_imports[local] = (target, alias.name)
                    else:
                        # External module: keep the raw dotted base so
                        # source/sink matching can still see it.
                        module.symbol_imports[local] = (base, alias.name)

    # -- resolution ----------------------------------------------------
    def resolve_call(
        self, func: ast.expr, module: ModuleInfo
    ) -> FunctionInfo | None:
        """The :class:`FunctionInfo` a call expression lands in, if known."""
        if isinstance(func, ast.Name):
            local = module.functions.get(func.id)
            if local is not None:
                return local
            bound = module.symbol_imports.get(func.id)
            if bound is not None:
                target_module = self.modules.get(bound[0])
                if target_module is not None:
                    return target_module.functions.get(bound[1])
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            target_key = module.module_imports.get(func.value.id)
            if target_key is not None:
                target_module = self.modules.get(target_key)
                if target_module is not None:
                    return target_module.functions.get(func.attr)
        return None

    def external_module_of(
        self, name_node: ast.expr, module: ModuleInfo
    ) -> str | None:
        """Dotted name the root of ``m.attr`` refers to (``random``, ...).

        Returns the *imported module name* bound to a plain :class:`ast.Name`
        -- for modules inside the project this is the dotted key; for
        external modules it is whatever the import said (``random``,
        ``numpy``, ``json.tool``...).  ``None`` when the name is not a
        module binding.
        """
        if isinstance(name_node, ast.Name):
            return module.module_imports.get(name_node.id)
        return None

    def imported_symbol(
        self, name: str, module: ModuleInfo
    ) -> tuple[str, str] | None:
        """The ``(module, symbol)`` a ``from m import s`` name binds to."""
        return module.symbol_imports.get(name)

    def all_functions(self) -> list[FunctionInfo]:
        out: list[FunctionInfo] = []
        for module in self.modules.values():
            out.extend(module.all_functions())
        return out
