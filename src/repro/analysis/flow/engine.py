"""Generic worklist fixpoint engine over user-defined lattices.

The three flow passes (taint, determinism, lifecycle) are all forward
may-analyses; they differ only in their abstract state and transfer
function.  This module factors the iteration out: an analysis supplies
an initial state, a join, and a transfer, and :func:`run_fixpoint`
iterates the CFG to a fixpoint.

States are plain ``dict[str, frozenset[str]]``: a finite map from
abstract cells (variable names, resource-site keys, flags) to finite
tag sets.  The join is pointwise set union, which makes the lattice
finite-height for any fixed program (cells and tags are drawn from the
program text), so termination is by monotonicity.  *Must*-style facts
ride in the same map via :attr:`FlowAnalysis.must_keys`: those keys
join by *intersection* (a fact holds after a join only if it held on
every incoming path).

Transfer functions receive whatever the CFG block carries -- an
``ast.stmt``, an ``ast.ExceptHandler``, or one of the marker objects
from :mod:`repro.analysis.flow.cfg` (``Test``, ``WithExit``) -- and
must treat the input state as immutable, returning a (possibly shared)
output state.  Along exceptional edges the engine propagates
:meth:`FlowAnalysis.exc_state`, which defaults to the *pre*-state: an
exception may fire before the statement's effect happened.
"""

from __future__ import annotations

from collections import deque

from .cfg import CFG, EXC, BlockStmt

__all__ = ["FlowAnalysis", "State", "join_states", "run_fixpoint"]

State = dict[str, frozenset]


def join_states(
    a: State, b: State, *, must_keys: frozenset[str] = frozenset()
) -> State:
    """Pointwise union of two states (intersection on ``must_keys``)."""
    out: State = dict(a)
    for key, tags in b.items():
        if key in out:
            out[key] = out[key] | tags
        elif key not in must_keys:
            out[key] = tags
    for key in must_keys:
        if key in out and key not in b:
            del out[key]
    return out


class FlowAnalysis:
    """Base class for one dataflow pass over one CFG."""

    #: State keys with must-semantics (kept on a join only when present
    #: on both sides), e.g. "the global RNG has been seeded".
    must_keys: frozenset[str] = frozenset()

    def initial(self) -> State:
        """Entry state of the graph."""
        return {}

    def join(self, a: State, b: State) -> State:
        return join_states(a, b, must_keys=self.must_keys)

    def transfer(self, stmt: BlockStmt, state: State) -> State:
        """Effect of one statement; must not mutate ``state``."""
        raise NotImplementedError

    def exc_state(self, stmt: BlockStmt, pre: State, post: State) -> State:
        """State carried along an exceptional edge out of ``stmt``."""
        return pre


def run_fixpoint(cfg: CFG, analysis: FlowAnalysis) -> dict[int, State]:
    """Iterate ``analysis`` over ``cfg``; returns the in-state per block.

    Chaotic iteration with a FIFO worklist.  The result maps every
    *reachable* block id to the join of the states along its incoming
    edges; unreachable blocks are absent.
    """
    in_states: dict[int, State] = {cfg.entry: analysis.initial()}
    work: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    while work:
        bid = work.popleft()
        queued.discard(bid)
        block = cfg.blocks[bid]
        pre = in_states[bid]
        post = analysis.transfer(block.stmt, pre) if block.stmt is not None else pre
        for succ, kind in block.succs:
            out = (
                analysis.exc_state(block.stmt, pre, post)
                if kind == EXC
                else post
            )
            known = in_states.get(succ)
            merged = out if known is None else analysis.join(known, out)
            if known is None or merged != known:
                in_states[succ] = merged
                if succ not in queued:
                    queued.add(succ)
                    work.append(succ)
    return in_states
