"""SIA401: interprocedural float-taint into the exact-arithmetic zone.

SIA001-003 are syntactic: a float *literal* or *cast* inside
``repro/smt/`` / ``repro/predicates/`` is caught, but a float that is
born in ``repro/learn/`` (or from numpy/math) and travels through
helpers, assignments and containers before being handed to an
exact-zone function is invisible to them.  This pass closes that hole:

* **Sources** -- float literals, ``float(...)``, any call whose root is
  a ``numpy``/``math`` module binding, and calls into functions whose
  *summary* says they may return a float.
* **Propagation** -- flow-sensitive through assignments, arithmetic,
  containers, subscripts and attribute reads; interprocedural through
  two summary fixpoints: per-function *return* summaries (does ``f``
  return taint; which parameters flow to its return) and per-parameter
  *call-site seeding* (does any resolved caller pass taint into
  parameter ``i``).
* **Sanitizers** -- ``int()``, ``round()``, ``Fraction()``, ``str()``
  and friends stop propagation; so does any resolved call whose
  summary shows it returns exact values (that is how
  ``learn/rationalize.py`` stays a sanctioned boundary without a
  special case).
* **Sinks** -- argument positions of calls that resolve into an
  exact-zone (``smt``/``predicates``) *function*.  Class constructors
  are deliberately not sinks: exact-zone IR constructors such as
  ``Lit`` convert floats to ``Fraction`` at construction by contract
  (enforced by their own ``__post_init__``), and flagging them would
  bury the real cross-function leaks in noise.

Findings are reported at the call site that crosses the boundary, with
the taint's rule id ``SIA401``; ``# sia: allow-float`` and
``# sia: allow(SIA401)`` pragmas suppress them like any lint finding.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..lint import EXACT_ZONE
from .callgraph import FunctionInfo, Project
from .cfg import Test, WithExit, immediate_exprs
from .engine import FlowAnalysis, State, run_fixpoint

__all__ = ["analyze_taint", "FLOAT"]

FLOAT = "float"

#: Builtins that stop float taint (their results are exact or textual).
_SANITIZERS = frozenset(
    {"int", "round", "str", "repr", "bool", "len", "Fraction", "gcd", "range"}
)

#: Module roots whose call results are float-typed for our purposes.
_FLOAT_MODULES = frozenset({"math", "numpy", "np", "statistics"})

_MAX_FIXPOINT_ROUNDS = 12


def _param_tag(index: int) -> str:
    return f"param:{index}"


class _TaintState(FlowAnalysis):
    """Intraprocedural taint propagation for one function."""

    def __init__(
        self,
        project: Project,
        func: FunctionInfo,
        summaries: dict[str, frozenset],
        seeds: dict[str, set[int]],
        *,
        symbolic_params: bool,
    ) -> None:
        self.project = project
        self.func = func
        self.summaries = summaries
        self.seeds = seeds
        self.symbolic_params = symbolic_params

    def initial(self) -> State:
        state: State = {}
        seeded = self.seeds.get(self.func.qualname, set())
        for index, name in enumerate(self.func.params):
            if self.symbolic_params:
                tags = {_param_tag(index)}
                if index in seeded:
                    tags.add(FLOAT)
                state[name] = frozenset(tags)
            elif index in seeded:
                state[name] = frozenset({FLOAT})
        return state

    # -- expression evaluation -----------------------------------------
    def eval(self, expr: ast.expr | None, state: State) -> frozenset:
        if expr is None:
            return frozenset()
        if isinstance(expr, ast.Constant):
            return frozenset({FLOAT}) if type(expr.value) is float else frozenset()
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        if isinstance(expr, ast.BinOp):
            return self.eval(expr.left, state) | self.eval(expr.right, state)
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand, state)
        if isinstance(expr, ast.BoolOp):
            out: frozenset = frozenset()
            for value in expr.values:
                out |= self.eval(value, state)
            return out
        if isinstance(expr, ast.IfExp):
            return self.eval(expr.body, state) | self.eval(expr.orelse, state)
        if isinstance(expr, ast.Compare):
            return frozenset()  # booleans are not float-tainted
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = frozenset()
            for elt in expr.elts:
                out |= self.eval(elt, state)
            return out
        if isinstance(expr, ast.Dict):
            out = frozenset()
            for key in expr.keys:
                out |= self.eval(key, state)
            for value in expr.values:
                out |= self.eval(value, state)
            return out
        if isinstance(expr, ast.Subscript):
            return self.eval(expr.value, state)
        if isinstance(expr, ast.Attribute):
            return self.eval(expr.value, state)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, state)
        if isinstance(expr, ast.NamedExpr):
            # Binding handled by the transfer's pre-scan; value here.
            return self.eval(expr.value, state)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comp(expr.elt, expr.generators, state)
        if isinstance(expr, ast.DictComp):
            return self._eval_comp(
                expr.value, expr.generators, state
            ) | self._eval_comp(expr.key, expr.generators, state)
        if isinstance(expr, ast.Await):
            return self.eval(expr.value, state)
        return frozenset()

    def _eval_comp(
        self,
        elt: ast.expr,
        generators: list[ast.comprehension],
        state: State,
    ) -> frozenset:
        inner = dict(state)
        for gen in generators:
            iter_taint = self.eval(gen.iter, inner)
            for name in _target_names(gen.target):
                inner[name] = iter_taint
        return self.eval(elt, inner)

    def _eval_call(self, call: ast.Call, state: State) -> frozenset:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "float" or func.id == "complex":
                return frozenset({FLOAT})
            if func.id in _SANITIZERS:
                return frozenset()
            if func.id in ("abs", "min", "max", "sum", "sorted", "list",
                           "tuple", "set", "frozenset", "next", "iter"):
                out: frozenset = frozenset()
                for arg in call.args:
                    out |= self.eval(arg, state)
                return out
        if isinstance(func, ast.Attribute):
            root = func.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                bound = self.project.external_module_of(root, self.func.module)
                root_module = bound if bound is not None else root.id
                head = root_module.split(".")[0]
                if head in _FLOAT_MODULES:
                    return frozenset({FLOAT})
        resolved = self.project.resolve_call(func, self.func.module)
        if resolved is not None:
            summary = self.summaries.get(resolved.qualname, frozenset())
            out = frozenset({FLOAT}) if FLOAT in summary else frozenset()
            params = resolved.params
            for index, arg in enumerate(call.args):
                if _param_tag(index) in summary:
                    out |= self.eval(arg, state)
            for keyword in call.keywords:
                if keyword.arg is not None and keyword.arg in params:
                    if _param_tag(params.index(keyword.arg)) in summary:
                        out |= self.eval(keyword.value, state)
            return out
        # Unresolved call: taint does not propagate (method receivers
        # are unknown; fabricating taint would drown real findings).
        return frozenset()

    # -- statements ----------------------------------------------------
    def transfer(self, stmt: object, state: State) -> State:
        out = dict(state)
        if isinstance(stmt, Test):
            self._bind_walrus(stmt, out)
            return out
        if isinstance(stmt, WithExit):
            return out
        if isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                out[stmt.name] = frozenset()
            return out
        if not isinstance(stmt, ast.stmt):
            return out
        self._bind_walrus(stmt, out)
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value, out)
            for target in stmt.targets:
                for name in _target_names(target):
                    out[name] = taint
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            taint = self.eval(stmt.value, out)
            for name in _target_names(stmt.target):
                out[name] = taint
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval(stmt.value, out)
            for name in _target_names(stmt.target):
                out[name] = out.get(name, frozenset()) | taint
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self.eval(stmt.iter, out)
            for name in _target_names(stmt.target):
                out[name] = taint
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr, out)
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        out[name] = taint
        return out

    def _bind_walrus(self, stmt: object, state: State) -> None:
        for expr in immediate_exprs(stmt):
            for sub in ast.walk(expr):
                if isinstance(sub, ast.NamedExpr) and isinstance(
                    sub.target, ast.Name
                ):
                    state[sub.target.id] = self.eval(sub.value, state)


def _target_names(target: ast.expr) -> list[str]:
    """Plain names bound by an assignment target (nested tuples too)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []  # attribute / subscript stores are not tracked cells


def _return_summary(
    project: Project,
    func: FunctionInfo,
    summaries: dict[str, frozenset],
    seeds: dict[str, set[int]],
) -> frozenset:
    """Taint tags a call of ``func`` may return (FLOAT and param:i)."""
    analysis = _TaintState(
        project, func, summaries, seeds, symbolic_params=True
    )
    in_states = run_fixpoint(func.cfg, analysis)
    out: frozenset = frozenset()
    for block, stmt in func.cfg.statements():
        if isinstance(stmt, ast.Return) and block.bid in in_states:
            out |= analysis.eval(stmt.value, in_states[block.bid])
    allowed = {FLOAT} | {
        _param_tag(index) for index in range(len(func.params))
    }
    return frozenset(tag for tag in out if tag in allowed)


def analyze_taint(project: Project) -> list[Finding]:
    """Run the interprocedural float-taint pass over a whole project."""
    functions = project.all_functions()
    summaries: dict[str, frozenset] = {f.qualname: frozenset() for f in functions}
    seeds: dict[str, set[int]] = {f.qualname: set() for f in functions}

    # Phase 1: return summaries to a fixpoint (monotone, finite tags).
    for _ in range(_MAX_FIXPOINT_ROUNDS):
        changed = False
        for func in functions:
            updated = _return_summary(project, func, summaries, seeds)
            if updated != summaries[func.qualname]:
                summaries[func.qualname] = updated
                changed = True
        if not changed:
            break

    # Phase 2: call-site seeding -- which parameters may receive FLOAT
    # from some resolved caller -- interleaved with re-summarising,
    # since a newly seeded parameter can make its function return taint.
    for _ in range(_MAX_FIXPOINT_ROUNDS):
        changed = False
        for func in functions:
            analysis = _TaintState(
                project, func, summaries, seeds, symbolic_params=False
            )
            in_states = run_fixpoint(func.cfg, analysis)
            for block, stmt in func.cfg.statements():
                if block.bid not in in_states:
                    continue
                state = in_states[block.bid]
                for call in _calls_in(stmt):
                    resolved = project.resolve_call(call.func, func.module)
                    if resolved is None:
                        continue
                    params = resolved.params
                    for index, arg in enumerate(call.args):
                        if index >= len(params):
                            break
                        if FLOAT in analysis.eval(arg, state):
                            if index not in seeds[resolved.qualname]:
                                seeds[resolved.qualname].add(index)
                                changed = True
                    for keyword in call.keywords:
                        if keyword.arg is None or keyword.arg not in params:
                            continue
                        if FLOAT in analysis.eval(keyword.value, state):
                            index = params.index(keyword.arg)
                            if index not in seeds[resolved.qualname]:
                                seeds[resolved.qualname].add(index)
                                changed = True
        if changed:
            for func in functions:
                summaries[func.qualname] = _return_summary(
                    project, func, summaries, seeds
                )
        else:
            break

    # Phase 3: report tainted arguments crossing into exact-zone
    # functions (the cross-function hole SIA001-003 cannot see).
    findings: list[Finding] = []
    for func in functions:
        analysis = _TaintState(
            project, func, summaries, seeds, symbolic_params=False
        )
        in_states = run_fixpoint(func.cfg, analysis)
        for block, stmt in func.cfg.statements():
            if block.bid not in in_states:
                continue
            state = in_states[block.bid]
            for call in _calls_in(stmt):
                resolved = project.resolve_call(call.func, func.module)
                if resolved is None or resolved.zone != EXACT_ZONE:
                    continue
                if resolved.module is func.module:
                    continue  # intra-module exact calls are SIA001-003's job
                args = list(call.args) + [
                    k.value for k in call.keywords
                ]
                if any(FLOAT in analysis.eval(arg, state) for arg in args):
                    findings.append(
                        Finding(
                            file=str(func.module.path),
                            line=call.lineno,
                            col=call.col_offset + 1,
                            rule="SIA401",
                            message=(
                                "float-tainted value flows into exact-zone "
                                f"function {resolved.qualname}()"
                            ),
                            pass_name="flow",
                        )
                    )
    return findings


def _calls_in(stmt: object) -> list[ast.Call]:
    out: list[ast.Call] = []
    for expr in immediate_exprs(stmt):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                out.append(sub)
    return out
