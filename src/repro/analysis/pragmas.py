"""Suppression pragmas honored by the linter.

A pragma is a source comment of one of the forms::

    # sia: allow-float          -- suppresses SIA001/SIA002/SIA003/SIA401
    # sia: allow-mutation       -- suppresses SIA006
    # sia: allow(SIA004,SIA005) -- suppresses the listed rule ids

A pragma suppresses matching findings on its own line.  When the
pragma starts a comment-only line, the suppression extends through the
rest of that comment block to the first code line after it, so a
sanctioned exception can carry a multi-line justification::

    # sia: allow-float -- documented learn-boundary crossing: the SVM
    # is float-native; rationalization restores exactness downstream.
    bias = float(w[dim] * bias_scale)

Free-form prose may also follow an inline pragma after ``--``.
"""

from __future__ import annotations

import re

_PRAGMA_RE = re.compile(
    r"#\s*sia:\s*(allow-float|allow-mutation|allow\(([A-Z0-9,\s]+)\))"
)

_FLOAT_RULES = frozenset({"SIA001", "SIA002", "SIA003", "SIA401"})
_MUTATION_RULES = frozenset({"SIA006"})


def extract_pragmas(source: str) -> dict[int, frozenset[str]]:
    """Map of 1-based line number -> rule ids suppressed on that line."""
    out: dict[int, frozenset[str]] = {}
    lines = source.splitlines()
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        kind = match.group(1)
        if kind == "allow-float":
            rules = _FLOAT_RULES
        elif kind == "allow-mutation":
            rules = _MUTATION_RULES
        else:
            rules = frozenset(
                part.strip()
                for part in match.group(2).split(",")
                if part.strip()
            )
        out[lineno] = out.get(lineno, frozenset()) | rules
        if not text.lstrip().startswith("#"):
            continue
        # A pragma opening a comment block covers the whole block and
        # the first code line after it, so the sanctioned exception can
        # carry a multi-line justification.
        cursor = lineno  # 0-based index of the line after the pragma
        while cursor < len(lines) and lines[cursor].lstrip().startswith("#"):
            out[cursor + 1] = out.get(cursor + 1, frozenset()) | rules
            cursor += 1
        # Decorator lines are not where findings anchor (the linter
        # reports at the ``def``/``class`` line), so a pragma block
        # above a decorated definition extends past the decorators to
        # the definition line itself.
        while cursor < len(lines) and lines[cursor].lstrip().startswith("@"):
            out[cursor + 1] = out.get(cursor + 1, frozenset()) | rules
            cursor += 1
        if cursor < len(lines):
            out[cursor + 1] = out.get(cursor + 1, frozenset()) | rules
    return out


def is_suppressed(
    pragmas: dict[int, frozenset[str]], line: int, rule: str
) -> bool:
    """Whether ``rule`` is pragma-suppressed at ``line``."""
    return rule in pragmas.get(line, frozenset())
