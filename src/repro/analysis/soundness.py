"""Null-soundness checking of registered rewrite rules.

Every rule in :data:`repro.rewrite.rules.REWRITE_RULES` carries a proof
obligation under SQL three-valued logic (Alg. 1 / Lemma 4 of the
paper): the rewritten predicate must accept every tuple the original
accepts, *including* the NULL cases -- a rule that is an equivalence
under two-valued logic (``x = x  <=>  TRUE``) can still be unsound in
SQL, where ``NULL = NULL`` evaluates to NULL and filters the tuple out.

The obligation is discharged through the repo's own DPLL(T) solver: for
a rule ``lhs => rhs`` we encode both sides with the (value, NULL-flag)
pairing of section 5.2 and check ``T(lhs) & ~T(rhs)`` for
unsatisfiability, exactly as the synthesis-time validity check in
:mod:`repro.core.verify` does.  For ``equivalence=True`` rules the
reverse direction is checked as well.  This makes the analyzer double
as a regression harness for the solver: a soundness bug in the simplex
or branch-and-bound path shows up here as a spurious SIA201/SIA202.

The structural invariants of every formula the encoding produces
(including their negation-normal forms) are re-checked along the way,
so a single ``repro analyze`` run exercises the predicate IR, the 3VL
encoding, the NNF machinery and the solver end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..predicates import truth_formula
from ..predicates.normalize import LinearizationContext
from ..rewrite.rules import REWRITE_RULES, RewriteRule
from ..smt import SolverError, conj, is_satisfiable, negate, to_nnf
from ..smt.formula import Formula
from ..smt.theory import SolverBudgetError
from .findings import Finding
from .invariants import check_formula, check_pred


@dataclass
class SoundnessReport:
    """Outcome of verifying the rule registry."""

    rules_checked: int = 0
    obligations_discharged: int = 0
    findings: list[Finding] = field(default_factory=list)


def _origin(rule: RewriteRule, part: str) -> str:
    return f"rewrite-rule:{rule.name}:{part}"


def _implication_holds(
    antecedent: Formula, consequent: Formula, *, bnb_budget: int
) -> bool | None:
    """True/False for a definite answer, None when the solver gave up."""
    try:
        return not is_satisfiable(
            conj([antecedent, negate(consequent)]), bnb_budget=bnb_budget
        )
    except (SolverError, SolverBudgetError):
        return None


def check_rule(rule: RewriteRule, *, bnb_budget: int = 4000) -> list[Finding]:
    """All findings for one rewrite rule (structure + soundness)."""
    findings: list[Finding] = []
    findings += check_pred(rule.lhs, _origin(rule, "lhs"))
    findings += check_pred(rule.rhs, _origin(rule, "rhs"))

    # One shared context so both sides see identical column variables
    # and NULL flags.
    ctx = LinearizationContext.for_predicate(rule.lhs & rule.rhs)
    t_lhs = truth_formula(rule.lhs, ctx)
    t_rhs = truth_formula(rule.rhs, ctx)
    for formula, part in (
        (t_lhs, "T(lhs)"),
        (t_rhs, "T(rhs)"),
        (to_nnf(negate(t_rhs)), "nnf(~T(rhs))"),
    ):
        findings += check_formula(formula, _origin(rule, part))

    forward = _implication_holds(t_lhs, t_rhs, bnb_budget=bnb_budget)
    if forward is not True:
        detail = (
            "solver could not discharge the obligation"
            if forward is None
            else "T(lhs) & ~T(rhs) is satisfiable"
        )
        findings.append(
            Finding(
                file=_origin(rule, "forward"),
                line=0,
                col=0,
                rule="SIA201",
                message=f"rule {rule.name!r} is not null-sound: {detail}",
                pass_name="soundness",
            )
        )
    if rule.equivalence:
        reverse = _implication_holds(t_rhs, t_lhs, bnb_budget=bnb_budget)
        if reverse is not True:
            detail = (
                "solver could not discharge the obligation"
                if reverse is None
                else "T(rhs) & ~T(lhs) is satisfiable"
            )
            findings.append(
                Finding(
                    file=_origin(rule, "reverse"),
                    line=0,
                    col=0,
                    rule="SIA202",
                    message=(
                        f"rule {rule.name!r} claims an equivalence but the "
                        f"reverse direction fails: {detail}"
                    ),
                    pass_name="soundness",
                )
            )
    return findings


def check_registry(
    rules: tuple[RewriteRule, ...] | None = None,
    *,
    bnb_budget: int = 4000,
) -> SoundnessReport:
    """Verify every registered rewrite rule."""
    report = SoundnessReport()
    for rule in REWRITE_RULES if rules is None else rules:
        report.rules_checked += 1
        report.obligations_discharged += 2 if rule.equivalence else 1
        report.findings.extend(check_rule(rule, bnb_budget=bnb_budget))
    report.findings.sort()
    return report
