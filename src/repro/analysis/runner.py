"""Orchestration of the analysis passes and report rendering.

``run_analysis`` composes the three passes:

1. the AST lint pass over the given paths (:mod:`repro.analysis.lint`),
2. the structural invariant pass over every registered rewrite rule's
   predicate trees and their 3VL encodings
   (:mod:`repro.analysis.invariants`),
3. the null-soundness pass discharging each rule's obligation through
   the SMT solver (:mod:`repro.analysis.soundness`).

Findings are data (:class:`repro.analysis.findings.Finding`); this
module only aggregates and renders them, as human-readable text or as
JSON for CI annotation tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding
from .lint import lint_paths
from .soundness import check_registry

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL_ERROR = 2

JSON_SCHEMA_VERSION = 1


class AnalysisError(Exception):
    """Internal analyzer failure (bad paths, unparsable input, ...)."""


@dataclass
class AnalysisReport:
    """Aggregated outcome of one ``repro analyze`` run."""

    findings: list[Finding] = field(default_factory=list)
    files_linted: int = 0
    rules_checked: int = 0
    obligations_discharged: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return EXIT_CLEAN if self.clean else EXIT_FINDINGS

    def to_json(self) -> dict[str, object]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {
            "version": JSON_SCHEMA_VERSION,
            "clean": self.clean,
            "summary": {
                "files_linted": self.files_linted,
                "rules_checked": self.rules_checked,
                "obligations_discharged": self.obligations_discharged,
                "findings": len(self.findings),
                "by_rule": counts,
            },
            "findings": [finding.to_json() for finding in self.findings],
        }


def run_analysis(
    paths: list[str] | None = None,
    *,
    lint: bool = True,
    domain: bool = True,
) -> AnalysisReport:
    """Run the configured passes and return the aggregated report.

    ``paths`` feeds the lint pass (default: ``src``).  The domain
    passes (invariants + soundness over the rewrite-rule registry) are
    path-independent; disable them with ``domain=False`` when linting
    fixture trees.
    """
    report = AnalysisReport()
    if lint:
        resolved: list[Path] = []
        for raw in paths or ["src"]:
            path = Path(raw)
            if not path.exists():
                raise AnalysisError(f"no such file or directory: {raw}")
            resolved.append(path)
        findings, files = lint_paths(resolved)
        report.findings.extend(findings)
        report.files_linted = files
    if domain:
        soundness = check_registry()
        report.findings.extend(soundness.findings)
        report.rules_checked = soundness.rules_checked
        report.obligations_discharged = soundness.obligations_discharged
    report.findings.sort()
    return report


def render_text(report: AnalysisReport, *, fix_hints: bool = False) -> str:
    """Human-readable rendering (one line per finding + a summary)."""
    lines = [
        finding.render(fix_hints=fix_hints) for finding in report.findings
    ]
    summary = (
        f"analyzed {report.files_linted} file(s), "
        f"verified {report.rules_checked} rewrite rule(s) "
        f"({report.obligations_discharged} solver obligation(s)): "
    )
    summary += (
        "clean" if report.clean else f"{len(report.findings)} finding(s)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Stable JSON rendering for CI annotation tooling."""
    return json.dumps(report.to_json(), indent=2, sort_keys=True)
