"""Orchestration of the analysis passes and report rendering.

``run_analysis`` composes the three passes:

1. the AST lint pass over the given paths (:mod:`repro.analysis.lint`),
2. the structural invariant pass over every registered rewrite rule's
   predicate trees and their 3VL encodings
   (:mod:`repro.analysis.invariants`),
3. the null-soundness pass discharging each rule's obligation through
   the SMT solver (:mod:`repro.analysis.soundness`),
4. (opt-in, ``concurrency=True``) the shared-state/fork-safety pass
   (:mod:`repro.analysis.concurrency`),
5. (opt-in, ``certify=True``) the proof-certification pass: every
   registry obligation is re-run with ``Solver(proof=True)`` and the
   resulting proof log is replayed by the independent auditor
   (:mod:`repro.analysis.certify`).

Findings are data (:class:`repro.analysis.findings.Finding`); this
module only aggregates and renders them, as human-readable text or as
JSON for CI annotation tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding
from .lint import lint_paths
from .soundness import check_registry

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL_ERROR = 2

JSON_SCHEMA_VERSION = 1


class AnalysisError(Exception):
    """Internal analyzer failure (bad paths, unparsable input, ...)."""


@dataclass
class AnalysisReport:
    """Aggregated outcome of one ``repro analyze`` run."""

    findings: list[Finding] = field(default_factory=list)
    files_linted: int = 0
    files_flowed: int = 0
    files_concurrency: int = 0
    rules_checked: int = 0
    obligations_discharged: int = 0
    proofs_audited: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return EXIT_CLEAN if self.clean else EXIT_FINDINGS

    def to_json(self) -> dict[str, object]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {
            "version": JSON_SCHEMA_VERSION,
            "clean": self.clean,
            "summary": {
                "files_linted": self.files_linted,
                "files_flowed": self.files_flowed,
                "files_concurrency": self.files_concurrency,
                "rules_checked": self.rules_checked,
                "obligations_discharged": self.obligations_discharged,
                "proofs_audited": self.proofs_audited,
                "findings": len(self.findings),
                "by_rule": counts,
            },
            "findings": [finding.to_json() for finding in self.findings],
        }


def run_analysis(
    paths: list[str] | None = None,
    *,
    lint: bool = True,
    flow: bool = False,
    concurrency: bool = False,
    domain: bool = True,
    certify: bool = False,
) -> AnalysisReport:
    """Run the configured passes and return the aggregated report.

    ``paths`` feeds the lint, flow and concurrency passes (default:
    ``src``).  ``flow=True`` additionally runs the interprocedural
    dataflow analyses (SIA401 float taint, SIA402 determinism, SIA403
    resource lifecycle) over the same file set.  ``concurrency=True``
    runs the shared-state/fork-safety analyses (SIA501-504) over it.
    The domain passes (invariants + soundness over the rewrite-rule
    registry) are path-independent; disable them with ``domain=False``
    when linting fixture trees.  ``certify=True`` additionally re-runs
    every registry obligation with proof logging on and audits the
    logs.
    """
    report = AnalysisReport()
    if lint or flow or concurrency:
        resolved: list[Path] = []
        for raw in paths or ["src"]:
            path = Path(raw)
            if not path.exists():
                raise AnalysisError(f"no such file or directory: {raw}")
            resolved.append(path)
    if lint:
        findings, files = lint_paths(resolved)
        report.findings.extend(findings)
        report.files_linted = files
    if flow:
        from .flow import flow_paths

        findings, files = flow_paths(resolved)
        report.findings.extend(findings)
        report.files_flowed = files
    if concurrency:
        from .concurrency import concurrency_paths

        findings, files = concurrency_paths(resolved)
        report.findings.extend(findings)
        report.files_concurrency = files
    if domain:
        soundness = check_registry()
        report.findings.extend(soundness.findings)
        report.rules_checked = soundness.rules_checked
        report.obligations_discharged = soundness.obligations_discharged
    if certify:
        findings, audited = certify_registry()
        report.findings.extend(findings)
        report.proofs_audited = audited
    # De-duplicate: overlapping inputs ("src src/repro") or passes
    # re-reporting the same (file, line, rule) must count once.
    report.findings = sorted(dict.fromkeys(report.findings))
    return report


def certify_registry(
    *, bnb_budget: int = 4000
) -> tuple[list[Finding], int]:
    """Audit a proof for every rewrite-rule solver obligation.

    Re-runs the null-soundness obligations of the registered rules
    (the TPC-H verification corpus) with ``Solver(proof=True)`` and
    hands each proof log to the independent auditor.  Kept here rather
    than in :mod:`repro.analysis.certify` so the auditor itself never
    imports solver machinery.
    """
    from ..predicates import truth_formula
    from ..predicates.normalize import LinearizationContext
    from ..rewrite.rules import REWRITE_RULES
    from ..smt import SolverError, conj, negate
    from ..smt.solver import Solver
    from ..smt.theory import SolverBudgetError
    from .certify import audit_proof

    findings: list[Finding] = []
    audited = 0
    for rule in REWRITE_RULES:
        ctx = LinearizationContext.for_predicate(rule.lhs & rule.rhs)
        t_lhs = truth_formula(rule.lhs, ctx)
        t_rhs = truth_formula(rule.rhs, ctx)
        directions = [("forward", t_lhs, t_rhs)]
        if rule.equivalence:
            directions.append(("reverse", t_rhs, t_lhs))
        for part, antecedent, consequent in directions:
            solver = Solver(bnb_budget=bnb_budget, proof=True)
            solver.add(conj([antecedent, negate(consequent)]))
            try:
                solver.check()
            except (SolverError, SolverBudgetError):
                continue  # no verdict claimed, nothing to certify
            audited += 1
            assert solver.proof_log is not None
            findings.extend(
                audit_proof(
                    solver.proof_log,
                    origin=f"rewrite-rule:{rule.name}:{part}",
                )
            )
    return findings, audited


def render_text(report: AnalysisReport, *, fix_hints: bool = False) -> str:
    """Human-readable rendering (one line per finding + a summary)."""
    lines = [
        finding.render(fix_hints=fix_hints) for finding in report.findings
    ]
    summary = (
        f"analyzed {report.files_linted} file(s), "
        + (
            f"flow-analyzed {report.files_flowed} file(s), "
            if report.files_flowed
            else ""
        )
        + (
            f"concurrency-analyzed {report.files_concurrency} file(s), "
            if report.files_concurrency
            else ""
        )
        + f"verified {report.rules_checked} rewrite rule(s) "
        f"({report.obligations_discharged} solver obligation(s)"
        + (
            f", {report.proofs_audited} proof(s) audited"
            if report.proofs_audited
            else ""
        )
        + "): "
    )
    summary += (
        "clean" if report.clean else f"{len(report.findings)} finding(s)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Stable JSON rendering for CI annotation tooling."""
    return json.dumps(report.to_json(), indent=2, sort_keys=True)
