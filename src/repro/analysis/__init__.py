"""Static analysis subsystem: invariant checker + soundness linter.

Machine-checks the invariants the SMT/rewrite stack depends on but the
type system cannot see (docs/INTERNALS.md, "Invariants & static
analysis"):

* exact-arithmetic purity of ``repro/smt/`` and ``repro/predicates/``,
* frozen-node discipline of the IR,
* structural well-formedness of live formula/predicate trees,
* null-soundness of every registered rewrite rule, discharged through
  the repo's own solver,
* certified UNSAT: independent replay of solver proof logs
  (``--certify``), so no UNSAT verdict has to be taken on trust.

CLI: ``python -m repro analyze [--json] [--fix-hints] [--certify]
[paths...]``.
"""

from .certify import audit_proof
from .concurrency import concurrency_paths
from .findings import Finding, RULE_CATALOG, RuleInfo
from .invariants import check_formula, check_pred
from .lint import lint_file, lint_paths, lint_source, zone_of
from .pragmas import extract_pragmas
from .runner import (
    AnalysisError,
    AnalysisReport,
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_INTERNAL_ERROR,
    certify_registry,
    render_json,
    render_text,
    run_analysis,
)
from .soundness import SoundnessReport, check_registry, check_rule

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_INTERNAL_ERROR",
    "Finding",
    "RULE_CATALOG",
    "RuleInfo",
    "SoundnessReport",
    "audit_proof",
    "certify_registry",
    "check_formula",
    "check_pred",
    "check_registry",
    "check_rule",
    "concurrency_paths",
    "extract_pragmas",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "run_analysis",
    "zone_of",
]
