"""Structural invariant checking of live IR trees.

The type system cannot see the invariants the SMT/rewrite stack relies
on, so this module walks actual :class:`~repro.smt.formula.Formula` and
:class:`~repro.predicates.expr.Pred` objects and verifies them:

* **SIA101 arity** -- n-ary connectives carry >= 2 arguments (the smart
  constructors ``conj``/``disj``/``pand``/``por`` guarantee this; a
  violation means somebody bypassed them), operators are drawn from the
  legal sets.
* **SIA102 sorts** -- every :class:`LinExpr` coefficient and constant
  is an exact :class:`~fractions.Fraction` (never a float), ``Var``
  sorts are valid, SQL comparisons satisfy the typing rules of section
  4.1 and literals carry values of the declared type.
* **SIA103 aliasing** -- no mutable container (a ``LinExpr`` coefficient
  map) is shared between two distinct owners.  Sharing *immutable*
  subtrees is explicitly fine -- formulas are DAGs by design -- but a
  shared dict means an in-place update in one node would corrupt the
  other.
* **SIA104 cycles** -- no node is its own ancestor; every traversal in
  the codebase assumes well-founded trees.

Checks are defensive: they re-validate what constructors already
enforce, because ``object.__setattr__`` and pickling can both produce
nodes that never went through a constructor.
"""

from __future__ import annotations

import datetime as _dt
from fractions import Fraction

from ..errors import TypeCheckError
from ..predicates.expr import (
    Arith,
    Col,
    Comparison,
    DATE,
    DOUBLE,
    INTEGER,
    IsNull,
    Lit,
    PAnd,
    PNot,
    POr,
    Pred,
    TIMESTAMP,
    _PConst,
)
from ..smt.formula import And, Atom, BVar, EQ, Formula, LE, LT, NE, Not, Or, _Const
from ..smt.terms import INT, LinExpr, REAL, Var
from .findings import Finding

_ATOM_OPS = frozenset({LE, LT, EQ, NE})
_SORTS = frozenset({INT, REAL})
_LIT_TYPES: dict[str, tuple[type, ...]] = {
    INTEGER: (int,),
    DOUBLE: (int, Fraction),
    DATE: (_dt.date,),
    TIMESTAMP: (_dt.datetime,),
}


class _Checker:
    """Shared traversal state for one checked tree."""

    def __init__(self, origin: str) -> None:
        self.origin = origin
        self.findings: list[Finding] = []
        # id(container) -> (id(owner), description), for the aliasing check.
        self._container_owners: dict[int, tuple[int, str]] = {}
        self._visited: set[int] = set()

    def report(self, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                file=self.origin,
                line=0,
                col=0,
                rule=rule,
                message=message,
                pass_name="invariant",
            )
        )

    # -- shared sub-checks ---------------------------------------------
    def check_linexpr(self, expr: object, owner: str) -> None:
        if not isinstance(expr, LinExpr):
            self.report(
                "SIA102", f"{owner}: expected LinExpr, got {type(expr).__name__}"
            )
            return
        if id(expr) in self._visited:
            # The same (immutable) LinExpr reached through two parents:
            # legitimate DAG sharing, already checked once.
            return
        self._visited.add(id(expr))
        coeffs = expr.coeffs
        if not isinstance(coeffs, dict):
            self.report(
                "SIA102",
                f"{owner}: coefficient map is {type(coeffs).__name__}, not dict",
            )
            return
        previous = self._container_owners.setdefault(id(coeffs), (id(expr), owner))
        if previous[0] != id(expr):
            # Two *distinct* LinExpr objects alias one dict: an in-place
            # update through either would silently rewrite the other.
            self.report(
                "SIA103",
                f"{owner} shares its coefficient map with {previous[1]}",
            )
        for var, coeff in coeffs.items():
            self._check_var(var, owner)
            self._check_scalar(coeff, f"{owner} coefficient of {var!r}")
        self._check_scalar(expr.const, f"{owner} constant term")

    def _check_var(self, var: object, owner: str) -> None:
        if not isinstance(var, Var):
            self.report(
                "SIA102", f"{owner}: expected Var, got {type(var).__name__}"
            )
        elif var.sort not in _SORTS:
            self.report("SIA102", f"{owner}: unknown sort {var.sort!r}")

    def _check_scalar(self, value: object, owner: str) -> None:
        # bool is an int subclass but is never a legal coefficient, and
        # float is exactly the leak this analyzer exists to catch.
        if isinstance(value, bool) or not isinstance(value, (int, Fraction)):
            self.report(
                "SIA102",
                f"{owner} is {type(value).__name__}, not an exact scalar",
            )

    def enter(self, node: object, path: set[int], kind: str) -> bool:
        """Cycle bookkeeping; returns False when the node closes a cycle
        or was already fully checked via another parent (DAG sharing)."""
        if id(node) in path:
            self.report(
                "SIA104", f"{kind} node {type(node).__name__} is its own ancestor"
            )
            return False
        if id(node) in self._visited:
            return False
        return True


# ----------------------------------------------------------------------
# Formula trees
# ----------------------------------------------------------------------
def check_formula(formula: Formula, origin: str = "<formula>") -> list[Finding]:
    """Structural invariants of one SMT formula tree."""
    checker = _Checker(origin)
    _walk_formula(formula, checker, set())
    return checker.findings


def _walk_formula(node: object, checker: _Checker, path: set[int]) -> None:
    if not checker.enter(node, path, "formula"):
        return
    if isinstance(node, _Const):
        return
    checker._visited.add(id(node))
    if isinstance(node, Atom):
        if node.op not in _ATOM_OPS:
            checker.report("SIA101", f"atom has unknown operator {node.op!r}")
        checker.check_linexpr(node.expr, f"atom {node!r}")
        return
    if isinstance(node, BVar):
        if not isinstance(node.name, str) or not node.name:
            checker.report("SIA102", "propositional variable with empty name")
        return
    if isinstance(node, Not):
        path.add(id(node))
        _walk_formula(node.arg, checker, path)
        path.discard(id(node))
        return
    if isinstance(node, (And, Or)):
        args = node.args
        if not isinstance(args, tuple):
            checker.report(
                "SIA103",
                f"{type(node).__name__} stores args in a mutable "
                f"{type(args).__name__}",
            )
            args = tuple(args)
        if len(args) < 2:
            checker.report(
                "SIA101",
                f"{type(node).__name__} has {len(args)} argument(s); smart "
                "constructors guarantee >= 2",
            )
        path.add(id(node))
        for arg in args:
            _walk_formula(arg, checker, path)
        path.discard(id(node))
        return
    checker.report(
        "SIA102", f"foreign object {type(node).__name__} in formula tree"
    )


# ----------------------------------------------------------------------
# Predicate trees
# ----------------------------------------------------------------------
def check_pred(pred: Pred, origin: str = "<pred>") -> list[Finding]:
    """Structural invariants of one SQL predicate tree."""
    checker = _Checker(origin)
    _walk_pred(pred, checker, set())
    return checker.findings


def _walk_pred(node: object, checker: _Checker, path: set[int]) -> None:
    if not checker.enter(node, path, "predicate"):
        return
    if isinstance(node, _PConst):
        return
    checker._visited.add(id(node))
    if isinstance(node, Comparison):
        try:
            # Re-runs the section 4.1 typing judgment over the operands.
            Comparison(node.left, node.op, node.right)
        except TypeCheckError as exc:
            checker.report("SIA102", f"comparison {node!r}: {exc}")
        path.add(id(node))
        _walk_expr(node.left, checker, path)
        _walk_expr(node.right, checker, path)
        path.discard(id(node))
        return
    if isinstance(node, (PAnd, POr)):
        args = node.args
        if not isinstance(args, tuple):
            checker.report(
                "SIA103",
                f"{type(node).__name__} stores args in a mutable "
                f"{type(args).__name__}",
            )
            args = tuple(args)
        if len(args) < 2:
            checker.report(
                "SIA101",
                f"{type(node).__name__} has {len(args)} argument(s); smart "
                "constructors guarantee >= 2",
            )
        path.add(id(node))
        for arg in args:
            _walk_pred(arg, checker, path)
        path.discard(id(node))
        return
    if isinstance(node, PNot):
        path.add(id(node))
        _walk_pred(node.arg, checker, path)
        path.discard(id(node))
        return
    if isinstance(node, IsNull):
        path.add(id(node))
        _walk_expr(node.expr, checker, path)
        path.discard(id(node))
        return
    checker.report(
        "SIA102", f"foreign object {type(node).__name__} in predicate tree"
    )


def _walk_expr(node: object, checker: _Checker, path: set[int]) -> None:
    if not checker.enter(node, path, "expression"):
        return
    checker._visited.add(id(node))
    if isinstance(node, Col):
        return
    if isinstance(node, Lit):
        expected = _LIT_TYPES.get(node.ltype)
        if expected is None:
            checker.report("SIA102", f"literal with unknown type {node.ltype!r}")
        elif isinstance(node.value, bool) or not isinstance(node.value, expected):
            checker.report(
                "SIA102",
                f"literal {node.value!r} ({type(node.value).__name__}) does "
                f"not inhabit {node.ltype}",
            )
        return
    if isinstance(node, Arith):
        try:
            node.etype  # re-run the typing judgment
        except TypeCheckError as exc:
            checker.report("SIA102", f"arithmetic node {node!r}: {exc}")
        path.add(id(node))
        _walk_expr(node.left, checker, path)
        _walk_expr(node.right, checker, path)
        path.discard(id(node))
        return
    checker.report(
        "SIA102", f"foreign object {type(node).__name__} in expression tree"
    )
