"""AST-based soundness linter for project-specific invariants.

Off-the-shelf linters cannot express the invariants this codebase
actually depends on, so this module walks the ``ast`` of every source
file and enforces them directly:

* **Exact-arithmetic purity** (SIA001/SIA002/SIA003).  Everything under
  ``repro/smt/`` and ``repro/predicates/`` is the *exact zone*: the
  DPLL(T) core and the predicate IR must stay in int/Fraction
  arithmetic end-to-end, because a single float leaking into the
  simplex or Fourier-Motzkin path silently breaks verification
  (docs/INTERNALS.md).  ``repro/learn/`` is the *boundary zone*: numpy
  floats are its native currency, but every ``float()`` crossing must
  be explicitly sanctioned with ``# sia: allow-float`` so the set of
  crossings stays auditable.  Two file-scoped exceptions:
  ``smt/floatsimplex.py`` is the *float-tier zone* (the sanctioned
  float tableau of the two-tier backend, exempt from the purity rules
  but still a taint source the flow pass tracks), and
  ``analysis/certify.py`` is promoted *into* the exact zone (the
  certificate auditor must stay Fraction-pure even though it lives
  outside ``smt/``).

* **Dynamic evaluation and exception hygiene** (SIA004/SIA005),
  enforced project-wide.

* **Frozen-node discipline** (SIA006/SIA007).  IR nodes are interned
  and shared; mutating one after construction corrupts every formula
  that references it.

* **Solver API discipline** (SIA008), enforced project-wide: reading a
  solver model without a dominating check of the verdict.  ``model()``
  raises (or worse, returns stale values) unless the preceding
  ``check()``/``solve()`` returned SAT, so every ``.model()`` call must
  be reachable only after the verdict was actually inspected -- a
  comparison against ``SAT``/``UNSAT`` (or the ``"sat"``/``"unsat"``
  strings), or a ``check()``/``solve()`` call inside an ``if``/
  ``while``/``assert`` condition.  A bare ``solver.check()`` statement
  whose verdict is discarded does *not* count.

* **Warm-session discipline** (SIA009), enforced under ``repro/core/``:
  constructing a bare ``Solver(...)`` there bypasses the persistent
  :class:`~repro.smt.session.SmtSession` layer (activation literals,
  counter reuse, docs/INTERNALS.md "Incremental sessions").  Core code
  must route checks through a session, or through
  ``certified_solver`` for proof-logged verdicts; deliberate
  exceptions carry ``# sia: allow(SIA009)``.

* **Clock discipline** (SIA010), enforced everywhere except
  ``repro/obs/clock.py`` itself: durations must be measured on the
  injectable clock (:func:`repro.obs.clock.now`), never on
  ``time.time()`` / ``time.perf_counter()`` / ``time.monotonic()``
  directly.  A direct call bypasses ``ManualClock`` in tests (timing
  assertions go flaky) and escapes the span tracer's notion of time.
  Aliased spellings are tracked through the file's imports: ``import
  time as t``, ``from time import perf_counter [as pc]`` and the
  datetime family (``datetime.datetime.now()`` / ``today()`` /
  ``utcnow()``, under any import alias) all count.
  ``repro/obs/clock.py`` is the single sanctioned call site; the rest
  of ``repro/obs/`` (heartbeat emitters, exporters, the ledger) is
  held to the same rule as everything else, because telemetry
  timestamps must be drivable by ``ManualClock`` too.  ``time.sleep``
  is not a clock read and stays legal everywhere.

The linter is purely syntactic -- it never imports the code it checks.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .findings import Finding
from .pragmas import extract_pragmas, is_suppressed

# Zone classification by path segment (works for the real tree and for
# test fixture trees alike).
EXACT_ZONE = "exact"
BOUNDARY_ZONE = "boundary"
GENERAL_ZONE = "general"
FLOAT_TIER_ZONE = "float-tier"

_EXACT_PARTS = frozenset({"smt", "predicates"})
_BOUNDARY_PARTS = frozenset({"learn"})
# The sanctioned float tier of the two-tier tableau backend
# (repro.smt.backend): machine-float cells and epsilon guards are its
# whole point, so the exact-purity rules (SIA001/002/003) do not apply
# inside it.  The carve-out is file-scoped, not directory-scoped: every
# *other* module under smt/ stays exact, and the flow layer treats the
# float tier as ordinary (non-sink) code, so float taint *escaping* it
# into exact-zone modules is still a SIA401 finding.
_FLOAT_TIER_FILES = frozenset({"floatsimplex.py"})
# Exact-zone promotion by file name: the certificate auditor lives
# under analysis/ but consumes Farkas certificates that must be pure
# Fraction arithmetic end-to-end, so float taint reaching it is flagged
# exactly as if it crossed into smt/.
_EXACT_FILES = frozenset({"certify.py"})
_EXACT_FILE_PARENTS = frozenset({"analysis"})

# Class names whose subclasses are hot-path IR nodes (SIA007).
_NODE_BASES = frozenset({"Formula", "Pred", "Expr", "_NAry", "_PNAry"})

# Methods in which object.__setattr__ is part of constructing a frozen
# node rather than mutating one (SIA006).
_SANCTIONED_MUTATORS = frozenset(
    {"__init__", "__post_init__", "__new__", "__setattr__", "__delattr__"}
)

# Files under the core zone that may construct Solver directly (SIA009)
# -- a session-layer module would live here if core ever grew one.
_SESSION_MODULES = frozenset({"session.py"})

# Wall-clock reads that must route through repro.obs.clock (SIA010).
_CLOCK_ATTRS = frozenset(
    {"time", "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns"}
)
_TIME_MODULE_NAMES = frozenset({"time", "_time"})
# datetime class/instance methods that read the wall clock (SIA010).
_DATETIME_NOW_ATTRS = frozenset({"now", "today", "utcnow"})
_DATETIME_CLASSES = frozenset({"datetime", "date"})


def zone_of(path: Path) -> str:
    """Lint zone of a source file, derived from its path segments."""
    parts = frozenset(path.parts)
    if path.name in _FLOAT_TIER_FILES and "smt" in parts:
        return FLOAT_TIER_ZONE
    if parts & _EXACT_PARTS:
        return EXACT_ZONE
    if path.name in _EXACT_FILES and parts & _EXACT_FILE_PARENTS:
        return EXACT_ZONE
    if parts & _BOUNDARY_PARTS:
        return BOUNDARY_ZONE
    return GENERAL_ZONE


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, zone: str) -> None:
        self.path = path
        self.zone = zone
        parts = Path(path).parts
        self._core_zone = (
            "core" in parts and Path(path).name not in _SESSION_MODULES
        )
        # Only repro/obs/clock.py may read the real clock (SIA010);
        # every other obs/ module (heartbeat, export, ledger, top) is
        # telemetry code whose timestamps must honor ManualClock.
        self._obs_zone = "obs" in parts and Path(path).name == "clock.py"
        self.findings: list[Finding] = []
        self._class_stack: list[str] = []
        self._func_stack: list[str] = []
        # Float constants already reported through a SIA003 comparison,
        # so SIA001 does not double-report the same token.
        self._consumed_constants: set[int] = set()
        # One frame per enclosing scope (module + functions): whether a
        # solver-verdict check has been seen yet in that scope (SIA008).
        self._verdict_seen: list[bool] = [False]
        # SIA010 alias tracking: local names bound to the time module,
        # to clock functions imported from it, and to the datetime
        # module / datetime classes.
        self._time_modules: set[str] = set(_TIME_MODULE_NAMES)
        self._clock_names: dict[str, str] = {}
        self._datetime_modules: set[str] = set()
        self._datetime_classes: dict[str, str] = {}

    # -- import tracking (SIA010 aliases) ------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            root = alias.name.split(".")[0]
            if root in _TIME_MODULE_NAMES:
                self._time_modules.add(local)
            elif root == "datetime":
                self._datetime_modules.add(local)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = (node.module or "").split(".")[0]
        for alias in node.names:
            local = alias.asname or alias.name
            if module in _TIME_MODULE_NAMES and alias.name in _CLOCK_ATTRS:
                self._clock_names[local] = alias.name
            elif module == "datetime" and alias.name in _DATETIME_CLASSES:
                self._datetime_classes[local] = alias.name
        self.generic_visit(node)

    def _datetime_class_ref(self, node: ast.expr) -> str | None:
        """The datetime class a ``datetime.datetime`` / ``dt`` ref names."""
        if isinstance(node, ast.Name):
            return self._datetime_classes.get(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in self._datetime_modules
            and node.attr in _DATETIME_CLASSES
        ):
            return node.attr
        return None

    # -- helpers -------------------------------------------------------
    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                file=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
                pass_name="lint",
            )
        )

    @staticmethod
    def _is_float_operand(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and type(node.value) is float:
            return True
        if isinstance(node, ast.UnaryOp):
            return _Linter._is_float_operand(node.operand)
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        )

    def _mark_consumed(self, node: ast.expr) -> None:
        if isinstance(node, ast.Constant):
            self._consumed_constants.add(id(node))
        elif isinstance(node, ast.UnaryOp):
            self._mark_consumed(node.operand)

    @staticmethod
    def _has_verdict_marker(node: ast.AST) -> bool:
        """Whether a subtree inspects a solver verdict (SIA008)."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in ("SAT", "UNSAT"):
                return True
            if isinstance(sub, ast.Constant) and sub.value in ("sat", "unsat"):
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("check", "solve")
            ):
                return True
        return False

    def _note_verdict_check(self, test: ast.AST) -> None:
        if self._has_verdict_marker(test):
            self._verdict_seen[-1] = True

    # -- visitors ------------------------------------------------------
    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            self.zone == EXACT_ZONE
            and type(node.value) is float
            and id(node) not in self._consumed_constants
        ):
            self._report(
                node,
                "SIA001",
                f"float literal {node.value!r} in exact-arithmetic zone",
            )

    def visit_If(self, node: ast.If) -> None:
        self._note_verdict_check(node.test)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._note_verdict_check(node.test)
        self.generic_visit(node)

    def visit_Assert(self, node: ast.Assert) -> None:
        self._note_verdict_check(node.test)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        self._note_verdict_check(node)
        if self.zone == EXACT_ZONE and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            operands = [node.left, *node.comparators]
            if any(self._is_float_operand(operand) for operand in operands):
                for operand in operands:
                    self._mark_consumed(operand)
                self._report(
                    node, "SIA003", "==/!= comparison on a float operand"
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if self._core_zone and (
            (isinstance(func, ast.Name) and func.id == "Solver")
            or (isinstance(func, ast.Attribute) and func.attr == "Solver")
        ):
            self._report(
                node,
                "SIA009",
                "direct Solver(...) construction bypasses the warm "
                "session layer; use SmtSession (or certified_solver "
                "for proof-logged verdicts)",
            )
        if (
            not self._obs_zone
            and isinstance(func, ast.Attribute)
            and func.attr in _CLOCK_ATTRS
            and isinstance(func.value, ast.Name)
            and func.value.id in self._time_modules
        ):
            self._report(
                node,
                "SIA010",
                f"direct time.{func.attr}() call; measure on the "
                "injectable clock (repro.obs.clock.now) so ManualClock "
                "tests and span traces stay deterministic",
            )
        if (
            not self._obs_zone
            and isinstance(func, ast.Name)
            and func.id in self._clock_names
        ):
            origin = self._clock_names[func.id]
            self._report(
                node,
                "SIA010",
                f"direct {func.id}() call (time.{origin} imported by "
                "name); measure on the injectable clock "
                "(repro.obs.clock.now) so ManualClock tests and span "
                "traces stay deterministic",
            )
        if (
            not self._obs_zone
            and isinstance(func, ast.Attribute)
            and func.attr in _DATETIME_NOW_ATTRS
        ):
            dt_class = self._datetime_class_ref(func.value)
            if dt_class is not None:
                self._report(
                    node,
                    "SIA010",
                    f"{dt_class}.{func.attr}() reads the wall clock; "
                    "derive timestamps from the injectable clock "
                    "(repro.obs.clock.now) so ManualClock tests and "
                    "span traces stay deterministic",
                )
        if isinstance(func, ast.Name):
            if func.id == "float" and self.zone in (EXACT_ZONE, BOUNDARY_ZONE):
                self._report(
                    node,
                    "SIA002",
                    "float() cast crosses out of exact arithmetic",
                )
            elif func.id in ("eval", "exec"):
                self._report(node, "SIA004", f"call to {func.id}()")
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "model"
            and not node.args
            and not node.keywords
        ):
            if not any(self._verdict_seen):
                self._report(
                    node,
                    "SIA008",
                    "model() read without checking the solver verdict "
                    "first",
                )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        ):
            enclosing = self._func_stack[-1] if self._func_stack else None
            if not (self._class_stack and enclosing in _SANCTIONED_MUTATORS):
                self._report(
                    node,
                    "SIA006",
                    "object.__setattr__ outside a constructor mutates a "
                    "frozen node",
                )
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(node, "SIA005", "bare except clause")
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.zone == EXACT_ZONE and self._is_node_subclass(node):
            if not (self._is_frozen_dataclass(node) or self._has_slots(node)):
                self._report(
                    node,
                    "SIA007",
                    f"IR node class {node.name!r} lacks __slots__ and is "
                    "not a frozen dataclass",
                )
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._func_stack.append(node.name)
        self._verdict_seen.append(False)
        self.generic_visit(node)
        self._verdict_seen.pop()
        self._func_stack.pop()

    # -- class-shape helpers -------------------------------------------
    @staticmethod
    def _is_node_subclass(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else None
            )
            if name in _NODE_BASES:
                return True
        return False

    @staticmethod
    def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            func = decorator.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "dataclass":
                continue
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "frozen"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
        return False

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for statement in node.body:
            if isinstance(statement, ast.Assign):
                targets = statement.targets
            elif isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        return False


def lint_source(
    source: str,
    path: Path,
    *,
    honor_pragmas: bool = True,
) -> list[Finding]:
    """Lint one source string as if it lived at ``path``."""
    tree = ast.parse(source, filename=str(path))
    linter = _Linter(str(path), zone_of(path))
    linter.visit(tree)
    if not honor_pragmas:
        return sorted(linter.findings)
    pragmas = extract_pragmas(source)
    return sorted(
        finding
        for finding in linter.findings
        if not is_suppressed(pragmas, finding.line, finding.rule)
    )


def lint_file(path: Path, *, honor_pragmas: bool = True) -> list[Finding]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path, honor_pragmas=honor_pragmas)


def iter_python_files(paths: list[Path]) -> list[Path]:
    """All .py files under the given files/directories, de-duplicated.

    De-duplication keys on the *resolved* path, so overlapping inputs
    (``repro analyze src src/repro``, ``./src src``) and symlinked
    spellings of the same file are examined -- and reported -- once.
    The first spelling seen wins for display purposes.
    """
    out: dict[Path, Path] = {}
    for path in paths:
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if "__pycache__" not in child.parts:
                    out.setdefault(child.resolve(), child)
        elif path.suffix == ".py":
            out.setdefault(path.resolve(), path)
    return list(out.values())


def lint_paths(
    paths: list[Path], *, honor_pragmas: bool = True
) -> tuple[list[Finding], int]:
    """Lint every python file under ``paths``.

    Returns the findings plus the number of files examined.
    """
    findings: list[Finding] = []
    files = iter_python_files(paths)
    for file_path in files:
        findings.extend(lint_file(file_path, honor_pragmas=honor_pragmas))
    return sorted(findings), len(files)
