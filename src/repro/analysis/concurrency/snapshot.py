"""SIA504: cross-process aggregation must use the snapshot/delta protocol.

Delta-capable registries (``GLOBAL_COUNTERS``, ``GLOBAL_METRICS``)
have exactly one sanctioned way to cross a process boundary: the
worker snapshots before its batch, ships ``delta_since(before)``, and
the parent folds the deltas with ``merge_delta`` in batch order.  Any
other access in aggregation code -- reading ``GLOBAL_COUNTERS.checks``
in the parent and adding worker numbers to it by hand, poking a
counter field to "carry over" state -- silently mixes parent-local
warmth into worker totals, and the result depends on the start method
and on scheduling.

The rule therefore scopes itself to *aggregation modules*: modules
that construct a process pool or dispatch work across a process
boundary.  Inside those modules, every attribute access on a
delta-capable registry must be one of the protocol methods
(``snapshot`` / ``delta_since`` / ``merge_delta`` / ``reset``) or a
metric accessor (``counter`` / ``timer`` / ``histogram`` /
``summary``).  Raw field reads and writes are findings.  Modules
without process dispatch (the solver core incrementing its own
counters) are out of scope by construction.  Suppress with
``# sia: allow(SIA504)``.

Channel-capable state (post/drain side channels, see the inventory)
gets the same treatment with its own accessor set: aggregation code
may ``post`` to, ``drain`` from, or ``reset`` a channel/status board
-- those are the protocol -- but may not poke its fields directly.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..flow.callgraph import ModuleInfo, Project
from .inventory import (
    Inventory,
    dispatch_sites,
    executor_constructions,
)

__all__ = ["analyze_snapshot"]

#: Attribute names sanctioned on a delta-capable registry in
#: aggregation code: the snapshot/delta protocol plus the metric
#: accessors (which hand back per-metric objects, not raw tables).
SANCTIONED_ACCESSORS = frozenset(
    {"snapshot", "delta_since", "merge_delta", "reset", "summary",
     "counter", "timer", "histogram", "gauge"}
)

#: Attribute names sanctioned on channel-capable state (the
#: single-producer post/drain side-channel protocol).
CHANNEL_ACCESSORS = frozenset({"post", "drain", "reset"})


def _is_aggregation_module(project: Project, module: ModuleInfo) -> bool:
    """Whether the module dispatches work across a process boundary."""
    for func in project.all_functions():
        if func.module is not module:
            continue
        for _call, kind in executor_constructions(func.node):
            if kind == "process":
                return True
        for site in dispatch_sites(func):
            if site.boundary in ("process", "executor"):
                return True
    return False


def analyze_snapshot(project: Project, inv: Inventory) -> list[Finding]:
    """Run the SIA504 pass over a whole project."""
    findings: list[Finding] = []
    for module in project.modules.values():
        if not _is_aggregation_module(project, module):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            entry = inv.resolve(module, node.value)
            if entry is None:
                continue
            if entry.delta_capable:
                if node.attr in SANCTIONED_ACCESSORS:
                    continue
                kind = "delta-capable registry"
                hint = "use snapshot()/delta_since()/merge_delta()"
            elif entry.channel_capable:
                if node.attr in CHANNEL_ACCESSORS:
                    continue
                kind = "channel-capable state"
                hint = "use post()/drain()"
            else:
                continue
            verb = (
                "write" if isinstance(node.ctx, (ast.Store, ast.Del))
                else "read"
            )
            findings.append(
                Finding(
                    file=str(module.path),
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule="SIA504",
                    message=(
                        f"raw attribute {verb} of {kind} "
                        f"{entry.qualname}.{node.attr} in cross-process "
                        f"aggregation code; {hint}"
                    ),
                    pass_name="concurrency",
                )
            )
    return findings
