"""SIA503: lock discipline on shared-registry read-modify-writes.

The GIL makes single bytecodes atomic; it does not make *idioms*
atomic.  The two racy idioms this rule hunts are exactly the ones that
corrupt a registry the moment a second thread appears (the ``repro
serve`` daemon, a background flusher):

* **Unlocked augmented assignment** -- ``SHARED[key] += 1`` /
  ``GLOBAL.field += n`` compiles to read, add, write; two threads
  interleave and one increment is lost.
* **Check-then-insert** -- ``metric = table.get(name)`` / ``if key not
  in table`` followed by an unlocked ``table[key] = ...``: two threads
  both observe "absent" and both insert, and one of the two objects
  (with whatever state it accumulated) is silently dropped.  This is
  the get-or-create shape of ``MetricsRegistry``.

A write is sanctioned when it sits lexically inside a ``with <lock>:``
block resolving to a module-level lock (the double-checked pattern --
unlocked fast-path *read*, locked re-check and insert -- is clean by
construction: only the store needs the lock).  The worker-local zone
(per-process solver core and memo caches) is exempt, as is state whose
writes are already covered per-process by the snapshot/delta protocol
*and* live in the worker-local zone.  ``# sia: allow(SIA503)``
suppresses a deliberate single-threaded exception.
"""

from __future__ import annotations

from ..findings import Finding
from ..flow.callgraph import Project
from .inventory import WORKER_LOCAL_ZONE, Inventory, lock_guard_lines
from .writes import guard_reads, shared_writes

__all__ = ["analyze_locks"]


def analyze_locks(project: Project, inv: Inventory) -> list[Finding]:
    """Run the SIA503 pass over a whole project."""
    findings: list[Finding] = []
    for func in project.all_functions():
        module = func.module
        guarded_lines = lock_guard_lines(func.node, module, inv)
        checked = guard_reads(func, inv)
        for site in shared_writes(func, inv):
            state = site.state
            if state.zone == WORKER_LOCAL_ZONE:
                continue
            if site.lineno in guarded_lines:
                continue
            if site.rmw:
                findings.append(
                    Finding(
                        file=str(module.path),
                        line=site.lineno,
                        col=site.col,
                        rule="SIA503",
                        message=(
                            f"read-modify-write on shared state "
                            f"{state.qualname} outside a lock; the "
                            "interleaving loses updates"
                        ),
                        pass_name="concurrency",
                    )
                )
            elif site.op == "store" and state.qualname in checked:
                findings.append(
                    Finding(
                        file=str(module.path),
                        line=site.lineno,
                        col=site.col,
                        rule="SIA503",
                        message=(
                            f"check-then-insert on shared state "
                            f"{state.qualname} outside a lock; two "
                            "threads can both observe 'absent' and "
                            "both insert"
                        ),
                        pass_name="concurrency",
                    )
                )
    return findings
