"""SIA501: shared-state writes reachable from worker entry points.

A *worker entry point* is any function handed across a thread or
process boundary: the callable of ``pool.submit(f, ...)`` /
``pool.map(f, ...)``, or the ``target=`` of ``threading.Thread`` /
``multiprocessing.Process``.  From those entries the rule closes over
the project call graph (resolved calls only -- the same conservative
resolution the flow passes use) and inspects every reachable function
for writes to the shared-state inventory.

A reachable write is a finding unless one of the sanctioned shapes
applies:

* the state is **delta-capable** -- its class speaks the
  snapshot/delta protocol (``GLOBAL_COUNTERS``, ``GLOBAL_METRICS``),
  so per-worker mutation *is* the aggregation design;
* the state is **channel-capable** -- its class speaks the
  single-producer post/drain side-channel protocol (``GLOBAL_BOARD``,
  ``BeaconChannel``): each worker posts only its own slots and the
  parent drains, so the writes are the telemetry design, not a race;
* the write site is in the **worker-local zone** (the per-process
  solver core and memo caches);
* the write is lexically inside a ``with <lock>:`` block.

Everything else is exactly the bug class that turns a clean
single-process run into a corrupted parallel one: a worker mutating a
registry the parent (or a sibling thread) also owns, with nobody
synchronizing.  Suppress a deliberate exception with
``# sia: allow(SIA501)``.
"""

from __future__ import annotations

import ast
from collections import deque

from ..findings import Finding
from ..flow.callgraph import FunctionInfo, Project
from .inventory import (
    WORKER_LOCAL_ZONE,
    Inventory,
    dispatch_sites,
    lock_guard_lines,
)
from .writes import shared_writes

__all__ = ["analyze_escape", "worker_entries", "worker_reachable"]


def worker_entries(project: Project) -> dict[str, FunctionInfo]:
    """Worker entry functions, keyed by qualname."""
    out: dict[str, FunctionInfo] = {}
    for func in project.all_functions():
        for site in dispatch_sites(func):
            resolved = project.resolve_call(site.callable, func.module)
            if resolved is not None:
                out.setdefault(resolved.qualname, resolved)
    return out


def worker_reachable(
    project: Project, entries: dict[str, FunctionInfo]
) -> dict[str, str]:
    """Functions reachable from worker entries: qualname -> entry.

    Breadth-first closure over resolved calls; the mapped value is the
    entry point that first reached the function, for reporting.
    """
    reached: dict[str, str] = {}
    queue: deque[tuple[FunctionInfo, str]] = deque(
        (func, qualname) for qualname, func in entries.items()
    )
    index = {f.qualname: f for f in project.all_functions()}
    while queue:
        func, entry = queue.popleft()
        if func.qualname in reached:
            continue
        reached[func.qualname] = entry
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = project.resolve_call(node.func, func.module)
            if resolved is not None and resolved.qualname not in reached:
                target = index.get(resolved.qualname, resolved)
                queue.append((target, entry))
    return reached


def analyze_escape(project: Project, inv: Inventory) -> list[Finding]:
    """Run the SIA501 pass over a whole project."""
    entries = worker_entries(project)
    if not entries:
        return []
    reached = worker_reachable(project, entries)
    index = {f.qualname: f for f in project.all_functions()}

    findings: list[Finding] = []
    for qualname, entry in sorted(reached.items()):
        func = index.get(qualname)
        if func is None:
            continue
        guarded = lock_guard_lines(func.node, func.module, inv)
        for site in shared_writes(func, inv):
            state = site.state
            if state.delta_capable:
                continue
            if state.channel_capable:
                continue
            if state.zone == WORKER_LOCAL_ZONE:
                continue
            if site.lineno in guarded:
                continue
            findings.append(
                Finding(
                    file=str(func.module.path),
                    line=site.lineno,
                    col=site.col,
                    rule="SIA501",
                    message=(
                        f"shared state {state.qualname} written without "
                        f"synchronization on a worker-reachable path "
                        f"(entry: {entry})"
                    ),
                    pass_name="concurrency",
                )
            )
    return findings
