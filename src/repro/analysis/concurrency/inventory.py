"""Shared-state inventory: what the concurrency rules reason about.

Every SIA5xx rule needs the same three facts about a project before it
can say anything useful:

* **Which values are process-global mutable state.**  Module-level
  dict/list/set bindings (registries, memo caches), module-level
  instances of project classes (``GLOBAL_COUNTERS``,
  ``GLOBAL_METRICS``), class-level intern tables (``ClassVar`` dicts
  such as the hash-cons tables in ``smt/terms.py``), and names rebound
  through ``global`` statements.
* **Which of them speak the snapshot/delta protocol.**  A registry
  whose class defines ``snapshot``/``delta_since`` participates in the
  sanctioned cross-process aggregation scheme (worker snapshots before
  the batch, ships the delta, parent merges in batch order) -- writes
  to it inside a worker are the *design*, not a hazard.  The same
  holds for the **channel protocol**: a class defining both ``post``
  and ``drain`` is a single-producer lossy side channel (the heartbeat
  status board / beacon channel in :mod:`repro.obs.heartbeat`) whose
  posts on worker-reachable paths are how telemetry leaves the hot
  path, deliberately without a lock (plain GIL-atomic stores, lossy by
  design).
* **Which code is a worker-local zone.**  The solver core
  (``repro/smt/``, ``repro/predicates/``) is single-threaded per
  process by contract: its counters and intern tables are mutated on
  every pivot and aggregated only via deltas, so lock-discipline rules
  would be pure noise there.  The bench memo caches
  (``bench/harness.py``) are likewise per-process by design.  The
  carve-out mirrors the lint zones (:func:`repro.analysis.lint.zone_of`)
  and is path-derived, so fixture trees classify the same way.

The inventory is *purely static* -- like the rest of
:mod:`repro.analysis` it never imports the code it describes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from ..flow.callgraph import FunctionInfo, ModuleInfo, Project

__all__ = [
    "Inventory",
    "SharedState",
    "WORKER_LOCAL_ZONE",
    "SHARED_ZONE",
    "collect_inventory",
    "concurrency_zone_of",
    "dispatch_sites",
    "DispatchSite",
    "lock_guard_lines",
    "mutating_method",
]

WORKER_LOCAL_ZONE = "worker-local"
SHARED_ZONE = "shared"

#: Directories whose modules are per-process by contract: the solver
#: core mutates counters/intern tables on hot paths and aggregates only
#: through snapshot/delta; flagging those writes would drown the rules.
_WORKER_LOCAL_PARTS = frozenset({"smt", "predicates"})
#: File-scoped carve-outs: per-process memo caches (the bench harness
#: caches catalogs/records per worker; each process warms its own).
_WORKER_LOCAL_FILES = frozenset({"harness.py"})

#: Constructor names producing mutable containers at module level.
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "OrderedDict",
     "Counter", "WeakValueDictionary", "WeakKeyDictionary"}
)

#: Method names that mutate a container / registry in place.
_MUTATOR_METHODS = frozenset(
    {"append", "add", "update", "setdefault", "pop", "popitem", "clear",
     "extend", "remove", "discard", "insert", "move_to_end"}
)

#: Methods that make a registry delta-capable (the sanctioned
#: cross-process aggregation protocol).
_DELTA_METHODS = frozenset({"snapshot", "delta_since"})

#: Methods that make a class channel-capable (the sanctioned
#: single-producer side-channel protocol): it must define BOTH.
_CHANNEL_METHODS = frozenset({"post", "drain"})

#: Names that construct a lock (``threading.Lock()`` and kin).
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                             "BoundedSemaphore"})


def concurrency_zone_of(path: Path) -> str:
    """Concurrency zone of a source file (worker-local or shared)."""
    parts = frozenset(path.parts)
    if parts & _WORKER_LOCAL_PARTS:
        return WORKER_LOCAL_ZONE
    if path.name in _WORKER_LOCAL_FILES and "bench" in parts:
        return WORKER_LOCAL_ZONE
    return SHARED_ZONE


@dataclass(frozen=True)
class SharedState:
    """One piece of process-global mutable state."""

    module: str  # dotted module key
    name: str  # binding name ("REGISTRY", "MetricsRegistry._counters")
    kind: str  # "container" | "instance" | "class-table" | "global-rebind"
    lineno: int
    class_name: str | None = None  # for instances: the class's local name
    delta_capable: bool = False
    channel_capable: bool = False
    zone: str = SHARED_ZONE

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class Inventory:
    """Shared-state facts for one project."""

    #: dotted module key -> binding name -> entry
    by_module: dict[str, dict[str, SharedState]] = field(default_factory=dict)
    #: class local-name per module -> True when the class defines the
    #: snapshot/delta protocol (module key, class name)
    delta_classes: set[tuple[str, str]] = field(default_factory=set)
    #: (module key, class name) of classes speaking the post/drain
    #: channel protocol (single-producer lossy side channels)
    channel_classes: set[tuple[str, str]] = field(default_factory=set)
    #: classes with a module-level instance somewhere in the project:
    #: (defining module key, class name) -> instance qualnames
    singleton_classes: dict[tuple[str, str], list[str]] = field(
        default_factory=dict
    )
    #: module key -> local names bound to a lock at module level
    module_locks: dict[str, set[str]] = field(default_factory=dict)

    def entries(self) -> list[SharedState]:
        out: list[SharedState] = []
        for table in self.by_module.values():
            out.extend(table.values())
        return out

    def lookup(self, module: ModuleInfo, name: str) -> SharedState | None:
        """Resolve ``name`` in ``module`` to a shared-state entry.

        Follows ``from m import NAME [as alias]`` bindings so a write
        to an imported registry is charged to its defining module.
        """
        local = self.by_module.get(module.dotted, {}).get(name)
        if local is not None:
            return local
        bound = module.symbol_imports.get(name)
        if bound is not None:
            target_key, symbol = bound
            return self.by_module.get(target_key, {}).get(symbol)
        return None

    def lookup_attr(
        self, module: ModuleInfo, node: ast.expr
    ) -> SharedState | None:
        """Resolve ``m.NAME`` (module-attribute spelling) to an entry."""
        if not (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
        ):
            return None
        target_key = module.module_imports.get(node.value.id)
        if target_key is None:
            return None
        return self.by_module.get(target_key, {}).get(node.attr)

    def resolve(self, module: ModuleInfo, node: ast.expr) -> SharedState | None:
        """Entry a ``Name`` or ``module.Name`` expression refers to."""
        if isinstance(node, ast.Name):
            return self.lookup(module, node.id)
        return self.lookup_attr(module, node)

    def is_lock(self, module: ModuleInfo, node: ast.expr) -> bool:
        """Whether a with-item context expression is a sanctioned lock.

        Module-level ``threading.Lock()`` bindings resolve through
        imports like shared state does; any attribute whose name
        mentions ``lock`` (``self._lock``) is accepted too -- the rules
        prefer missing a mis-named lock to flagging a guarded write.
        """
        if isinstance(node, ast.Name):
            if node.id in self.module_locks.get(module.dotted, set()):
                return True
            bound = module.symbol_imports.get(node.id)
            if bound is not None:
                return bound[1] in self.module_locks.get(bound[0], set())
            return "lock" in node.id.lower()
        if isinstance(node, ast.Attribute):
            if "lock" in node.attr.lower():
                return True
            if isinstance(node.value, ast.Name):
                target_key = module.module_imports.get(node.value.id)
                if target_key is not None:
                    return node.attr in self.module_locks.get(
                        target_key, set()
                    )
        if isinstance(node, ast.Call):
            # ``with LOCK:`` vs ``with lock_for(x):`` -- accept a call
            # whose callee looks lock-ish.
            return self.is_lock(module, node.func)
        return False


def _mutable_kind(value: ast.expr) -> str | None:
    """Whether a module-level assignment value is a mutable container."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return "container"
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        if name in _MUTABLE_FACTORIES:
            return "container"
    return None


def _instance_class(value: ast.expr) -> str | None:
    """Class local-name when ``value`` is a ``SomeClass()`` call."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = (
        func.id if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute)
        else None
    )
    if name is not None and name[:1].isupper() and name not in _LOCK_FACTORIES:
        return name
    return None


def _is_lock_value(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = (
        func.id if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute)
        else None
    )
    return name in _LOCK_FACTORIES


def _class_methods(node: ast.ClassDef) -> set[str]:
    return {
        sub.name
        for sub in node.body
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _class_delta_capable(node: ast.ClassDef) -> bool:
    return bool(_class_methods(node) & _DELTA_METHODS)


def _class_channel_capable(node: ast.ClassDef) -> bool:
    # Both protocol methods, not either: plenty of classes have a
    # ``post`` or a ``drain`` in isolation without being a channel.
    return _CHANNEL_METHODS <= _class_methods(node)


def _class_tables(node: ast.ClassDef) -> list[tuple[str, int]]:
    """Class-level mutable tables (intern caches) declared in the body."""
    out: list[tuple[str, int]] = []
    for sub in node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(sub, ast.Assign):
            targets, value = sub.targets, sub.value
        elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
            targets, value = [sub.target], sub.value
        if value is None or _mutable_kind(value) is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out.append((target.id, sub.lineno))
    return out


def collect_inventory(project: Project) -> Inventory:
    """Collect the shared-state inventory of a whole project."""
    inv = Inventory()
    class_defs: dict[str, dict[str, ast.ClassDef]] = {}

    # Pass 1: per-module bindings, classes, locks.
    for key, module in project.modules.items():
        table: dict[str, SharedState] = {}
        zone = concurrency_zone_of(module.path)
        class_defs[key] = {}
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                class_defs[key][node.name] = node
                if _class_delta_capable(node):
                    inv.delta_classes.add((key, node.name))
                if _class_channel_capable(node):
                    inv.channel_classes.add((key, node.name))
                for table_name, lineno in _class_tables(node):
                    entry = SharedState(
                        module=key,
                        name=f"{node.name}.{table_name}",
                        kind="class-table",
                        lineno=lineno,
                        class_name=node.name,
                        zone=zone,
                    )
                    table[entry.name] = entry
                continue
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            if _is_lock_value(value):
                inv.module_locks.setdefault(key, set()).update(names)
                continue
            kind = _mutable_kind(value)
            if kind is not None:
                for name in names:
                    table[name] = SharedState(
                        module=key, name=name, kind=kind,
                        lineno=node.lineno, zone=zone,
                    )
                continue
            instance_of = _instance_class(value)
            if instance_of is not None:
                for name in names:
                    table[name] = SharedState(
                        module=key, name=name, kind="instance",
                        lineno=node.lineno, class_name=instance_of,
                        zone=zone,
                    )
        # ``global NAME`` rebinds anywhere in the module make NAME
        # shared even when its initializer is immutable (_TRACER).
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Global):
                for name in node.names:
                    table.setdefault(
                        name,
                        SharedState(
                            module=key, name=name, kind="global-rebind",
                            lineno=node.lineno, zone=zone,
                        ),
                    )
        if table:
            inv.by_module[key] = table

    # Pass 2: resolve instance entries to their defining class (possibly
    # imported) and inherit its delta-capability; record singletons.
    for key, module in project.modules.items():
        for entry in list(inv.by_module.get(key, {}).values()):
            if entry.kind != "instance" or entry.class_name is None:
                continue
            cls_module, cls_name = _resolve_class(
                project, module, entry.class_name, class_defs
            )
            if cls_module is None:
                continue
            delta = (cls_module, cls_name) in inv.delta_classes
            channel = (cls_module, cls_name) in inv.channel_classes
            inv.singleton_classes.setdefault(
                (cls_module, cls_name), []
            ).append(entry.qualname)
            if delta or channel:
                inv.by_module[key][entry.name] = SharedState(
                    module=entry.module,
                    name=entry.name,
                    kind=entry.kind,
                    lineno=entry.lineno,
                    class_name=entry.class_name,
                    delta_capable=delta,
                    channel_capable=channel,
                    zone=entry.zone,
                )
    return inv


def _resolve_class(
    project: Project,
    module: ModuleInfo,
    class_name: str,
    class_defs: dict[str, dict[str, ast.ClassDef]],
) -> tuple[str | None, str]:
    """(module key, class name) a local class reference points at."""
    if class_name in class_defs.get(module.dotted, {}):
        return module.dotted, class_name
    bound = module.symbol_imports.get(class_name)
    if bound is not None and class_name == bound[1]:
        if bound[1] in class_defs.get(bound[0], {}):
            return bound[0], bound[1]
    return None, class_name


# ---------------------------------------------------------------------------
# Dispatch sites: where work crosses a thread/process boundary.
# ---------------------------------------------------------------------------

#: Executor constructor names, split by boundary kind.
PROCESS_EXECUTORS = frozenset({"ProcessPoolExecutor"})
THREAD_EXECUTORS = frozenset({"ThreadPoolExecutor"})
_TARGET_CONSTRUCTORS = frozenset({"Thread", "Process"})


@dataclass(frozen=True)
class DispatchSite:
    """One call handing a callable to another thread/process."""

    call: ast.Call
    callable: ast.expr  # the expression naming the worker function
    boundary: str  # "process" | "thread" | "executor" (receiver unknown)
    args: tuple[ast.expr, ...] = ()  # payload expressions crossing over


def _callee_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def executor_constructions(func_node: ast.AST) -> list[tuple[ast.Call, str]]:
    """``(call, kind)`` for every executor constructed under the node."""
    out: list[tuple[ast.Call, str]] = []
    for node in ast.walk(func_node):
        if not isinstance(node, ast.Call):
            continue
        name = _callee_name(node.func)
        if name in PROCESS_EXECUTORS:
            out.append((node, "process"))
        elif name in THREAD_EXECUTORS:
            out.append((node, "thread"))
    return out


def dispatch_sites(func: FunctionInfo) -> list[DispatchSite]:
    """Dispatch sites inside one function body.

    ``pool.map(f, ...)`` / ``pool.submit(f, ...)`` count regardless of
    the receiver's (unknown) type -- an executor method is the only
    idiom spelled that way in this codebase -- and
    ``Thread(target=f)`` / ``Process(target=f)`` count by constructor
    name.  The builtin ``map(f, xs)`` is a plain-name call and does not
    match.
    """
    out: list[DispatchSite] = []
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call):
            continue
        func_expr = node.func
        if isinstance(func_expr, ast.Attribute) and func_expr.attr in (
            "submit", "map"
        ):
            if node.args:
                out.append(
                    DispatchSite(
                        call=node,
                        callable=node.args[0],
                        boundary="executor",
                        args=tuple(node.args[1:]),
                    )
                )
            continue
        name = _callee_name(func_expr)
        if name in _TARGET_CONSTRUCTORS:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    boundary = "process" if name == "Process" else "thread"
                    payload = tuple(
                        k.value for k in node.keywords if k.arg == "args"
                    )
                    out.append(
                        DispatchSite(
                            call=node,
                            callable=keyword.value,
                            boundary=boundary,
                            args=payload,
                        )
                    )
    return out


def mutating_method(call: ast.Call) -> str | None:
    """The in-place mutator name when ``call`` is ``x.append(...)`` etc."""
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _MUTATOR_METHODS
    ):
        return call.func.attr
    return None


def lock_guard_lines(
    func_node: ast.AST, module: ModuleInfo, inv: Inventory
) -> set[int]:
    """Line numbers lexically inside a ``with <lock>:`` body.

    The concurrency rules treat a write as synchronized when its line
    falls inside a with-block whose context expression resolves to a
    sanctioned lock.  Lexical containment (rather than CFG dominance)
    is exactly what ``with`` gives us: the body *is* the guarded
    region.
    """
    guarded: set[int] = set()
    for node in ast.walk(func_node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        if not any(
            inv.is_lock(module, item.context_expr) for item in node.items
        ):
            continue
        last = max(
            (getattr(sub, "end_lineno", None) or sub.lineno)
            for stmt in node.body
            for sub in ast.walk(stmt)
            if hasattr(sub, "lineno")
        )
        first = min(stmt.lineno for stmt in node.body)
        guarded.update(range(first, last + 1))
    return guarded
