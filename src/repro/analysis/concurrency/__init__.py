"""Interprocedural shared-state and fork-safety analysis (SIA5xx).

The parallel driver (PR 6) made the repository multi-process; this
package makes the safety assumptions behind that move *checkable*.  It
reuses the :mod:`repro.analysis.flow` substrate -- the same
:class:`~repro.analysis.flow.callgraph.Project` call graph with the
same conservative resolution -- and layers four rules on a shared
inventory of process-global mutable state:

* **SIA501** (:mod:`.escape`) -- shared-state writes reachable from a
  worker entry point without synchronization;
* **SIA502** (:mod:`.forksafety`) -- fork-inheritance hazards at pool
  boundaries: implicit start method, parent-side mutation while a pool
  is live, unpicklable/closure-capturing dispatch payloads;
* **SIA503** (:mod:`.locks`) -- lock discipline: read-modify-write and
  check-then-insert on shared registries outside a sanctioned lock;
* **SIA504** (:mod:`.snapshot`) -- cross-process aggregation must go
  through the snapshot/delta protocol, never raw registry fields.

Like every other pass in :mod:`repro.analysis`, the analysis is purely
syntactic -- it never imports the code under test -- and honors the
``# sia: allow(RULE)`` pragma machinery.  Its runtime counterpart is
:mod:`repro.obs.sanitizer`, which checks the same contract on live
processes.
"""

from __future__ import annotations

from pathlib import Path

from ..findings import Finding
from ..lint import iter_python_files
from ..pragmas import extract_pragmas, is_suppressed
from ..flow.callgraph import Project
from .escape import analyze_escape
from .forksafety import analyze_forksafety
from .inventory import (
    SHARED_ZONE,
    WORKER_LOCAL_ZONE,
    Inventory,
    SharedState,
    collect_inventory,
    concurrency_zone_of,
)
from .locks import analyze_locks
from .snapshot import analyze_snapshot

__all__ = [
    "Inventory",
    "SharedState",
    "SHARED_ZONE",
    "WORKER_LOCAL_ZONE",
    "collect_inventory",
    "concurrency_zone_of",
    "concurrency_paths",
]


def concurrency_paths(
    paths: list[Path], *, honor_pragmas: bool = True
) -> tuple[list[Finding], int]:
    """Run all concurrency passes; returns ``(findings, files_analyzed)``.

    Mirrors :func:`repro.analysis.flow.driver.flow_paths`: one project
    per invocation so cross-module registries resolve, parse failures
    skipped (the syntactic linter already reports SIA000 for them).
    """
    files = iter_python_files(paths)
    loadable: list[Path] = []
    project = Project()
    for file_path in files:
        try:
            project.add_source(
                file_path.read_text(encoding="utf-8"), file_path
            )
        except (SyntaxError, OSError):
            continue
        loadable.append(file_path)
    for module in project.modules.values():
        project._bind_imports(module)

    inventory = collect_inventory(project)
    findings = [
        *analyze_escape(project, inventory),
        *analyze_forksafety(project, inventory),
        *analyze_locks(project, inventory),
        *analyze_snapshot(project, inventory),
    ]

    if honor_pragmas:
        pragma_cache: dict[str, dict[int, frozenset[str]]] = {}
        for module in project.modules.values():
            pragma_cache[str(module.path)] = extract_pragmas(module.source)
        findings = [
            finding
            for finding in findings
            if not is_suppressed(
                pragma_cache.get(finding.file, {}),
                finding.line,
                finding.rule,
            )
        ]

    return sorted(set(findings)), len(loadable)
