"""Write-site detection over the shared-state inventory.

A *write* to shared state is any of:

* a subscript store -- ``REGISTRY[key] = value`` (plain, annotated or
  augmented assignment),
* a field store on a module-level instance -- ``GLOBAL.attr = v`` /
  ``GLOBAL.attr += v``,
* an in-place mutator call -- ``REGISTRY.update(...)``,
  ``EVENTS.append(...)``, ``TABLE.setdefault(...)``,
* a rebind through ``global NAME``.

Each write site records whether it is an RMW (read-modify-write: an
augmented assignment, or a store textually guarded by a membership /
``.get`` check on the same state -- the check-then-insert shape), and
the resolved :class:`~repro.analysis.concurrency.inventory.SharedState`
entry it hits.  Rules decide what to do with the sites; this module
only finds them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..flow.callgraph import FunctionInfo, ModuleInfo
from .inventory import (
    Inventory,
    SharedState,
    concurrency_zone_of,
    mutating_method,
)

__all__ = ["WriteSite", "shared_writes", "guard_reads"]

#: ``.get``-style reads that make a following store check-then-insert.
_GUARD_READ_METHODS = frozenset({"get", "setdefault", "__contains__"})


@dataclass(frozen=True)
class WriteSite:
    """One statement/expression writing a piece of shared state."""

    node: ast.AST  # anchor for line/col reporting
    state: SharedState
    op: str  # "store" | "field" | "mutate:<method>" | "rebind"
    rmw: bool  # augmented assignment (+=) -- an unconditional RMW

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)

    @property
    def col(self) -> int:
        return getattr(self.node, "col_offset", 0) + 1


def _self_table_state(
    func: FunctionInfo,
    module: ModuleInfo,
    inv: Inventory,
    node: ast.expr,
) -> SharedState | None:
    """``self._counters`` inside a singleton class method.

    When a class has a module-level instance anywhere in the project
    (``GLOBAL_METRICS = MetricsRegistry()``), its instance tables are
    process-global in practice; a write through ``self`` inside its
    methods is a shared-state write.
    """
    if not (
        func.is_method
        and isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
    ):
        return None
    class_name = func.qualname.rsplit(".", 2)[-2]
    key = (module.dotted, class_name)
    if key not in inv.singleton_classes:
        return None
    return SharedState(
        module=module.dotted,
        name=f"{class_name}.{node.attr}",
        kind="instance-table",
        lineno=getattr(node, "lineno", 0),
        class_name=class_name,
        delta_capable=(key in inv.delta_classes),
        channel_capable=(key in inv.channel_classes),
        zone=concurrency_zone_of(module.path),
    )


def _resolve_base(
    func: FunctionInfo,
    module: ModuleInfo,
    inv: Inventory,
    node: ast.expr,
) -> SharedState | None:
    """Shared-state entry a store/mutator base expression refers to."""
    entry = inv.resolve(module, node)
    if entry is not None:
        return entry
    return _self_table_state(func, module, inv, node)


def shared_writes(
    func: FunctionInfo, inv: Inventory
) -> list[WriteSite]:
    """Every shared-state write site in one function body."""
    module = func.module
    out: list[WriteSite] = []
    declared_global: set[str] = set()
    for node in ast.walk(func.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    for node in ast.walk(func.node):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            else:
                targets = [node.target]
            rmw = isinstance(node, ast.AugAssign)
            for target in targets:
                if isinstance(target, ast.Subscript):
                    entry = _resolve_base(func, module, inv, target.value)
                    if entry is not None:
                        out.append(WriteSite(node, entry, "store", rmw))
                elif isinstance(target, ast.Attribute):
                    entry = _resolve_base(func, module, inv, target.value)
                    if entry is not None:
                        out.append(WriteSite(node, entry, "field", rmw))
                elif isinstance(target, ast.Name):
                    if target.id in declared_global:
                        entry = inv.lookup(module, target.id)
                        if entry is not None:
                            out.append(
                                WriteSite(node, entry, "rebind", rmw)
                            )
        elif isinstance(node, ast.Call):
            method = mutating_method(node)
            if method is None:
                continue
            assert isinstance(node.func, ast.Attribute)
            entry = _resolve_base(func, module, inv, node.func.value)
            if entry is not None:
                # ``setdefault`` reads then inserts: an RMW in one call.
                out.append(
                    WriteSite(
                        node, entry, f"mutate:{method}",
                        method == "setdefault",
                    )
                )
    return out


def guard_reads(func: FunctionInfo, inv: Inventory) -> set[str]:
    """Qualnames of shared state the function *checks* before writing.

    A membership test (``key in REGISTRY`` / ``key not in REGISTRY``)
    or a ``REGISTRY.get(...)`` read marks the registry as
    check-then-insert material: a later unlocked store to the same
    state is the classic lost-update race (two threads both see
    "absent", both insert).
    """
    module = func.module
    out: set[str] = set()
    for node in ast.walk(func.node):
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.In, ast.NotIn)):
                    entry = _resolve_base(func, module, inv, comparator)
                    if entry is not None:
                        out.add(entry.qualname)
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _GUARD_READ_METHODS
            ):
                entry = _resolve_base(func, module, inv, node.func.value)
                if entry is not None:
                    out.add(entry.qualname)
    return out
