"""SIA502: fork-inheritance and pickling hazards at pool boundaries.

``ProcessPoolExecutor`` under the fork start method clones the parent
mid-flight: every warm registry, intern table and counter is silently
duplicated into the workers at whatever state the parent had reached.
The deltas the workers later report then double-count the inherited
warmth -- a bug no test on a spawn platform (macOS, Windows) can see.
Three shapes are flagged:

* **Implicit start method.**  Constructing a ``ProcessPoolExecutor``
  without an explicit ``mp_context=`` argument inherits the platform
  default (fork on Linux).  The repo's contract is spawn -- workers
  must build their counters from zero so deltas mean what they say.
* **Parent-side mutation while the pool is live.**  A write to shared
  state inside the ``with ProcessPoolExecutor(...)`` block mutates the
  parent's copy after the workers were (possibly) forked from it:
  whether a given worker sees the write depends on scheduling.
* **Callables/arguments that do not survive the boundary.**  A
  ``lambda`` or nested function handed to ``submit``/``map`` fails to
  pickle at runtime (or captures mutable parent state by closure); a
  module-level mutable registry passed as an argument gets *copied*,
  so worker-side mutations are lost -- both are reported at the
  dispatch call.

Thread pools are exempt from the first two shapes (no fork, shared
address space) but not the third's closure hazard -- a lambda handed
to a thread still races on captured state; the message says which.
Suppress deliberate exceptions with ``# sia: allow(SIA502)``.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..flow.callgraph import FunctionInfo, Project
from .inventory import (
    Inventory,
    dispatch_sites,
    executor_constructions,
    lock_guard_lines,
)
from .writes import shared_writes

__all__ = ["analyze_forksafety"]


def _nested_defs(func: FunctionInfo) -> set[str]:
    """Names of functions defined *inside* a function's body.

    The module-level pseudo-function (``<module>``) walks the whole
    tree, so for it the module's own top-level ``def``s -- perfectly
    picklable -- must not count as nested.
    """
    out: set[str] = set()
    root = func.node
    for node in ast.walk(root):
        if node is root:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.add(node.name)
    if isinstance(root, ast.Module):
        out -= {
            node.name
            for node in root.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
    return out


def _span(node: ast.AST) -> tuple[int, int]:
    end = getattr(node, "end_lineno", None) or node.lineno  # type: ignore[attr-defined]
    return node.lineno, end  # type: ignore[attr-defined]


def analyze_forksafety(project: Project, inv: Inventory) -> list[Finding]:
    """Run the SIA502 pass over a whole project."""
    findings: list[Finding] = []
    for func in project.all_functions():
        module = func.module
        nested = _nested_defs(func)
        guarded = lock_guard_lines(func.node, module, inv)

        # Shape 1: implicit start method.
        pool_spans: list[tuple[int, int]] = []
        for call, kind in executor_constructions(func.node):
            if kind != "process":
                continue
            if not any(k.arg == "mp_context" for k in call.keywords):
                findings.append(
                    Finding(
                        file=str(module.path),
                        line=call.lineno,
                        col=call.col_offset + 1,
                        rule="SIA502",
                        message=(
                            "ProcessPoolExecutor constructed without an "
                            "explicit mp_context; the fork default "
                            "inherits the parent's warm global state "
                            "into every worker"
                        ),
                        pass_name="concurrency",
                    )
                )
            pool_spans.append(_live_span(func.node, call))

        # Shape 2: parent-side mutation while a process pool is live.
        if pool_spans:
            for site in shared_writes(func, inv):
                if site.lineno in guarded:
                    continue
                if any(
                    first <= site.lineno <= last
                    for first, last in pool_spans
                ):
                    findings.append(
                        Finding(
                            file=str(module.path),
                            line=site.lineno,
                            col=site.col,
                            rule="SIA502",
                            message=(
                                f"shared state {site.state.qualname} "
                                "mutated in the parent while a process "
                                "pool is live; forked workers may or may "
                                "not see the write"
                            ),
                            pass_name="concurrency",
                        )
                    )

        # Shape 3: unpicklable / closure-capturing dispatch payloads.
        for site in dispatch_sites(func):
            target = site.callable
            label: str | None = None
            if isinstance(target, ast.Lambda):
                label = "a lambda"
            elif isinstance(target, ast.Name) and target.id in nested:
                label = f"nested function {target.id}()"
            if label is not None:
                hazard = (
                    "cannot be pickled across the process boundary"
                    if site.boundary in ("process", "executor")
                    else "captures parent state by closure"
                )
                findings.append(
                    Finding(
                        file=str(module.path),
                        line=site.call.lineno,
                        col=site.call.col_offset + 1,
                        rule="SIA502",
                        message=f"worker callable {label} {hazard}",
                        pass_name="concurrency",
                    )
                )
            for arg in site.args:
                for sub in ast.walk(arg):
                    entry = inv.resolve(module, sub) if isinstance(
                        sub, (ast.Name, ast.Attribute)
                    ) else None
                    if entry is None:
                        continue
                    findings.append(
                        Finding(
                            file=str(module.path),
                            line=site.call.lineno,
                            col=site.call.col_offset + 1,
                            rule="SIA502",
                            message=(
                                f"shared registry {entry.qualname} passed "
                                "across the worker boundary; it is "
                                "copied, not shared -- worker-side "
                                "mutations are lost"
                            ),
                            pass_name="concurrency",
                        )
                    )
                    break  # one finding per payload expression
    return findings


def _live_span(func_node: ast.AST, call: ast.Call) -> tuple[int, int]:
    """Lines during which the executor constructed at ``call`` is live.

    When the construction is a with-item, the pool is live for exactly
    the with-body; otherwise fall back to "from the construction to the
    end of the function" (conservative for bare assignments).
    """
    for node in ast.walk(func_node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.context_expr is call:
                    first = min(stmt.lineno for stmt in node.body)
                    last = max(
                        (getattr(stmt, "end_lineno", None) or stmt.lineno)
                        for stmt in node.body
                    )
                    return first, last
    end = getattr(func_node, "end_lineno", None) or call.lineno
    return call.lineno, end
