"""Findings-as-data for the static analysis subsystem.

Every check in :mod:`repro.analysis` reports :class:`Finding` records
with a *stable* rule identifier (``SIA001`` ...).  The identifiers are
part of the tool's public contract: CI annotations, pragma suppressions
and the fixture tests all key on them, so they must never be renumbered
-- retire an identifier rather than reuse it.

The catalog is split in three bands:

* ``SIA0xx`` -- codebase lint rules (AST-level, :mod:`repro.analysis.lint`),
* ``SIA1xx`` -- structural invariants of live IR trees
  (:mod:`repro.analysis.invariants`),
* ``SIA2xx`` -- semantic soundness obligations discharged through the
  SMT solver (:mod:`repro.analysis.soundness`),
* ``SIA3xx`` -- solver-run audits: defects found while independently
  checking proof logs (:mod:`repro.analysis.certify`),
* ``SIA4xx`` -- interprocedural dataflow findings
  (:mod:`repro.analysis.flow`): facts that require following paths
  through the CFG and calls across modules,
* ``SIA5xx`` -- concurrency-safety findings
  (:mod:`repro.analysis.concurrency`): shared-state escape, fork
  inheritance, lock discipline and the snapshot/delta protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RuleInfo:
    """Catalog entry for one analysis rule."""

    rule_id: str
    title: str
    hint: str


# The rule catalog.  Keep in sync with docs/INTERNALS.md.
RULE_CATALOG: dict[str, RuleInfo] = {
    info.rule_id: info
    for info in (
        RuleInfo(
            "SIA001",
            "float literal in exact-arithmetic zone",
            "use int or fractions.Fraction; floats break solver soundness",
        ),
        RuleInfo(
            "SIA002",
            "float() cast at an unsanctioned boundary",
            "keep values exact, or mark a documented crossing with "
            "'# sia: allow-float'",
        ),
        RuleInfo(
            "SIA003",
            "==/!= comparison on a float operand",
            "exact equality on floats is meaningless; compare Fractions "
            "or use an explicit tolerance outside the exact zone",
        ),
        RuleInfo(
            "SIA004",
            "eval()/exec() call",
            "construct values explicitly; dynamic evaluation is banned "
            "project-wide",
        ),
        RuleInfo(
            "SIA005",
            "bare except clause",
            "catch the specific exception types; bare excepts swallow "
            "solver budget and type errors",
        ),
        RuleInfo(
            "SIA006",
            "mutation of a frozen node outside construction",
            "object.__setattr__ is only sanctioned in __init__/"
            "__post_init__/__new__/__setattr__; anything else breaks the "
            "value semantics of interned nodes",
        ),
        RuleInfo(
            "SIA007",
            "hot-path node class without __slots__ or frozen=True",
            "subclasses of Formula/Pred/Expr must declare __slots__ or be "
            "frozen dataclasses so instances stay compact and immutable",
        ),
        RuleInfo(
            "SIA008",
            "solver model read without a SAT verdict check",
            "guard every model() read with a check that check()/solve() "
            "returned SAT; an unchecked read raises or returns stale "
            "values on UNSAT paths",
        ),
        RuleInfo(
            "SIA009",
            "direct Solver construction in the warm-session zone",
            "route checks through SmtSession so CEGIS iterations share "
            "one solver process; documented exceptions carry "
            "'# sia: allow(SIA009)'",
        ),
        RuleInfo(
            "SIA010",
            "raw wall-clock read outside repro.obs.clock",
            "use repro.obs.now()/Timer so tests can install ManualClock; "
            "this covers time.*, aliased 'from time import ...' names "
            "and datetime.now()/today()/utcnow()",
        ),
        RuleInfo(
            "SIA101",
            "arity violation in IR tree",
            "n-ary nodes need >= 2 arguments and valid operators; build "
            "nodes through the smart constructors (conj/disj/pand/por)",
        ),
        RuleInfo(
            "SIA102",
            "sort/type inconsistency in IR tree",
            "coefficients must be exact Fractions and operand types must "
            "satisfy the SQL typing rules of section 4.1",
        ),
        RuleInfo(
            "SIA103",
            "shared mutable state between IR nodes",
            "two nodes alias the same mutable container; copy on "
            "construction so structural equality stays local",
        ),
        RuleInfo(
            "SIA104",
            "cycle in IR tree",
            "a node is its own ancestor; traversals will not terminate -- "
            "never splice nodes with object.__setattr__",
        ),
        RuleInfo(
            "SIA201",
            "rewrite rule is not null-sound (lhs does not imply rhs)",
            "T(lhs) & ~T(rhs) is satisfiable under three-valued logic; "
            "the rule would change query results on NULL-able columns",
        ),
        RuleInfo(
            "SIA202",
            "rewrite rule claims an equivalence its reverse direction lacks",
            "T(rhs) & ~T(lhs) is satisfiable; register the rule with "
            "equivalence=False if only lhs => rhs is intended",
        ),
        RuleInfo(
            "SIA301",
            "broken clause step in a proof log",
            "the step is not RUP over the preceding steps (or the UNSAT "
            "log lacks a refutation step); the solver derived a clause "
            "its own log cannot justify",
        ),
        RuleInfo(
            "SIA302",
            "bad theory certificate in a proof log",
            "the Farkas/divisibility/split/trichotomy certificate does "
            "not refute what its literals assert; the theory lemma may "
            "be unsound",
        ),
        RuleInfo(
            "SIA303",
            "uncertified step under an UNSAT verdict",
            "a theory lemma carries no certificate or the verdict rests "
            "on a budget-blocking clause; the UNSAT answer is not "
            "certifiable",
        ),
        RuleInfo(
            "SIA401",
            "float-tainted value reaches an exact-zone call",
            "a float produced in general code flows through assignments "
            "and calls into a repro.smt/repro.predicates function; "
            "convert to Fraction at the source or sanction a documented "
            "boundary with '# sia: allow-float'",
        ),
        RuleInfo(
            "SIA402",
            "nondeterminism flows into persisted output or merge order",
            "seed the RNG on every path (or use random.Random(seed)), "
            "sort set iterations, and never use id() in keys that reach "
            "perflog rows, traces or merge order",
        ),
        RuleInfo(
            "SIA403",
            "resource may not be released on every path",
            "an SmtSession scope, tracer or file handle leaks on some "
            "normal or exceptional path; use 'try/finally: retract()/"
            "close()' or a with-block",
        ),
        RuleInfo(
            "SIA501",
            "unsynchronized shared-state write on a worker-reachable path",
            "a function reachable from a pool/thread entry point writes "
            "module-level mutable state; guard it with a lock, make the "
            "registry delta-capable (snapshot/delta_since), or keep the "
            "state worker-local",
        ),
        RuleInfo(
            "SIA502",
            "fork-inheritance or pickling hazard at a pool boundary",
            "pass an explicit mp_context (spawn) to ProcessPoolExecutor, "
            "never mutate shared registries while a pool is live, and "
            "dispatch only top-level functions with picklable payloads",
        ),
        RuleInfo(
            "SIA503",
            "read-modify-write on a shared registry outside a lock",
            "wrap the get-or-create / += in 'with <module lock>:'; the "
            "unlocked fast-path read may stay outside (double-checked "
            "locking), only the store needs the lock",
        ),
        RuleInfo(
            "SIA504",
            "cross-process registry access bypasses the snapshot/delta "
            "protocol",
            "aggregation code must use snapshot()/delta_since()/"
            "merge_delta(); raw field reads mix parent-local warmth into "
            "worker totals",
        ),
    )
}


@dataclass(frozen=True, order=True)
class Finding:
    """One reported violation, sortable into a stable order."""

    file: str
    line: int
    col: int
    rule: str
    message: str
    pass_name: str = field(default="lint", compare=False)

    @property
    def hint(self) -> str:
        info = RULE_CATALOG.get(self.rule)
        return info.hint if info is not None else ""

    def render(self, *, fix_hints: bool = False) -> str:
        location = f"{self.file}:{self.line}:{self.col}"
        text = f"{location}: {self.rule} {self.message}"
        if fix_hints and self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "title": RULE_CATALOG[self.rule].title
            if self.rule in RULE_CATALOG
            else "",
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "pass": self.pass_name,
        }
