"""Independent auditor for solver proof logs (SIA301-SIA303).

The DPLL(T) solver can be asked (``Solver(proof=True)``) to log every
clause it adds -- Tseitin axioms, CDCL-learned clauses, theory lemmas
with their certificates -- plus the final empty clause.  This module
re-checks that log without trusting the solver:

* **RUP replay** (learned and empty steps): asserting the negation of
  every literal of the step (plus the step's assumptions, for the
  final empty clause) and unit-propagating over *all* earlier clauses
  must produce a conflict.  The solver's recorded antecedents are
  ignored -- full-database propagation is at least as strong as
  whatever resolution sequence produced the clause, so nothing the
  solver says needs to be believed.
* **Certificate checking** (theory steps): a Farkas combination must
  be a correctly signed rational combination of the constraints its
  literals assert, cancelling every variable and leaving a positive
  constant (or zero with a strict inequality in play); integer
  tightenings are recomputed from scratch; branch-and-bound split
  certificates are checked recursively; divisibility and trichotomy
  certificates are checked structurally.
* **Gap detection**: an UNSAT verdict that rests on an uncertified
  theory step or on a budget-blocking clause (added when branch and
  bound gave up) is not certifiable.

Deliberate independence: this module imports **only** the value types
of :mod:`repro.smt.terms` and the findings machinery -- never the
solver, the simplex, or the proof module itself (proof logs are
consumed structurally).  A soundness bug in solver code therefore
cannot hide itself from the audit.

Findings:

* ``SIA301`` -- broken clause step (RUP replay failed, or an UNSAT
  verdict with no refutation step).
* ``SIA302`` -- bad certificate (wrong constraints, bad signs, no
  contradiction, broken tightening or split structure).
* ``SIA303`` -- missing certificate (uncertified theory step or
  budget-blocking clause under an UNSAT verdict).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, Iterable, Optional

from ..smt.terms import LinExpr, Var
from .findings import Finding

# Operator spellings, duplicated from repro.smt.formula on purpose:
# importing the formula module would pull in solver-adjacent code.
LE = "<="
LT = "<"
EQ = "="
NE = "!="
BOOL = "bool"

_CLAUSE_KINDS = {
    "input",
    "learned",
    "theory",
    "trichotomy",
    "budget-block",
    "empty",
}


def audit_proof(log: Any, *, origin: str = "proof") -> list[Finding]:
    """Audit a proof log; returns all findings (empty when certified).

    ``log`` is consumed structurally (``steps``, ``atoms``,
    ``result``), so any object shaped like
    :class:`repro.smt.proof.ProofLog` works.
    """
    return _Audit(log, origin).run()


class _Audit:
    def __init__(self, log: Any, origin: str) -> None:
        self.log = log
        self.origin = origin
        self.atoms: dict[int, tuple[Optional[LinExpr], str]] = dict(log.atoms)
        self.findings: list[Finding] = []
        self.unsat = log.result == "unsat"

    # ------------------------------------------------------------------
    def run(self) -> list[Finding]:
        db: list[tuple[int, ...]] = []
        refuted = False
        for step in self.log.steps:
            kind = step.kind
            if kind not in _CLAUSE_KINDS:
                self._report(
                    step.index, "SIA301", f"unknown step kind {kind!r}"
                )
            elif kind in ("learned", "empty"):
                assumptions = getattr(step, "assumptions", ())
                if not self._rup(step.lits, assumptions, db):
                    self._report(
                        step.index,
                        "SIA301",
                        f"{kind} clause {list(step.lits)} is not RUP over "
                        "the preceding steps",
                    )
            elif kind in ("theory", "trichotomy"):
                if step.cert is None:
                    if self.unsat:
                        self._report(
                            step.index,
                            "SIA303",
                            f"theory step {list(step.lits)} carries no "
                            "certificate",
                        )
                else:
                    ok, message = self._check_step_cert(step)
                    if not ok:
                        self._report(step.index, "SIA302", message or "")
            elif kind == "budget-block" and self.unsat:
                self._report(
                    step.index,
                    "SIA303",
                    "UNSAT verdict rests on a budget-blocking clause "
                    "(branch and bound gave up on this assignment)",
                )
            if not step.lits:
                refuted = True
            db.append(tuple(step.lits))
        if self.unsat and not refuted:
            self._report(
                len(self.log.steps),
                "SIA301",
                "result is UNSAT but the log contains no refutation step",
            )
        self.findings.sort()
        return self.findings

    def _report(self, step_index: int, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                file=self.origin,
                line=step_index,
                col=0,
                rule=rule,
                message=message,
                pass_name="certify",
            )
        )

    # ------------------------------------------------------------------
    # RUP replay
    # ------------------------------------------------------------------
    def _rup(
        self,
        lits: Iterable[int],
        assumptions: Iterable[int],
        db: list[tuple[int, ...]],
    ) -> bool:
        assign: set[int] = set()

        def assert_lit(lit: int) -> bool:
            """Returns True when asserting ``lit`` conflicts."""
            if -lit in assign:
                return True
            assign.add(lit)
            return False

        for lit in lits:
            if assert_lit(-lit):
                return True
        for lit in assumptions:
            if assert_lit(lit):
                return True
        changed = True
        while changed:
            changed = False
            for clause in db:
                unassigned: set[int] = set()
                satisfied = False
                for lit in clause:
                    if lit in assign:
                        satisfied = True
                        break
                    if -lit not in assign:
                        unassigned.add(lit)
                if satisfied:
                    continue
                if not unassigned:
                    return True  # conflict reached: the step is RUP
                if len(unassigned) == 1:
                    assign.add(unassigned.pop())
                    changed = True
        return False

    # ------------------------------------------------------------------
    # Certificates
    # ------------------------------------------------------------------
    def _check_step_cert(self, step: Any) -> tuple[bool, Optional[str]]:
        cert = step.cert
        kind = getattr(cert, "kind", None)
        if kind == "trichotomy":
            return self._check_trichotomy(step, cert)
        if kind == "split":
            ok, message, lits = self._check_split(cert, {})
        elif kind == "farkas":
            ok, message, lits = self._check_farkas(cert, {})
        elif kind == "intdiv":
            ok, message, lits = self._check_intdiv(cert)
        else:
            return False, f"unknown certificate kind {kind!r}"
        if not ok:
            return False, message
        # Clause soundness: the certificate refutes the conjunction of
        # the constraints its literals assert, so the clause is valid
        # iff it contains the negation of every certificate literal
        # (supersets only weaken the clause).
        clause = set(step.lits)
        missing = [lit for lit in lits if -lit not in clause]
        if missing:
            return False, (
                f"certificate refutes literals {sorted(lits)} but the "
                f"clause {sorted(clause)} misses the negation of "
                f"{sorted(missing)}"
            )
        return True, None

    def _constraint_of(self, lit: int) -> Optional[tuple[LinExpr, str]]:
        """Linear constraint ``expr op 0`` asserted by a SAT literal."""
        entry = self.atoms.get(abs(lit))
        if entry is None:
            return None
        expr, op = entry
        if expr is None or op == BOOL:
            return None
        if lit > 0:
            return expr, op
        # Mirrors Atom.negated(): the negation of `e <= 0` is
        # `-e < 0`, of `e < 0` is `-e <= 0`; a negated equality is a
        # disequality, which is not a linear constraint.
        if op == LE:
            return -expr, LT
        if op == LT:
            return -expr, LE
        return None

    @staticmethod
    def _tighten(expr: LinExpr, op: str) -> tuple[LinExpr, str] | bool | None:
        """Independent re-derivation of integer tightening.

        Mirrors the *specification* (normalise to integer coefficients,
        divide by the content, round the bound) without importing the
        solver's implementation.
        """
        if expr.is_constant:
            return _const_holds(expr.const, op)
        if not all(var.is_int for var in expr.coeffs):
            return expr, op
        scaled = expr.scaled_integral()
        content = scaled.content()
        if content == 0:
            return _const_holds(scaled.const, op)
        homogeneous = LinExpr(scaled.coeffs)
        bound = -scaled.const
        if op == EQ:
            if bound % content != 0:
                return False
            return homogeneous / content - bound / content, EQ
        if op == LT:
            tight = Fraction(math.ceil(bound) - 1)
        elif op == LE:
            tight = Fraction(math.floor(bound))
        else:
            return None
        tight = Fraction(math.floor(tight / content))
        return homogeneous / content - tight, LE

    def _valid_use(self, entry: Any) -> bool:
        """Whether ``used`` is ``orig`` or its integer tightening."""
        if (
            entry.used_expr == entry.orig_expr
            and entry.used_op == entry.orig_op
        ):
            return True
        tight = self._tighten(entry.orig_expr, entry.orig_op)
        return isinstance(tight, tuple) and tight == (
            entry.used_expr,
            entry.used_op,
        )

    def _check_farkas(
        self,
        cert: Any,
        env: dict[int, tuple[LinExpr, str]],
    ) -> tuple[bool, Optional[str], set[int]]:
        lits: set[int] = set()
        if not cert.entries:
            return False, "empty Farkas combination", lits
        total = LinExpr({})
        strict = False
        for entry in cert.entries:
            coeff = entry.coeff
            if not isinstance(coeff, Fraction):
                return False, f"non-exact coefficient {coeff!r}", lits
            if entry.branch is not None:
                expected = env.get(entry.branch)
                if expected is None:
                    return (
                        False,
                        f"branch reference {entry.branch} is not in scope",
                        lits,
                    )
            elif entry.lit is not None:
                expected = self._constraint_of(entry.lit)
                if expected is None:
                    return (
                        False,
                        f"literal {entry.lit} asserts no linear constraint",
                        lits,
                    )
                lits.add(entry.lit)
            else:
                return (
                    False,
                    "entry references neither a literal nor a branch",
                    lits,
                )
            if (entry.orig_expr, entry.orig_op) != expected:
                return (
                    False,
                    f"entry constraint {entry.orig_expr!r} {entry.orig_op} 0 "
                    "does not match what its literal asserts",
                    lits,
                )
            if not self._valid_use(entry):
                return (
                    False,
                    "used constraint is neither the original nor its "
                    "integer tightening",
                    lits,
                )
            if entry.used_op not in (LE, LT, EQ):
                return (
                    False,
                    f"operator {entry.used_op!r} cannot enter a Farkas "
                    "combination",
                    lits,
                )
            if coeff < 0 and entry.used_op != EQ:
                return (
                    False,
                    f"negative coefficient {coeff} on an inequality",
                    lits,
                )
            total = total + entry.used_expr * coeff
            if entry.used_op == LT and coeff > 0:
                strict = True
        if total.coeffs:
            leftover = ", ".join(sorted(v.name for v in total.coeffs))
            return (
                False,
                f"combination does not cancel variables: {leftover}",
                lits,
            )
        if total.const > 0 or (total.const == 0 and strict):
            return True, None, lits
        return (
            False,
            f"combination sums to {total.const} <= 0; no contradiction",
            lits,
        )

    def _check_intdiv(
        self, cert: Any
    ) -> tuple[bool, Optional[str], set[int]]:
        lits: set[int] = set()
        if not cert.lit:
            return False, "divisibility certificate names no literal", lits
        expected = self._constraint_of(cert.lit)
        lits.add(cert.lit)
        if expected != (cert.expr, EQ):
            return (
                False,
                f"literal {cert.lit} does not assert {cert.expr!r} = 0",
                lits,
            )
        if not cert.expr.coeffs or not all(
            var.is_int for var in cert.expr.coeffs
        ):
            return (
                False,
                "divisibility argument needs integer variables only",
                lits,
            )
        scaled = cert.expr.scaled_integral()
        content = scaled.content()
        if content == 0 or (-scaled.const) % content == 0:
            return (
                False,
                f"content {content} divides the constant; no refutation",
                lits,
            )
        return True, None, lits

    def _check_split(
        self,
        cert: Any,
        env: dict[int, tuple[LinExpr, str]],
    ) -> tuple[bool, Optional[str], set[int]]:
        var = cert.var
        if not isinstance(var, Var) or not var.is_int:
            return False, f"split on non-integer variable {var!r}", set()
        floor_v = cert.floor
        if isinstance(floor_v, Fraction):
            if floor_v.denominator != 1:
                return False, f"split at non-integer {floor_v}", set()
            floor_v = int(floor_v)
        if not isinstance(floor_v, int) or isinstance(floor_v, bool):
            return False, f"split at non-integer {cert.floor!r}", set()
        if cert.le_ref == cert.ge_ref or cert.le_ref in env or cert.ge_ref in env:
            return False, "split branch references collide", set()
        # x <= floor on the low branch, x >= floor + 1 on the high one:
        # every integer point satisfies one of the two, so refuting both
        # branches refutes the unsplit constraint set.
        le_bound = (LinExpr.var(var) - floor_v, LE)
        ge_bound = ((floor_v + 1) - LinExpr.var(var), LE)
        ok, message, lits = self._check_cert(
            cert.le_cert, {**env, cert.le_ref: le_bound}
        )
        if not ok:
            return False, f"low branch: {message}", lits
        ok, message, ge_lits = self._check_cert(
            cert.ge_cert, {**env, cert.ge_ref: ge_bound}
        )
        if not ok:
            return False, f"high branch: {message}", lits | ge_lits
        return True, None, lits | ge_lits

    def _check_cert(
        self,
        cert: Any,
        env: dict[int, tuple[LinExpr, str]],
    ) -> tuple[bool, Optional[str], set[int]]:
        kind = getattr(cert, "kind", None)
        if kind == "farkas":
            return self._check_farkas(cert, env)
        if kind == "intdiv":
            return self._check_intdiv(cert)
        if kind == "split":
            return self._check_split(cert, env)
        return False, f"unknown certificate kind {kind!r}", set()

    def _check_trichotomy(
        self, step: Any, cert: Any
    ) -> tuple[bool, Optional[str]]:
        lits = tuple(step.lits)
        if len(lits) != 3 or any(lit <= 0 for lit in lits):
            return (
                False,
                "trichotomy clause must hold exactly three positive literals",
            )
        actual: set[tuple[LinExpr, str]] = set()
        for lit in lits:
            constraint = self._constraint_of(lit)
            if constraint is None:
                return False, f"literal {lit} asserts no linear constraint"
            actual.add(constraint)
        expr = cert.expr
        expected = {(expr, EQ), (expr, LT), (-expr, LT)}
        if actual != expected:
            return (
                False,
                f"literals do not spell e = 0 | e < 0 | -e < 0 for "
                f"e = {expr!r}",
            )
        return True, None


def _const_holds(value: Fraction, op: str) -> bool:
    if op == LE:
        return value <= 0
    if op == LT:
        return value < 0
    if op == EQ:
        return value == 0
    if op == NE:
        return value != 0
    raise ValueError(f"unknown operator {op!r}")
