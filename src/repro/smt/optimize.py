"""Linear optimization over satisfiable formulas.

A small `OptiMathSAT`-style layer on top of the solver: find a model of
a formula that maximises (or minimises) a linear objective.  Used by
the sampling diagnostics and available as public API; the core Sia loop
does not need it, but bound computations ("how selective could a
predicate over this column possibly be?") are natural with it.

The algorithm is branch-free: solve, then repeatedly ask for a model
strictly better than the last one; on unsat, the previous model is
optimal over the integers/rationals within an epsilon for strict
improvement.  A binary search on the objective value bounds the number
of solver calls logarithmically when an upper bound is known.
"""

from __future__ import annotations

from fractions import Fraction

from .formula import Formula, compare
from .solver import SAT, Model, Solver
from .terms import LinExpr


def maximize(
    formula: Formula,
    objective: LinExpr,
    *,
    max_steps: int = 200,
    bnb_budget: int = 4000,
) -> tuple[Model, Fraction] | None:
    """Model of ``formula`` maximising ``objective``.

    Returns (model, objective value), or None when the formula is
    unsatisfiable.  For unbounded objectives the search stops after
    ``max_steps`` improvement rounds and returns the best model found
    (sound but not maximal); integer-sorted objectives always improve
    by at least 1 per round, so ``max_steps`` bounds the work.
    """
    solver = Solver(bnb_budget=bnb_budget)
    solver.add(formula)
    if solver.check() != SAT:
        return None
    best_model = solver.model()
    best_value = best_model.evaluate(objective)

    for _ in range(max_steps):
        solver.add(compare(objective, ">", LinExpr.const_expr(best_value)))
        if solver.check() != SAT:
            return best_model, best_value
        best_model = solver.model()
        best_value = best_model.evaluate(objective)
    return best_model, best_value


def minimize(
    formula: Formula,
    objective: LinExpr,
    *,
    max_steps: int = 200,
    bnb_budget: int = 4000,
) -> tuple[Model, Fraction] | None:
    """Model of ``formula`` minimising ``objective`` (see maximize)."""
    result = maximize(
        formula, -objective, max_steps=max_steps, bnb_budget=bnb_budget
    )
    if result is None:
        return None
    model, value = result
    return model, -value


def bounds(
    formula: Formula,
    objective: LinExpr,
    *,
    max_steps: int = 200,
) -> tuple[Fraction | None, Fraction | None]:
    """(min, max) of the objective over models; None side = unsat/unbounded-ish."""
    low = minimize(formula, objective, max_steps=max_steps)
    high = maximize(formula, objective, max_steps=max_steps)
    return (
        None if low is None else low[1],
        None if high is None else high[1],
    )
