"""Proof objects for certified UNSAT verdicts.

This module holds *data only*: the clause-step log the CDCL core
appends to (DRAT/RUP style) and the theory-lemma certificates the
simplex and branch-and-bound layers attach to their conflicts.  It
deliberately imports nothing from the solver machinery -- only the
:mod:`repro.smt.terms` value types -- so that the independent
certificate auditor (:mod:`repro.analysis.certify`) can consume proof
logs without ever trusting solver code.

Proof format
------------

A :class:`ProofLog` is an ordered list of :class:`ClauseStep` records
plus an atom table mapping SAT variables to the linear constraint they
encode.  Step kinds:

* ``input`` -- a clause of the Tseitin encoding (axiom of the encoded
  formula; trusted by construction).
* ``learned`` -- a CDCL-learned clause.  Checkable by RUP: asserting
  the negation of every literal and unit-propagating over all earlier
  steps must yield a conflict.
* ``theory`` -- a theory lemma (blocking clause or bound lemma).
  Carries a certificate: a :class:`FarkasCert` leaf, an
  :class:`IntDivCert` divisibility refutation, or a :class:`SplitCert`
  branch composition.
* ``trichotomy`` -- the disequality-split lemma
  ``e = 0 \\/ e < 0 \\/ -e < 0``; checkable structurally against the
  atom table.
* ``budget-block`` -- an *unjustified* search note added when branch
  and bound exhausted its budget.  An UNSAT verdict that coexists with
  such a step is not certifiable (the auditor reports SIA303).
* ``empty`` -- the final (assumption-relative) empty clause; checkable
  by RUP like a learned step.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Union

from .terms import LinExpr, Var

# Marker used in the atom table for propositional (BVar) variables.
BOOL = "bool"


# ----------------------------------------------------------------------
# Theory certificates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FarkasEntry:
    """One constraint of a Farkas combination.

    ``lit`` is the SAT literal whose truth asserts the constraint
    (positive literal: the atom itself; negative literal: its exact
    negation); ``branch`` replaces ``lit`` for branch-and-bound bounds,
    referencing the enclosing :class:`SplitCert`.  ``orig`` is the
    constraint the literal asserts, ``used`` the integer-tightened form
    the simplex actually reasoned over (equal to ``orig`` for real or
    untightened atoms).
    """

    coeff: Fraction
    lit: Optional[int]
    orig_expr: LinExpr
    orig_op: str
    used_expr: LinExpr
    used_op: str
    branch: Optional[int] = None


@dataclass(frozen=True)
class FarkasCert:
    """Non-negative rational combination deriving a contradiction.

    Summing ``coeff * used_expr`` over the entries must cancel every
    variable and leave a constant ``d`` with ``d > 0``, or ``d == 0``
    when some strict (``<``) entry has a positive coefficient --
    refuting the conjunction ``used_expr op 0`` of the entries.
    """

    entries: tuple[FarkasEntry, ...]

    kind = "farkas"


@dataclass(frozen=True)
class IntDivCert:
    """Integer divisibility refutation of a single equality.

    The atom ``expr = 0`` ranges over integer variables only and, after
    scaling to integer coefficients, the gcd of the variable
    coefficients does not divide the constant -- so no integer point
    satisfies it.
    """

    lit: int
    expr: LinExpr

    kind = "intdiv"


@dataclass(frozen=True)
class SplitCert:
    """Branch-and-bound composition of two certificates.

    ``var`` is integer-sorted and ``floor`` an integer; ``le_cert``
    refutes the constraints plus ``var <= floor`` and ``ge_cert``
    refutes them plus ``var >= floor + 1``.  Entries inside the
    sub-certificates reference the two branch bounds through the
    ``le_ref`` / ``ge_ref`` identifiers instead of SAT literals.
    """

    var: Var
    floor: int
    le_ref: int
    ge_ref: int
    le_cert: "TheoryCert"
    ge_cert: "TheoryCert"

    kind = "split"


@dataclass(frozen=True)
class TrichotomyCert:
    """Certificate for the eq-split clause ``e = 0 | e < 0 | -e < 0``.

    The clause is a tautology of linear order; the auditor verifies the
    three (all-positive) literals map to exactly those three atoms.
    """

    expr: LinExpr

    kind = "trichotomy"


TheoryCert = Union[FarkasCert, IntDivCert, SplitCert, TrichotomyCert]


# ----------------------------------------------------------------------
# Clause steps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClauseStep:
    """One appended clause (or the final empty clause) of a proof."""

    index: int
    lits: tuple[int, ...]
    kind: str
    antecedents: tuple[int, ...] = ()
    cert: Optional[TheoryCert] = None
    assumptions: tuple[int, ...] = ()


class ProofLog:
    """Append-only proof log shared by the SAT core and the driver.

    The DPLL(T) driver registers the theory justification of a clause
    *before* handing the clause to the SAT core (:meth:`expect`); when
    the core logs the clause the pending certificate is attached.
    Clauses with no pending justification are ``input`` axioms of the
    Tseitin encoding.
    """

    def __init__(self) -> None:
        self.steps: list[ClauseStep] = []
        # SAT variable -> (expr, op) for theory atoms, (None, BOOL) for
        # propositional variables.
        self.atoms: dict[int, tuple[Optional[LinExpr], str]] = {}
        self.result: Optional[str] = None
        self._pending: dict[frozenset[int], list[tuple[str, Optional[TheoryCert]]]] = {}

    # ------------------------------------------------------------------
    def register_atom(self, sat_var: int, expr: Optional[LinExpr], op: str) -> None:
        self.atoms[sat_var] = (expr, op)

    def expect(
        self, lits: list[int], kind: str, cert: Optional[TheoryCert]
    ) -> None:
        """Pre-register the justification of the next matching clause."""
        self._pending.setdefault(frozenset(lits), []).append((kind, cert))

    # ------------------------------------------------------------------
    def log_clause(
        self,
        lits: list[int] | tuple[int, ...],
        *,
        kind: Optional[str] = None,
        antecedents: tuple[int, ...] = (),
    ) -> int:
        """Append a clause step; resolves pending justifications."""
        cert: Optional[TheoryCert] = None
        if kind is None:
            pending = self._pending.get(frozenset(lits))
            if pending:
                kind, cert = pending.pop(0)
            else:
                kind = "input"
        index = len(self.steps)
        self.steps.append(
            ClauseStep(
                index=index,
                lits=tuple(lits),
                kind=kind,
                antecedents=antecedents,
                cert=cert,
            )
        )
        return index

    def log_empty(self, *, assumptions: tuple[int, ...] = ()) -> int:
        """Append the final (assumption-relative) empty clause."""
        index = len(self.steps)
        self.steps.append(
            ClauseStep(
                index=index, lits=(), kind="empty", assumptions=assumptions
            )
        )
        return index

    # ------------------------------------------------------------------
    @property
    def has_refutation(self) -> bool:
        """Whether the log contains a step claiming the empty clause."""
        return any(not step.lits for step in self.steps)

    def theory_steps(self) -> list[ClauseStep]:
        return [s for s in self.steps if s.kind in ("theory", "trichotomy")]

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds: dict[str, int] = {}
        for step in self.steps:
            kinds[step.kind] = kinds.get(step.kind, 0) + 1
        return f"ProofLog({len(self.steps)} steps, {kinds}, result={self.result!r})"
