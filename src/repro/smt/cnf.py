"""Tseitin conversion of NNF formulas to CNF clauses.

The DPLL(T) driver (:mod:`repro.smt.solver`) works on a propositional
skeleton: every arithmetic :class:`~repro.smt.formula.Atom` and every
:class:`~repro.smt.formula.BVar` is mapped to a positive SAT variable,
and internal ``And``/``Or`` nodes receive fresh definition variables.

Literals use the classic DIMACS convention: the positive literal of SAT
variable ``v`` is ``v`` and its negation is ``-v``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .formula import FALSE, TRUE, And, Atom, BVar, Formula, Not, Or


@dataclass
class CnfResult:
    """Output of the Tseitin encoding.

    Attributes:
        clauses: CNF clauses over SAT variables ``1..num_vars``.
        num_vars: number of SAT variables allocated.
        atom_of_var: maps a SAT variable to its Atom/BVar, when the
            variable encodes a theory atom or named boolean (definition
            variables of internal nodes are absent).
        var_of_atom: inverse map.
        trivially_false: the input was constant FALSE.
    """

    clauses: list[list[int]] = field(default_factory=list)
    num_vars: int = 0
    atom_of_var: dict[int, Atom | BVar] = field(default_factory=dict)
    var_of_atom: dict[Atom | BVar, int] = field(default_factory=dict)
    trivially_false: bool = False


class CnfBuilder:
    """Incremental Tseitin encoder.

    Multiple formulas can be asserted against a shared atom map, which
    is what the lazy SMT loop needs to add blocking clauses that talk
    about the same atoms as the original assertion.
    """

    def __init__(self) -> None:
        self.result = CnfResult()
        # Memoized definition literals for internal And/Or nodes, keyed
        # on interned node identity.  Sound because _encode emits the
        # *full* Tseitin equivalence (def <-> node), so the literal can
        # stand for the node in any later assertion against this
        # builder.  Turns re-encoding of shared sub-formulas (the warm
        # session asserts many formulas sharing structure) into a
        # dictionary hit.
        self._def_cache: dict[Formula, int] = {}

    # ------------------------------------------------------------------
    def fresh_var(self) -> int:
        self.result.num_vars += 1
        return self.result.num_vars

    def var_for(self, leaf: Atom | BVar) -> int:
        """SAT variable encoding an atom or named boolean, interned."""
        var = self.result.var_of_atom.get(leaf)
        if var is None:
            var = self.fresh_var()
            self.result.var_of_atom[leaf] = var
            self.result.atom_of_var[var] = leaf
        return var

    def add_clause(self, lits: list[int]) -> None:
        self.result.clauses.append(lits)

    def evict_def(self, node: Formula) -> int | None:
        """Forget the memoized definition variable of ``node``.

        Called when no live assertion references ``node`` any more, so
        the SAT core can garbage-collect the definition clauses.  A
        later re-assertion of the same node re-encodes it with a fresh
        variable (variable numbering is append-only).
        """
        return self._def_cache.pop(node, None)

    # ------------------------------------------------------------------
    def assert_formula(self, formula: Formula) -> None:
        """Assert that ``formula`` (any shape; it is NNF-ed here) holds."""
        from .formula import to_nnf

        nnf = to_nnf(formula)
        if nnf is TRUE:
            return
        if nnf is FALSE:
            self.result.trivially_false = True
            self.add_clause([])
            return
        root = self._encode(nnf)
        self.add_clause([root])

    def _encode(self, formula: Formula) -> int:
        """Encode an NNF node, returning the literal that represents it."""
        if isinstance(formula, Atom):
            # Canonicalise complementary atoms onto one SAT variable:
            # `e <= 0` and `-e < 0` are each other's negations.
            neg = formula.negated()
            if neg in self.result.var_of_atom:
                return -self.result.var_of_atom[neg]
            return self.var_for(formula)
        if isinstance(formula, BVar):
            return self.var_for(formula)
        if isinstance(formula, Not):
            # NNF guarantees the argument is a leaf.
            return -self._encode(formula.arg)
        if isinstance(formula, And):
            cached = self._def_cache.get(formula)
            if cached is not None:
                return cached
            lits = [self._encode(arg) for arg in formula.args]
            out = self.fresh_var()
            for lit in lits:
                self.add_clause([-out, lit])
            self.add_clause([out] + [-lit for lit in lits])
            self._def_cache[formula] = out
            return out
        if isinstance(formula, Or):
            cached = self._def_cache.get(formula)
            if cached is not None:
                return cached
            lits = [self._encode(arg) for arg in formula.args]
            out = self.fresh_var()
            self.add_clause([-out] + lits)
            for lit in lits:
                self.add_clause([out, -lit])
            self._def_cache[formula] = out
            return out
        raise TypeError(f"cannot encode formula node {type(formula).__name__}")


def encode(formula: Formula) -> CnfResult:
    """One-shot encoding of a single formula."""
    builder = CnfBuilder()
    builder.assert_formula(formula)
    return builder.result
