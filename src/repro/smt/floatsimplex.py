"""Float-arithmetic simplex: the fast, unsound first tier.

This is the same Dutertre--de Moura tableau as :mod:`repro.smt.simplex`
-- identical pivoting structure, Bland's rule, delta-rationals for
strict bounds -- but every cell is a machine ``float`` and every bound
test is epsilon-guarded.  Its verdicts are **advisory only**: the
two-tier orchestrator (:mod:`repro.smt.backend`) re-confirms every
float verdict in exact Fraction arithmetic before anything downstream
sees it, so this module may be aggressively fast and occasionally
wrong without ever compromising soundness.  No value produced here
reaches :mod:`repro.smt.proof` or :mod:`repro.analysis.certify`.

Epsilon policy (see docs/INTERNALS.md, "Two-tier numeric core"):

* Bound comparisons are *lenient*: a value within ``eps`` of a bound
  counts as satisfying it, so rounding noise biases the float tier
  toward SAT -- the cheap-to-confirm direction (a candidate model
  check is linear; refuting a bogus conflict costs a full exact solve).
* ``eps`` is absolute plus relative (``ABS_EPS + REL_EPS * |value|``)
  so the guard survives the huge-coefficient tableaux the CEGIS
  workload produces.
* Pivot elements smaller than ``PIVOT_EPS`` in magnitude are treated
  as zero: dividing by them would amplify rounding error past any
  useful epsilon.
* Non-finite cells (overflow to ``inf``/``nan``) and pivot-count
  blowups abandon the tier entirely (:class:`FloatTierGiveUp`) rather
  than risk a non-terminating loop -- Bland's rule only guarantees
  termination under *exact* comparisons.

Each asserted bound keeps its exact :class:`~repro.smt.simplex
.DeltaRational` value alongside the float image, so the orchestrator
can snap a float model back onto exact bound values when confirming a
SAT candidate.
"""
# sia: allow-float -- this entire module is the sanctioned float tier:
# machine-float tableau cells and epsilon guards are its whole point.
# The lint layer carves it out of the exact zone (FLOAT_TIER_ZONE in
# repro.analysis.lint); float escape into proof/certify is still SIA401.

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Mapping

from .formula import EQ, LT, Atom
from .simplex import DeltaRational, _describe_atom
from .stats import GLOBAL_COUNTERS
from .terms import LinExpr, Var

Tag = Hashable

__all__ = [
    "ABS_EPS",
    "REL_EPS",
    "PIVOT_EPS",
    "FloatConflict",
    "FloatTierGiveUp",
    "FloatDelta",
    "FloatSimplex",
]

#: Absolute comparison slack.
ABS_EPS = 1e-9
#: Relative comparison slack (scales with operand magnitude).
REL_EPS = 1e-9
#: Pivot elements below this magnitude are treated as structural zeros.
PIVOT_EPS = 1e-11
#: Pivots per check before the tier gives up (termination guard).
_MAX_PIVOTS = 100_000


class FloatConflict(Exception):
    """The float tier *suspects* the asserted set is infeasible.

    ``core`` is the suspected Farkas row set (constraint tags).  This
    is advisory: the exact tier re-derives (or refutes) the certificate
    from Fractions before UNSAT is reported anywhere.
    """

    def __init__(self, core: frozenset[Tag]) -> None:
        super().__init__(f"float-tier conflict: {sorted(map(str, core))}")
        self.core = core


class FloatTierGiveUp(Exception):
    """The float tier abandoned the check (overflow / pivot blowup)."""


@dataclass(frozen=True)
class FloatDelta:
    """Float image of a delta-rational: ``real + k * delta``."""

    real: float
    k: float = 0.0

    def __add__(self, other: "FloatDelta") -> "FloatDelta":
        return FloatDelta(self.real + other.real, self.k + other.k)

    def __sub__(self, other: "FloatDelta") -> "FloatDelta":
        return FloatDelta(self.real - other.real, self.k - other.k)

    def scale(self, factor: float) -> "FloatDelta":
        return FloatDelta(self.real * factor, self.k * factor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.k == 0.0:
            return str(self.real)
        return f"{self.real}{'+' if self.k > 0 else '-'}{abs(self.k)}d"


FD_ZERO = FloatDelta(0.0)


def _eps(a: float, b: float) -> float:
    return ABS_EPS + REL_EPS * max(abs(a), abs(b))


def _lt(a: FloatDelta, b: FloatDelta) -> bool:
    """``a < b`` with lenient (eps-guarded) tie handling."""
    eps = _eps(a.real, b.real)
    if a.real < b.real - eps:
        return True
    if a.real > b.real + eps:
        return False
    return a.k < b.k - ABS_EPS


def _gt(a: FloatDelta, b: FloatDelta) -> bool:
    return _lt(b, a)


def _fd(value: DeltaRational) -> FloatDelta:
    return FloatDelta(float(value.real), float(value.k))


@dataclass
class _FloatBound:
    """A bound in both float image and exact form.

    ``exact`` is the precise :class:`DeltaRational` the bound was
    asserted with; the orchestrator snaps candidate models onto it.
    """

    value: FloatDelta
    exact: DeltaRational
    tag: Tag


class FloatSimplex:
    """Epsilon-guarded float clone of :class:`repro.smt.simplex.Simplex`.

    Structurally identical to the exact implementation: slack variables
    per distinct linear form, bounds on slacks, Bland's-rule pivoting.
    Raises :class:`FloatConflict` (advisory) instead of
    ``TheoryConflict`` and :class:`FloatTierGiveUp` when numerics or
    the pivot budget make the run untrustworthy.
    """

    def __init__(self) -> None:
        self._order: dict[Var, int] = {}
        self._slack_count = 0
        self._slack_of_form: dict[frozenset[tuple[Var, Fraction]], Var] = {}
        self.rows: dict[Var, dict[Var, float]] = {}
        self.lower: dict[Var, _FloatBound] = {}
        self.upper: dict[Var, _FloatBound] = {}
        self.beta: dict[Var, FloatDelta] = {}

    # ------------------------------------------------------------------
    # Variable management (mirrors Simplex)
    # ------------------------------------------------------------------
    def _intern(self, var: Var) -> Var:
        if var not in self._order:
            self._order[var] = len(self._order)
            self.beta[var] = FD_ZERO
        return var

    def _slack_for(self, expr: LinExpr) -> Var:
        key = frozenset(expr.coeffs.items())
        slack = self._slack_of_form.get(key)
        if slack is not None:
            return slack
        if len(expr.coeffs) == 1:
            (var,) = expr.coeffs
            self._intern(var)
            self._slack_of_form[key] = var
            return var
        self._slack_count += 1
        slack = Var(f"__fslack{self._slack_count}", "real")
        self._intern(slack)
        row: dict[Var, float] = {}
        for var, coeff in expr.coeffs.items():
            self._intern(var)
            row[var] = float(coeff)
        self.rows[slack] = row
        self.beta[slack] = self._row_value(row)
        self._slack_of_form[key] = slack
        return slack

    def _row_value(self, row: Mapping[Var, float]) -> FloatDelta:
        total = FD_ZERO
        for var, coeff in row.items():
            total = total + self.beta[var].scale(coeff)
        return total

    # ------------------------------------------------------------------
    # Assertions
    # ------------------------------------------------------------------
    def assert_atom(self, atom: Atom, tag: Tag) -> None:
        """Assert ``atom.expr atom.op 0``; may raise FloatConflict."""
        descriptor = _describe_atom(atom)
        if descriptor[0] == "const":
            if not descriptor[1]:
                raise FloatConflict(frozenset([tag]))
            return
        _, scale, rhs, strict = descriptor
        expr = atom.expr
        slack = self._slack_for(expr)
        if atom.op == EQ:
            exact = DeltaRational(rhs)
            self._assert_upper(slack, _FloatBound(_fd(exact), exact, tag))
            self._assert_lower(slack, _FloatBound(_fd(exact), exact, tag))
        elif scale > 0:
            exact = DeltaRational(rhs, Fraction(-1 if strict else 0))
            self._assert_upper(slack, _FloatBound(_fd(exact), exact, tag))
        else:
            exact = DeltaRational(rhs, Fraction(1 if strict else 0))
            self._assert_lower(slack, _FloatBound(_fd(exact), exact, tag))

    def _assert_upper(self, var: Var, new: _FloatBound) -> None:
        value = new.value
        low = self.lower.get(var)
        if low is not None and _lt(value, low.value):
            raise FloatConflict(frozenset([new.tag, low.tag]))
        up = self.upper.get(var)
        if up is not None and not _gt(up.value, value):
            return
        self.upper[var] = new
        if var not in self.rows and _gt(self.beta[var], value):
            self._update(var, value)

    def _assert_lower(self, var: Var, new: _FloatBound) -> None:
        value = new.value
        up = self.upper.get(var)
        if up is not None and _lt(up.value, value):
            raise FloatConflict(frozenset([new.tag, up.tag]))
        low = self.lower.get(var)
        if low is not None and not _lt(low.value, value):
            return
        self.lower[var] = new
        if var not in self.rows and _lt(self.beta[var], value):
            self._update(var, value)

    # ------------------------------------------------------------------
    # Pivoting (mirrors Simplex, float cells)
    # ------------------------------------------------------------------
    def _update(self, nonbasic: Var, value: FloatDelta) -> None:
        delta = value - self.beta[nonbasic]
        for basic, row in self.rows.items():
            coeff = row.get(nonbasic)
            if coeff:
                self.beta[basic] = self.beta[basic] + delta.scale(coeff)
        self.beta[nonbasic] = value

    def _pivot_and_update(
        self, basic: Var, nonbasic: Var, value: FloatDelta
    ) -> None:
        row = self.rows[basic]
        a = row[nonbasic]
        theta = (value - self.beta[basic]).scale(1.0 / a)
        self.beta[basic] = value
        self.beta[nonbasic] = self.beta[nonbasic] + theta
        for other_basic, other_row in self.rows.items():
            if other_basic is basic:
                continue
            coeff = other_row.get(nonbasic)
            if coeff:
                self.beta[other_basic] = self.beta[other_basic] + theta.scale(
                    coeff
                )
        self._pivot(basic, nonbasic)

    def _pivot(self, basic: Var, nonbasic: Var) -> None:
        GLOBAL_COUNTERS.float_pivots += 1
        row = self.rows.pop(basic)
        a = row.pop(nonbasic)
        new_row: dict[Var, float] = {basic: 1.0 / a}
        for var, coeff in row.items():
            new_row[var] = -coeff / a
        self.rows[nonbasic] = new_row
        for other_basic in list(self.rows):
            if other_basic is nonbasic:
                continue
            other_row = self.rows[other_basic]
            coeff = other_row.pop(nonbasic, None)
            if coeff is None or coeff == 0.0:
                continue
            for var, sub_coeff in new_row.items():
                merged = other_row.get(var, 0.0) + coeff * sub_coeff
                if abs(merged) <= PIVOT_EPS:
                    other_row.pop(var, None)
                else:
                    other_row[var] = merged

    # ------------------------------------------------------------------
    # Main check loop
    # ------------------------------------------------------------------
    def check(self) -> dict[Var, FloatDelta]:
        """Advisory feasibility run; see module docstring for caveats."""
        pivots = 0
        while True:
            violating = self._find_violating_basic()
            if violating is None:
                return {
                    var: self.beta[var]
                    for var in self._order
                    if not var.name.startswith("__fslack")
                }
            if pivots >= _MAX_PIVOTS:
                raise FloatTierGiveUp("float-tier pivot budget exhausted")
            pivots += 1
            basic, needs_increase = violating
            target = (
                self.lower[basic].value
                if needs_increase
                else self.upper[basic].value
            )
            entering = self._find_entering(basic, needs_increase)
            if entering is None:
                raise self._conflict(basic, needs_increase)
            self._pivot_and_update(basic, entering, target)

    def _find_violating_basic(self) -> tuple[Var, bool] | None:
        best: tuple[int, Var, bool] | None = None
        for basic in self.rows:
            value = self.beta[basic]
            if not (math.isfinite(value.real) and math.isfinite(value.k)):
                raise FloatTierGiveUp("non-finite tableau value")
            low = self.lower.get(basic)
            if low is not None and _lt(value, low.value):
                cand = (self._order[basic], basic, True)
                if best is None or cand[0] < best[0]:
                    best = cand
                continue
            up = self.upper.get(basic)
            if up is not None and _gt(value, up.value):
                cand = (self._order[basic], basic, False)
                if best is None or cand[0] < best[0]:
                    best = cand
        if best is None:
            return None
        return best[1], best[2]

    def _find_entering(self, basic: Var, needs_increase: bool) -> Var | None:
        """Bland's rule with structural-zero guard on tiny pivots."""
        row = self.rows[basic]
        best: tuple[int, Var] | None = None
        for nonbasic, coeff in row.items():
            if abs(coeff) <= PIVOT_EPS:
                continue
            if needs_increase:
                movable = (coeff > 0 and self._can_increase(nonbasic)) or (
                    coeff < 0 and self._can_decrease(nonbasic)
                )
            else:
                movable = (coeff > 0 and self._can_decrease(nonbasic)) or (
                    coeff < 0 and self._can_increase(nonbasic)
                )
            if movable:
                cand = (self._order[nonbasic], nonbasic)
                if best is None or cand[0] < best[0]:
                    best = cand
        return None if best is None else best[1]

    def _can_increase(self, var: Var) -> bool:
        up = self.upper.get(var)
        return up is None or _lt(self.beta[var], up.value)

    def _can_decrease(self, var: Var) -> bool:
        low = self.lower.get(var)
        return low is None or _gt(self.beta[var], low.value)

    def _conflict(self, basic: Var, needs_increase: bool) -> FloatConflict:
        """Suspected conflict core: the violated row's blocking bounds.

        Unlike the exact tier this carries **no Farkas weights** --
        float coefficients cannot justify anything.  The tag set names
        the constraints the exact tier should re-derive a certificate
        from; a tiny-pivot entry without the matching bound is simply
        skipped (the advisory core may be incomplete, the exact
        confirmation catches that).
        """
        row = self.rows[basic]
        tags: set[Tag] = set()
        anchor = self.lower.get(basic) if needs_increase else self.upper.get(
            basic
        )
        if anchor is not None:
            tags.add(anchor.tag)
        for nonbasic, coeff in row.items():
            if abs(coeff) <= PIVOT_EPS:
                continue
            wants_upper = (coeff > 0) == needs_increase
            bound = (
                self.upper.get(nonbasic)
                if wants_upper
                else self.lower.get(nonbasic)
            )
            if bound is not None:
                tags.add(bound.tag)
        return FloatConflict(frozenset(tags))

    # ------------------------------------------------------------------
    # Exact-snapping support for the orchestrator
    # ------------------------------------------------------------------
    def exact_bound_values(self, var: Var) -> list[DeltaRational]:
        """Exact values of the bounds asserted on ``var`` (snap targets)."""
        out: list[DeltaRational] = []
        low = self.lower.get(var)
        if low is not None:
            out.append(low.exact)
        up = self.upper.get(var)
        if up is not None and (low is None or up.exact != low.exact):
            out.append(up.exact)
        return out
