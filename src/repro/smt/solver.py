"""Lazy DPLL(T) solver facade.

This is the ``z3``-shaped surface the rest of the system talks to: add
formulas, call :meth:`Solver.check`, read back a model.  Internally it
runs the classic lazy loop:

1. Tseitin-encode all asserted formulas into a CDCL SAT solver.
2. Ask the SAT core for a boolean model.
3. Collect the arithmetic atoms the model asserts (positively or
   negatively) and check their conjunction with the LRA/LIA theory
   solver.
4. On theory conflict, add the blocking clause over the conflicting
   atom literals and repeat.

Disequalities arising from *negated equality atoms* are resolved with a
splitting lemma ``~(e = 0) -> (e < 0 | e > 0)`` added on demand.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Iterable

from .backend import resolve_float_mode
from .cnf import CnfBuilder
from .formula import EQ, LE, LT, NE, Atom, BVar, Formula, Not as FNot
from .proof import (
    BOOL,
    FarkasCert,
    FarkasEntry,
    ProofLog,
    TrichotomyCert,
)
from .sat import SatSolver
from .simplex import TheoryConflict
from .stats import GLOBAL_COUNTERS
from .terms import LinExpr, Var
from .theory import SolverBudgetError, check_conjunction

SAT = "sat"
UNSAT = "unsat"


@dataclass
class Model:
    """A first-order model: rational values plus boolean assignments."""

    values: dict[Var, Fraction] = field(default_factory=dict)
    booleans: dict[BVar, bool] = field(default_factory=dict)

    def value(self, var: Var) -> Fraction:
        """Value of an arithmetic variable (0 if unconstrained)."""
        return self.values.get(var, Fraction(0))

    def int_value(self, var: Var) -> int:
        value = self.value(var)
        if value.denominator != 1:
            raise ValueError(f"{var} has non-integral value {value}")
        return int(value)

    def evaluate(self, expr: LinExpr) -> Fraction:
        total = expr.const
        for var, coeff in expr.coeffs.items():
            total += coeff * self.value(var)
        return total

    def satisfies(self, formula: Formula) -> bool:
        assignment = {var: self.value(var) for var in formula.variables()}
        booleans = {bv: self.booleans.get(bv, False) for bv in formula.bool_variables()}
        return formula.evaluate(assignment, booleans)


class SolverError(Exception):
    """The lazy loop failed to converge within its round budget."""


class Solver:
    """Incremental SMT solver for linear integer/real arithmetic.

    Assertions accumulate; :meth:`check` may be called repeatedly with
    more assertions added in between (the pattern used by the
    sample-generation loop with its growing ``NotOld`` constraint).
    """

    def __init__(
        self,
        *,
        max_rounds: int = 50_000,
        bnb_budget: int = 4000,
        ordering_lemmas: bool = True,
        proof: bool = False,
        minimize_cores: bool = False,
        float_filter: str | None = None,
    ) -> None:
        GLOBAL_COUNTERS.solvers_constructed += 1
        # Tier selection for every theory check this solver issues
        # (resolved once here so the SIA_FLOAT_FILTER env override and
        # mode validation apply at construction, not per check).
        self._float_mode = resolve_float_mode(float_filter)
        self._builder = CnfBuilder()
        self._sat = SatSolver()
        self._clauses_sent = 0
        self._max_rounds = max_rounds
        self._bnb_budget = bnb_budget
        self._ordering_lemmas = ordering_lemmas
        self._minimize_cores = minimize_cores
        self._model: Model | None = None
        self._eq_split: set[Atom] = set()
        self._budget_events = 0
        self._lemma_atom_count = 0
        self._emitted_lemmas: set[tuple[int, ...]] = set()
        # var -> sorted bound chains for incremental ordering lemmas.
        self._chains: dict[Var, dict[str, list]] = {}
        # Proof logging: UNSAT verdicts become independently checkable
        # by repro.analysis.certify when enabled.
        self.proof_log: ProofLog | None = ProofLog() if proof else None
        self._sat.proof = self.proof_log
        self._atoms_registered = 0
        self._suppressed: set[Atom] = set()
        # Leaf-iteration cache for _theory_round: rebuilt only when the
        # atom table grows or the suppressed set changes, so a round
        # walks live atoms instead of everything ever registered.
        self._suppress_version = 0
        self._leaf_key: tuple[int, int] | None = None
        self._live_atom_items: list[tuple[int, Atom]] = []
        self._bvar_items: list[tuple[int, BVar]] = []

    # ------------------------------------------------------------------
    @property
    def bnb_budget(self) -> int:
        """Branch-and-bound node budget for theory checks.

        Writable so a long-lived session can serve callers with
        different budgets without rebuilding the solver.
        """
        return self._bnb_budget

    @bnb_budget.setter
    def bnb_budget(self, value: int) -> None:
        self._bnb_budget = value

    # ------------------------------------------------------------------
    # Theory-relevance suppression (used by SmtSession)
    # ------------------------------------------------------------------
    def suppress_atoms(self, atoms: Iterable[Atom]) -> None:
        """Exclude ``atoms`` from theory rounds until unsuppressed.

        Sound only when every clause mentioning a suppressed atom is
        already satisfied by a root-level unit (the activation-literal
        pattern: a retracted scope's guard clauses are satisfied by the
        asserted ``~sel``).  The atom's SAT variable then floats freely
        -- whatever polarity the boolean model picks, the Tseitin cone
        enforcing it is dead, so the theory solver need not honour it.
        Skipping only *removes* constraints from theory checks, so an
        UNSAT verdict still rests exclusively on live atoms.

        Without this, a long-lived session pays for every atom ever
        registered on every theory round (the round walks the full atom
        table), which is exactly the cost that made per-check fresh
        solvers competitive.
        """
        atoms = list(atoms)
        if atoms:
            self._suppressed.update(atoms)
            self._suppress_version += 1

    def unsuppress_atoms(self, atoms: Iterable[Atom]) -> None:
        """Re-admit ``atoms`` to theory rounds (new scope re-uses them)."""
        atoms = list(atoms)
        if atoms:
            self._suppressed.difference_update(atoms)
            self._suppress_version += 1

    def compact(
        self,
        dead_nodes: Iterable[Formula] = (),
        dead_atoms: Iterable[Atom] = (),
    ) -> None:
        """Drop clauses satisfied at the root (retraction cleanup).

        Asserting a retracted scope's negated selector satisfies all of
        its guard clauses forever; this removes them (and any learned
        clauses citing the selector) from the SAT core so later checks
        do not propagate through dead structure.  ``dead_nodes`` are
        NNF connective nodes no longer reachable from any live
        assertion (the session refcounts them alongside atoms): their
        Tseitin definition cones are deleted outright and the
        definition variables detached from branching.  ``dead_atoms``
        are suppressed atoms referenced by no live assertion; the
        ordering lemmas, guard encodings and blocking clauses citing
        them are deleted the same way (they are consequences of the
        monotone assertion set -- see ``SatSolver.simplify``), their
        bound-chain entries are pruned, and a dead equality forgets its
        trichotomy split so a later revival re-splits.  Without this, a
        long counter-example session pays per-check for every
        ``NotOld`` point and candidate atom it ever retracted.
        """
        dead_vars: set[int] = set()
        for node in dead_nodes:
            var = self._builder.evict_def(node)
            if var is not None:
                dead_vars.add(var)
        var_of_atom = self._builder.result.var_of_atom
        for atom in dead_atoms:
            var = var_of_atom.get(atom)
            if var is not None:
                dead_vars.add(var)
            self._eq_split.discard(atom)
        if dead_vars:
            for chains in self._chains.values():
                for side in ("upper", "lower"):
                    chains[side] = [
                        entry for entry in chains[side]
                        if entry[4] not in dead_vars
                    ]
                chains["eq"] = [
                    entry for entry in chains["eq"] if entry[1] not in dead_vars
                ]
        self._sat.finish()
        self._sat.simplify(dead_vars)

    # ------------------------------------------------------------------
    def add(self, *formulas: Formula) -> None:
        for formula in formulas:
            self._builder.assert_formula(formula)
        self._sync_clauses()

    def _sync_clauses(self) -> None:
        result = self._builder.result
        self._sat.ensure_vars(result.num_vars)
        self._register_atoms()
        while self._clauses_sent < len(result.clauses):
            clause = result.clauses[self._clauses_sent]
            self._clauses_sent += 1
            if not clause:
                # An empty clause of the encoding is an axiom of the
                # asserted formulas; record it so the proof log still
                # holds a refutation step.
                if self.proof_log is not None:
                    self.proof_log.log_clause([], kind="input")
                self._sat.ok = False
                continue
            self._sat.add_clause(list(clause))

    def _register_atoms(self) -> None:
        """Mirror the CNF builder's atom table into the proof log."""
        if self.proof_log is None:
            return
        atom_map = self._builder.result.atom_of_var
        num_vars = self._builder.result.num_vars
        if num_vars == self._atoms_registered:
            return
        # Leaf variables get their atom at allocation time, so every
        # variable above the watermark is either a known leaf or a
        # Tseitin auxiliary (registered as propositional).
        for sat_var in range(self._atoms_registered + 1, num_vars + 1):
            leaf = atom_map.get(sat_var)
            if isinstance(leaf, Atom):
                self.proof_log.register_atom(sat_var, leaf.expr, leaf.op)
            else:
                self.proof_log.register_atom(sat_var, None, BOOL)
        self._atoms_registered = num_vars

    # ------------------------------------------------------------------
    def check(self, assumptions: list[Formula] | None = None) -> str:
        """Run the lazy DPLL(T) loop; returns ``"sat"`` or ``"unsat"``.

        ``assumptions`` are literal-shaped formulas (atoms, negated
        atoms, or boolean variables) asserted only for this call --
        the MiniSat-style incremental interface.  Clauses learned
        during an assuming check remain globally sound (theory
        conflicts do not depend on why their literals were asserted),
        so the solver stays warm across differently-assumed calls.
        """
        GLOBAL_COUNTERS.checks += 1
        self._model = None
        self._budget_events = 0
        if self._builder.result.trivially_false or not self._sat.ok:
            if self.proof_log is not None:
                if not self.proof_log.has_refutation:
                    # Trivially-false encoding: a ``False`` axiom was
                    # asserted before any clause reached the SAT core.
                    self.proof_log.log_clause([], kind="input")
                self.proof_log.result = UNSAT
            return UNSAT
        assumption_lits = (
            [self._literal(formula) for formula in assumptions]
            if assumptions
            else []
        )
        if assumptions:
            # An assumed literal is forced for this check, so its atom
            # must reach the theory solver even if a retracted scope
            # previously suppressed it.
            for formula in assumptions:
                leaf = formula.arg if isinstance(formula, FNot) else formula
                if isinstance(leaf, Atom):
                    self._suppressed.discard(leaf)
        self._add_bound_lemmas()
        self._register_atoms()
        for _ in range(self._max_rounds):
            self._sat.finish()
            if not self._sat.solve(assumptions=assumption_lits):
                if self.proof_log is not None:
                    self.proof_log.result = UNSAT
                return UNSAT
            sat_model = self._sat.model()
            outcome = self._theory_round(sat_model)
            if outcome is not None:
                self._model = outcome
                if self.proof_log is not None:
                    self.proof_log.result = SAT
                return SAT
        raise SolverError(f"lazy SMT loop exceeded {self._max_rounds} rounds")

    def _literal(self, formula: Formula) -> int:
        """SAT literal for a literal-shaped formula (used by assumptions)."""
        negated = False
        if isinstance(formula, FNot):
            formula = formula.arg
            negated = True
        if isinstance(formula, (Atom, BVar)):
            if isinstance(formula, Atom):
                complement = formula.negated()
                if complement in self._builder.result.var_of_atom:
                    lit = -self._builder.result.var_of_atom[complement]
                else:
                    lit = self._builder.var_for(formula)
            else:
                lit = self._builder.var_for(formula)
            self._sync_clauses()
            self._sat.ensure_vars(self._builder.result.num_vars)
            return -lit if negated else lit
        raise SolverError(
            f"assumptions must be atoms or boolean variables, got {formula!r}"
        )

    def _refresh_leaf_cache(self) -> None:
        atom_of_var = self._builder.result.atom_of_var
        key = (len(atom_of_var), self._suppress_version)
        if key == self._leaf_key:
            return
        self._leaf_key = key
        suppressed = self._suppressed
        atom_items: list[tuple[int, Atom]] = []
        bvar_items: list[tuple[int, BVar]] = []
        for sat_var, leaf in atom_of_var.items():
            if isinstance(leaf, BVar):
                bvar_items.append((sat_var, leaf))
            elif leaf not in suppressed:
                atom_items.append((sat_var, leaf))
        self._live_atom_items = atom_items
        self._bvar_items = bvar_items

    def _theory_round(self, sat_model: list[bool]) -> Model | None:
        """One theory check; adds lemmas and returns a model on success."""
        constraints: list[tuple[Atom, int]] = []
        booleans: dict[BVar, bool] = {}
        pending_splits: list[tuple[Atom, int]] = []

        self._refresh_leaf_cache()
        for sat_var, leaf in self._bvar_items:
            booleans[leaf] = sat_model[sat_var]
        for sat_var, leaf in self._live_atom_items:
            asserted = sat_model[sat_var]
            if asserted:
                constraints.append((leaf, sat_var))
            else:
                negated = leaf.negated()
                if negated.op == NE:
                    if leaf not in self._eq_split:
                        pending_splits.append((leaf, sat_var))
                    continue
                constraints.append((negated, -sat_var))

        if pending_splits:
            for eq_atom, sat_var in pending_splits:
                self._add_eq_split(eq_atom, sat_var)
            self._sync_clauses()
            return None

        try:
            values = check_conjunction(
                constraints,
                max_nodes=self._bnb_budget,
                float_mode=self._float_mode,
            )
        except TheoryConflict as conflict:
            if self._minimize_cores:
                conflict = self._minimize_conflict(conflict, constraints)
            blocking = [-lit for lit in conflict.core]
            if not blocking:
                if self.proof_log is not None:
                    self.proof_log.expect([], "theory", conflict.cert)
                    self.proof_log.log_clause([])
                self._sat.ok = False
                return None
            if self.proof_log is not None:
                self.proof_log.expect(blocking, "theory", conflict.cert)
            self._sat.finish()
            self._sat.add_clause(blocking)
            return None
        except SolverBudgetError:
            # Unknown on this boolean branch: block the exact atom
            # assignment and let the search move on.  This keeps the
            # solver sound (never claims unsat wrongly) at the price of
            # completeness on pathological integer instances.  A cap on
            # such events keeps one query from crawling through
            # thousands of expensive branch-and-bound walls.
            self._budget_events += 1
            if self._budget_events > 8:
                raise
            blocking = [
                (-sat_var if sat_model[sat_var] else sat_var)
                for sat_var, _leaf in self._live_atom_items
            ]
            if not blocking:
                raise
            if self.proof_log is not None:
                # Deliberately unjustified: the auditor refuses to
                # certify an UNSAT verdict that rests on such a step.
                self.proof_log.expect(blocking, "budget-block", None)
            self._sat.finish()
            self._sat.add_clause(blocking)
            return None

        return Model(values=dict(values), booleans=booleans)

    def _minimize_conflict(
        self,
        conflict: TheoryConflict,
        constraints: list[tuple[Atom, int]],
    ) -> TheoryConflict:
        """Deletion-based minimization of a theory conflict core.

        Tries dropping each core tag in turn; a drop sticks when the
        remaining constraints are still infeasible on their own (the
        re-check's conflict -- certificate included -- replaces the
        current one, and may itself shed further tags).  The result is
        a shorter blocking clause, which prunes the boolean search
        harder per lemma.
        """
        atom_of_tag = {tag: atom for atom, tag in constraints}
        core = set(conflict.core)
        best = conflict
        for tag in sorted(core, key=lambda t: (abs(t), t)):
            if tag not in core or len(core) <= 1:
                continue
            trial = [
                (atom_of_tag[t], t)
                for t in sorted(core - {tag}, key=lambda t: (abs(t), t))
                if t in atom_of_tag
            ]
            try:
                check_conjunction(
                    trial,
                    max_nodes=self._bnb_budget,
                    float_mode=self._float_mode,
                )
            except TheoryConflict as sub:
                core = set(sub.core)
                best = sub
            except SolverBudgetError:
                continue  # too expensive to decide; keep the tag
        return best

    # ------------------------------------------------------------------
    # Static theory-propagation lemmas
    # ------------------------------------------------------------------
    def _add_bound_lemmas(self) -> None:
        """Implication/conflict lemmas between single-variable atoms.

        The sample-generation workload asserts hundreds of interval
        atoms over the same column (the ``NotOld`` disequalities split
        into ``x < v`` / ``x > v``).  Without these lemmas the lazy
        loop discovers each pairwise interaction as a separate theory
        conflict; with them, bound reasoning happens inside CDCL as
        unit propagation.  All lemmas are sound implications of linear
        arithmetic, so they never change satisfiability.

        Insertion is incremental: each new atom links into its
        variable's sorted bound chain (implications to its neighbours)
        and gets one conflict clause against the weakest incompatible
        opposite bound -- O(log n) work per new atom, so repeated
        ``check()`` calls during model enumeration stay cheap.
        """
        if not self._ordering_lemmas:
            return
        atom_map = self._builder.result.atom_of_var
        if len(atom_map) == self._lemma_atom_count:
            return
        new_items = list(atom_map.items())[self._lemma_atom_count:]
        self._lemma_atom_count = len(atom_map)

        for sat_var, leaf in new_items:
            if not isinstance(leaf, Atom) or len(leaf.expr.coeffs) != 1:
                continue
            ((var, coeff),) = leaf.expr.coeffs.items()
            bound = -leaf.expr.const / coeff
            chains = self._chains.setdefault(
                var, {"upper": [], "lower": [], "eq": []}
            )
            if leaf.op == "=":
                self._insert_eq(chains, bound, sat_var)
            elif leaf.op != "!=":
                strict = leaf.op == "<"
                side = "upper" if coeff > 0 else "lower"
                self._insert_bound(chains, side, bound, strict, sat_var)
        self._sync_clauses()

    def _insert_bound(
        self,
        chains: dict[str, list[Any]],
        side: str,
        bound: Fraction,
        strict: bool,
        sat_var: int,
    ) -> None:
        import bisect

        # Strength keys: uppers ascend (smaller bound stronger), lowers
        # descend (larger bound stronger); strict beats non-strict.
        key = (bound, not strict) if side == "upper" else (-bound, not strict)
        chain = chains[side]
        index = bisect.bisect_left(chain, key, key=lambda t: (t[0], t[1]))
        entry = (key[0], key[1], bound, strict, sat_var)
        chain.insert(index, entry)
        if index > 0:
            self._lemma([-chain[index - 1][4], sat_var])  # stronger -> this
        if index + 1 < len(chain):
            self._lemma([-sat_var, chain[index + 1][4]])  # this -> weaker

        # Conflict with the weakest incompatible bound on the other side.
        other = chains["lower" if side == "upper" else "upper"]
        weakest = None
        for candidate in other:  # sorted strongest -> weakest
            if self._incompatible(side, bound, strict, candidate[2], candidate[3]):
                weakest = candidate
            else:
                break
        if weakest is not None:
            self._lemma([-sat_var, -weakest[4]])
        for value, eq_var in chains["eq"]:
            self._link_eq_to_bound(value, eq_var, side, bound, strict, sat_var)

    @staticmethod
    def _incompatible(
        side: str,
        bound: Fraction,
        strict: bool,
        other_bound: Fraction,
        other_strict: bool,
    ) -> bool:
        upper_b, upper_s = (bound, strict) if side == "upper" else (other_bound, other_strict)
        lower_b, lower_s = (other_bound, other_strict) if side == "upper" else (bound, strict)
        return upper_b < lower_b or (upper_b == lower_b and (upper_s or lower_s))

    def _insert_eq(
        self, chains: dict[str, list[Any]], value: Fraction, sat_var: int
    ) -> None:
        for other_value, other_var in chains["eq"]:
            if other_value != value:
                self._lemma([-sat_var, -other_var])
        chains["eq"].append((value, sat_var))
        for entry in chains["upper"]:
            self._link_eq_to_bound(value, sat_var, "upper", entry[2], entry[3], entry[4])
        for entry in chains["lower"]:
            self._link_eq_to_bound(value, sat_var, "lower", entry[2], entry[3], entry[4])

    def _link_eq_to_bound(
        self,
        value: Fraction,
        eq_var: int,
        side: str,
        bound: Fraction,
        strict: bool,
        bound_var: int,
    ) -> None:
        """x = value either satisfies the bound (implication) or not
        (conflict)."""
        if side == "upper":
            satisfied = value < bound or (value == bound and not strict)
        else:
            satisfied = value > bound or (value == bound and not strict)
        if satisfied:
            self._lemma([-eq_var, bound_var])
        else:
            self._lemma([-eq_var, -bound_var])

    def _lemma(self, clause: list[int]) -> None:
        key = tuple(sorted(clause))
        if key in self._emitted_lemmas:
            return
        self._emitted_lemmas.add(key)
        if self.proof_log is not None:
            self.proof_log.expect(clause, "theory", self._lemma_cert(clause))
        self._builder.add_clause(clause)

    def _lemma_cert(self, clause: list[int]) -> FarkasCert | None:
        """Farkas certificate for a binary single-variable bound lemma.

        A lemma clause ``[l1, l2]`` claims the conjunction of the
        *negated* literals infeasible; both constraints range over the
        same single variable, so a two-entry combination cancelling it
        always exists when the lemma is sound.
        """
        atom_of_var = self._builder.result.atom_of_var
        asserted: list[tuple[int, Atom]] = []
        for lit in clause:
            neg = -lit
            leaf = atom_of_var.get(abs(neg))
            if not isinstance(leaf, Atom):
                return None
            atom = leaf if neg > 0 else leaf.negated()
            if atom.op not in (LE, LT, EQ):
                return None
            asserted.append((neg, atom))
        if len(asserted) != 2:
            return None
        (l1, a1), (l2, a2) = asserted
        c1 = list(a1.expr.coeffs.items())
        c2 = list(a2.expr.coeffs.items())
        if len(c1) != 1 or len(c2) != 1 or c1[0][0] != c2[0][0]:
            return None
        lam1 = Fraction(1)
        lam2 = -c1[0][1] / c2[0][1]
        for scale in (Fraction(1), Fraction(-1)):
            k1, k2 = scale * lam1, scale * lam2
            if (k1 < 0 and a1.op != EQ) or (k2 < 0 and a2.op != EQ):
                continue
            d = k1 * a1.expr.const + k2 * a2.expr.const
            strict = (a1.op == LT and k1 > 0) or (a2.op == LT and k2 > 0)
            if d > 0 or (d == 0 and strict):
                return FarkasCert(
                    tuple(
                        FarkasEntry(
                            coeff=k,
                            lit=lit,
                            orig_expr=atom.expr,
                            orig_op=atom.op,
                            used_expr=atom.expr,
                            used_op=atom.op,
                        )
                        for k, lit, atom in ((k1, l1, a1), (k2, l2, a2))
                    )
                )
        return None

    def _add_eq_split(self, eq_atom: Atom, eq_sat_var: int) -> None:
        """Lemma: ~(e = 0) -> (e < 0 | -e < 0)."""
        self._eq_split.add(eq_atom)
        lt_var = self._builder.var_for(Atom(eq_atom.expr, LT))
        gt_var = self._builder.var_for(Atom(-eq_atom.expr, LT))
        clause = [eq_sat_var, lt_var, gt_var]
        if self.proof_log is not None:
            self.proof_log.expect(
                clause, "trichotomy", TrichotomyCert(eq_atom.expr)
            )
        self._builder.add_clause(clause)

    # ------------------------------------------------------------------
    def model(self) -> Model:
        if self._model is None:
            raise SolverError("model() called without a preceding sat check()")
        return self._model


# ----------------------------------------------------------------------
# Convenience helpers used across the code base
# ----------------------------------------------------------------------
def is_satisfiable(
    *formulas: Formula,
    bnb_budget: int = 4000,
    float_filter: str | None = None,
) -> bool:
    """One-shot satisfiability of the conjunction of ``formulas``."""
    solver = Solver(bnb_budget=bnb_budget, float_filter=float_filter)
    solver.add(*formulas)
    return solver.check() == SAT


def get_model(
    *formulas: Formula,
    bnb_budget: int = 4000,
    float_filter: str | None = None,
) -> Model | None:
    """One-shot model of the conjunction, or None when unsat."""
    solver = Solver(bnb_budget=bnb_budget, float_filter=float_filter)
    solver.add(*formulas)
    if solver.check() == SAT:
        return solver.model()
    return None


def implies(antecedent: Formula, consequent: Formula) -> bool:
    """Whether ``antecedent => consequent`` is valid (2-valued)."""
    from .formula import conj, negate

    return not is_satisfiable(conj([antecedent, negate(consequent)]))


def all_models(
    formula: Formula,
    variables: list[Var],
    *,
    limit: int = 1_000,
) -> Iterable[Model]:
    """Enumerate models projected onto ``variables`` (up to ``limit``).

    After each model, a blocking constraint excludes that exact
    projection, mirroring the paper's ``NotOld`` construction.
    """
    from .formula import Atom as FAtom
    from .formula import NE, conj, disj

    solver = Solver()
    solver.add(formula)
    for _ in itertools.islice(itertools.count(), limit):
        if solver.check() != SAT:
            return
        model = solver.model()
        yield model
        differs = disj(
            [FAtom(LinExpr.var(var) - model.value(var), NE) for var in variables]
        )
        solver.add(differs)
