"""A CDCL SAT solver.

This is the propositional core of the SMT substrate: conflict-driven
clause learning with two-literal watching, first-UIP learning, VSIDS
branching, phase saving and Luby restarts.  The DPLL(T) driver adds
theory lemmas and blocking clauses between ``solve()`` calls, so the
solver supports incremental clause addition and assumption literals.

Literals follow the DIMACS convention: variable ``v >= 1``, positive
literal ``v``, negative literal ``-v``.
"""

from __future__ import annotations

from ..obs.trace import get_tracer
from .proof import ProofLog
from .stats import GLOBAL_COUNTERS

UNASSIGNED = -1


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed)."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


class SatSolver:
    """Incremental CDCL solver."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        # watches[lit] holds indices of clauses that currently watch `lit`.
        self.watches: dict[int, list[int]] = {}
        self.assign: list[int] = [UNASSIGNED]  # index 0 unused
        self.level: list[int] = [0]
        self.reason: list[int | None] = [None]
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        # VSIDS activity scores are a branching *heuristic*: they pick
        # decision order and never touch theory arithmetic, so floats
        # are sound here (any drift only changes the search path).
        self.activity: list[float] = [0.0]  # sia: allow-float
        self.phase: list[bool] = [False]
        self.var_inc = 1.0  # sia: allow-float
        self.var_decay = 0.95  # sia: allow-float
        self.ok = True
        self.conflicts = 0
        # Optional proof logging (set by the DPLL(T) driver).  Every
        # added clause, learned clause and the final empty clause is
        # appended; clause indices map to step indices so learned steps
        # can cite their resolution antecedents as checker hints.
        self.proof: ProofLog | None = None
        self._clause_step: dict[int, int] = {}
        self._last_antecedents: list[int] = []
        # Variables purged by simplify(dead_vars=...): they occur in no
        # clause, so the search never needs to assign them (a full
        # assignment over the remaining variables satisfies the whole
        # database).  Kept allocated -- variable numbering is append-only.
        # ``active_vars`` is the branching order (everything not
        # detached), so _pick_branch never scans the graveyard.
        self.detached: set[int] = set()
        self.active_vars: list[int] = []

    # ------------------------------------------------------------------
    # Variable / clause management
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.num_vars += 1
        self.assign.append(UNASSIGNED)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)  # sia: allow-float -- VSIDS heuristic
        self.phase.append(False)
        self.active_vars.append(self.num_vars)
        return self.num_vars

    def ensure_vars(self, n: int) -> None:
        while self.num_vars < n:
            self.new_var()

    def value(self, lit: int) -> int:
        """0 = false, 1 = true, UNASSIGNED otherwise (under current trail)."""
        val = self.assign[abs(lit)]
        if val == UNASSIGNED:
            return UNASSIGNED
        return val if lit > 0 else 1 - val

    def add_clause(self, lits: list[int]) -> bool:
        """Add a clause; returns False if the instance became unsat.

        The solver backtracks to decision level 0 first, so clauses can
        be added at any time between ``solve()`` calls.
        """
        if not self.ok:
            return False
        self._cancel_until(0)
        for lit in lits:
            self.ensure_vars(abs(lit))
        # Log the clause as given: the shrunk form below is an internal
        # optimisation, while the proof must record the actual axiom /
        # lemma (whose justification was pre-registered by the driver).
        step = self.proof.log_clause(lits) if self.proof is not None else None
        # Remove duplicates / detect tautologies, drop false literals.
        seen: set[int] = set()
        out: list[int] = []
        for lit in lits:
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self.value(lit)
            if val == 1:
                return True  # already satisfied at level 0
            if val == 0:
                continue
            seen.add(lit)
            out.append(lit)
        if not out:
            self._log_empty()
            self.ok = False
            return False
        if self.detached:
            # A new clause citing a previously-detached variable revives
            # it (a dead atom re-asserted by a later scope): it must be
            # branched on again.
            revived = {abs(lit) for lit in out} & self.detached
            if revived:
                self.detached -= revived
                self.active_vars.extend(sorted(revived))
        if len(out) == 1:
            self._enqueue(out[0], None)
            conflict = self._propagate()
            if conflict is not None:
                self._log_empty()
                self.ok = False
                return False
            return True
        idx = len(self.clauses)
        self.clauses.append(out)
        if step is not None:
            self._clause_step[idx] = step
        self._watch(out[0], idx)
        self._watch(out[1], idx)
        return True

    def _watch(self, lit: int, clause_idx: int) -> None:
        self.watches.setdefault(lit, []).append(clause_idx)

    # ------------------------------------------------------------------
    # Proof logging
    # ------------------------------------------------------------------
    def _log_empty(self, assumptions: list[int] | None = None) -> None:
        if self.proof is not None:
            self.proof.log_empty(assumptions=tuple(assumptions or ()))

    def _log_learned(
        self, learnt: list[int], clause_idx: int | None = None
    ) -> None:
        if self.proof is None:
            return
        antecedents = tuple(
            step
            for step in (
                self._clause_step.get(ci) for ci in self._last_antecedents
            )
            if step is not None
        )
        step_idx = self.proof.log_clause(
            learnt, kind="learned", antecedents=antecedents
        )
        if clause_idx is not None:
            self._clause_step[clause_idx] = step_idx

    # ------------------------------------------------------------------
    # Trail management
    # ------------------------------------------------------------------
    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _enqueue(self, lit: int, reason: int | None) -> None:
        var = abs(lit)
        self.assign[var] = 1 if lit > 0 else 0
        self.level[var] = self._decision_level()
        self.reason[var] = reason
        self.phase[var] = lit > 0
        self.trail.append(lit)

    def _cancel_until(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        bound = self.trail_lim[target_level]
        for lit in reversed(self.trail[bound:]):
            var = abs(lit)
            self.assign[var] = UNASSIGNED
            self.reason[var] = None
        del self.trail[bound:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> int | None:
        """Unit propagation; returns a conflicting clause index or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            falsified = -lit
            watchers = self.watches.get(falsified)
            if not watchers:
                continue
            keep: list[int] = []
            i = 0
            conflict: int | None = None
            while i < len(watchers):
                ci = watchers[i]
                i += 1
                clause = self.clauses[ci]
                # Ensure the falsified literal is at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self.value(first) == 1:
                    keep.append(ci)
                    continue
                # Look for a replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    if self.value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch(clause[1], ci)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(ci)
                if self.value(first) == 0:
                    # Conflict: keep remaining watchers, report.
                    keep.extend(watchers[i:])
                    conflict = ci
                    break
                self._enqueue(first, ci)
            self.watches[falsified] = keep
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        # sia: allow-float -- VSIDS activity rescale (branching
        # heuristic only; see __init__)
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:  # sia: allow-float
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100  # sia: allow-float
            self.var_inc *= 1e-100  # sia: allow-float

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """Returns (learnt clause, backjump level)."""
        learnt: list[int] = [0]  # placeholder for the asserting literal
        self._last_antecedents = [conflict]
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        clause = self.clauses[conflict]
        index = len(self.trail)
        current = self._decision_level()
        while True:
            for q in clause if lit == 0 else clause[1:]:
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current:
                        counter += 1
                    else:
                        learnt.append(q)
            # Pick the next literal on the trail to resolve on.
            while True:
                index -= 1
                lit = self.trail[index]
                if seen[abs(lit)]:
                    break
            counter -= 1
            seen[abs(lit)] = False
            if counter == 0:
                break
            reason = self.reason[abs(lit)]
            assert reason is not None, "resolved literal must have a reason"
            self._last_antecedents.append(reason)
            clause = self.clauses[reason]
            # The enqueued literal of a reason clause is kept at position
            # 0 by propagation; a position-1 swap keeps both watches valid.
            if clause[0] != lit:
                assert clause[1] == lit, "reason clause lost its asserting literal"
                clause[0], clause[1] = clause[1], clause[0]
        learnt[0] = -lit
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest level in the clause.
        max_i = 1
        for i in range(2, len(learnt)):
            if self.level[abs(learnt[i])] > self.level[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self.level[abs(learnt[1])]

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------
    def _pick_branch(self) -> int:
        best_var = 0
        best_act = -1.0  # sia: allow-float -- VSIDS heuristic
        assign = self.assign
        activity = self.activity
        for var in self.active_vars:
            if assign[var] == UNASSIGNED and activity[var] > best_act:
                best_act = activity[var]
                best_var = var
        if best_var == 0:
            return 0
        return best_var if self.phase[best_var] else -best_var

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(self, assumptions: list[int] | None = None) -> bool:
        """Search for a model extending the assumptions."""
        if not self.ok:
            return False
        assumptions = list(assumptions or [])
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self._log_empty()
            self.ok = False
            return False

        restart_count = 0
        conflict_budget = 100 * _luby(restart_count + 1)
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                GLOBAL_COUNTERS.clauses_learned += 1
                if self._decision_level() == 0:
                    self._log_empty()
                    self.ok = False
                    return False
                learnt, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                if len(learnt) == 1:
                    self._log_learned(learnt)
                    if self.value(learnt[0]) == UNASSIGNED:
                        self._enqueue(learnt[0], None)
                    elif self.value(learnt[0]) == 0:
                        self._log_empty()
                        self.ok = False
                        return False
                else:
                    idx = len(self.clauses)
                    self.clauses.append(learnt)
                    self._log_learned(learnt, idx)
                    self._watch(learnt[0], idx)
                    self._watch(learnt[1], idx)
                    self._enqueue(learnt[0], idx)
                self.var_inc /= self.var_decay
                continue

            if conflicts_here >= conflict_budget:
                restart_count += 1
                GLOBAL_COUNTERS.restarts += 1
                tracer = get_tracer()
                if tracer.enabled:
                    # Restarts are rare (one per >=100 conflicts), so a
                    # point event per restart is cheap and lets `repro
                    # trace` localize pathological search behaviour.
                    tracer.event(
                        "sat.restart",
                        conflicts=self.conflicts,
                        budget=conflict_budget,
                    )
                conflict_budget = 100 * _luby(restart_count + 1)
                conflicts_here = 0
                self._cancel_until(len(assumptions))
                continue

            # Apply pending assumptions as decisions.
            if self._decision_level() < len(assumptions):
                lit = assumptions[self._decision_level()]
                val = self.value(lit)
                if val == 0:
                    self._cancel_until(0)
                    self._log_empty(assumptions)
                    return False
                self.trail_lim.append(len(self.trail))
                if val == UNASSIGNED:
                    self._enqueue(lit, None)
                continue

            branch = self._pick_branch()
            if branch == 0:
                return True  # full assignment found
            self.trail_lim.append(len(self.trail))
            self._enqueue(branch, None)

    def simplify(self, dead_vars: set[int] | frozenset = frozenset()) -> None:
        """MiniSat-style root-level database simplification.

        Drops every clause satisfied at decision level 0 and strips
        falsified literals from the rest.  A retracted activation
        literal (asserted ``~sel`` at the root) permanently satisfies
        all of its scope's guard clauses -- and every learned clause
        that cites ``~sel`` -- so simplifying after a retraction keeps
        a long-lived session's watchlists and propagation frontier
        close to a freshly-built solver's.

        ``dead_vars`` are variables no longer referenced by any live
        assertion: Tseitin definition variables of evicted nodes, and
        theory-atom variables whose atom is suppressed (referenced only
        by retracted scopes).  Every clause citing one is deleted and
        the variable is *detached* from branching.  Sound in both
        directions: deletion never turns SAT into UNSAT, and the
        deleted clauses (definition cones, ordering lemmas, blocking
        clauses over dead atoms) are all consequences of the monotone
        semantic assertion set -- any model of the live constraints
        extends to one satisfying them, so UNSAT answers still rest
        only on live constraints, and SAT answers are re-validated by
        the theory on live atoms regardless.  ``add_clause`` revives a
        detached variable the moment a new clause cites it.
        """
        if not self.ok or self._decision_level() != 0:
            return
        if self._propagate() is not None:
            self._log_empty()
            self.ok = False
            return
        if dead_vars:
            self.detached |= dead_vars
            self.active_vars = [
                var for var in self.active_vars if var not in self.detached
            ]
        clauses: list[list[int]] = []
        steps: dict[int, int] = {}
        for ci, clause in enumerate(self.clauses):
            if dead_vars and any(abs(lit) in dead_vars for lit in clause):
                continue
            if any(self.value(lit) == 1 for lit in clause):
                continue
            lits = [lit for lit in clause if self.value(lit) != 0]
            # Propagation ran to fixpoint, so an unsatisfied clause has
            # at least two unassigned literals left to watch.
            step = self._clause_step.get(ci)
            if step is not None:
                steps[len(clauses)] = step
            clauses.append(lits)
        self.clauses = clauses
        self._clause_step = steps
        self.watches = {}
        for ci, clause in enumerate(clauses):
            self._watch(clause[0], ci)
            self._watch(clause[1], ci)
        # Root assignments are permanent facts now; conflict analysis
        # never resolves on level-0 literals, so their reason indices
        # (which pointed into the old clause list) can be cleared.
        for lit in self.trail:
            self.reason[abs(lit)] = None

    def model(self) -> list[bool]:
        """Model after a successful solve: ``model()[v]`` for variable v."""
        return [val == 1 for val in self.assign]

    def finish(self) -> None:
        """Return to level 0, keeping learnt clauses (call between solves)."""
        self._cancel_until(0)
