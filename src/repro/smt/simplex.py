"""General simplex for linear rational arithmetic with strict bounds.

This follows the classic Dutertre--de Moura construction used inside
DPLL(T) solvers: every distinct linear form gets a *slack* variable,
asserted constraints become bounds on slack variables, and a
Bland's-rule pivoting loop either finds an assignment within all bounds
or reports a minimal-ish infeasible set of constraint tags.

Strict inequalities are handled symbolically with *delta-rationals*
``r + k * delta`` where ``delta`` is an infinitesimal; a concrete
positive value for ``delta`` is computed after a satisfying assignment
is found (:func:`concretize_delta`).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Iterable, Mapping

from .formula import EQ, LE, LT, Atom
from .stats import GLOBAL_COUNTERS
from .terms import LinExpr, Var

Tag = Hashable


@dataclass(frozen=True)
class DeltaRational:
    """A value ``real + k * delta`` for an infinitesimal ``delta > 0``."""

    real: Fraction
    k: Fraction = Fraction(0)

    def __add__(self, other: "DeltaRational") -> "DeltaRational":
        return DeltaRational(self.real + other.real, self.k + other.k)

    def __sub__(self, other: "DeltaRational") -> "DeltaRational":
        return DeltaRational(self.real - other.real, self.k - other.k)

    def scale(self, factor: Fraction) -> "DeltaRational":
        return DeltaRational(self.real * factor, self.k * factor)

    def __lt__(self, other: "DeltaRational") -> bool:
        return (self.real, self.k) < (other.real, other.k)

    def __le__(self, other: "DeltaRational") -> bool:
        return (self.real, self.k) <= (other.real, other.k)

    def __gt__(self, other: "DeltaRational") -> bool:
        return (self.real, self.k) > (other.real, other.k)

    def __ge__(self, other: "DeltaRational") -> bool:
        return (self.real, self.k) >= (other.real, other.k)

    def __repr__(self) -> str:
        if self.k == 0:
            return str(self.real)
        return f"{self.real}{'+' if self.k > 0 else '-'}{abs(self.k)}d"


DR_ZERO = DeltaRational(Fraction(0))


def _dr(real: Fraction | int, k: Fraction | int = 0) -> DeltaRational:
    return DeltaRational(Fraction(real), Fraction(k))


@functools.lru_cache(maxsize=262_144)
def _describe_atom(
    atom: Atom,
) -> tuple[str, bool] | tuple[str, Fraction, Fraction, bool]:
    """Per-atom assertion preprocessing, memoised across Simplex
    instances (the DPLL(T) loop rebuilds the tableau every round, but
    the exact-rational normalisation of each atom never changes).

    Returns ``("const", holds)`` for constant atoms, else
    ``("bound", scale, rhs, strict)`` where the constraint is
    ``slack_form op rhs`` after dividing by ``scale``.
    """
    expr = atom.expr
    if expr.is_constant:
        return ("const", atom.holds(expr.const))
    if atom.op not in (LE, LT, EQ):
        raise ValueError(f"simplex cannot assert op {atom.op!r} directly")
    scale = Fraction(1)
    if len(expr.coeffs) == 1:
        (var,) = expr.coeffs
        scale = expr.coeffs[var]
    rhs = -expr.const / scale if scale != 1 else -expr.const
    return ("bound", scale, rhs, atom.op == LT)


class TheoryConflict(Exception):
    """An asserted constraint set is infeasible; carries the core tags.

    ``farkas`` justifies the conflict as a rational combination: a list
    of ``(coeff, tag, expr, op)`` tuples such that ``sum(coeff * expr)``
    cancels every variable and violates the combined comparison (see
    :mod:`repro.smt.proof`).  ``cert`` is the composed certificate tree
    attached by the theory layer (:mod:`repro.smt.theory`).
    """

    def __init__(
        self,
        core: frozenset[Tag],
        *,
        farkas: tuple[tuple[Fraction, Tag, LinExpr, str], ...] | None = None,
        cert: object | None = None,
    ) -> None:
        super().__init__(f"theory conflict: {sorted(map(str, core))}")
        self.core = core
        self.farkas = farkas
        self.cert = cert


@dataclass
class _Bound:
    """An asserted bound plus the data to rebuild its Farkas witness.

    ``mu`` is the positive-for-inequalities scalar such that the bound's
    defining inequality, rewritten over the original variables, equals
    ``mu * expr`` -- an upper bound ``v <= rhs`` is ``expr / scale <= 0``
    and a lower bound ``v >= rhs`` is ``-expr / scale <= 0``.
    """

    value: DeltaRational
    tag: Tag
    mu: Fraction
    expr: LinExpr
    op: str


class Simplex:
    """Feasibility checker for conjunctions of linear constraints.

    Usage::

        s = Simplex()
        s.assert_atom(Atom(expr, LE), tag="c1")
        model = s.check()          # {Var: DeltaRational} or TheoryConflict

    Constraints are expressed as atoms ``expr op 0`` with op in
    ``<=, <, =``.  Asserted-false atoms must be negated by the caller
    before being fed here.
    """

    def __init__(self) -> None:
        self._order: dict[Var, int] = {}  # Bland's rule ordering
        self._slack_count = 0
        self._slack_of_form: dict[frozenset[tuple[Var, Fraction]], Var] = {}
        # rows: basic -> {nonbasic: coeff}; basic = sum coeff * nonbasic
        self.rows: dict[Var, dict[Var, Fraction]] = {}
        self.lower: dict[Var, _Bound] = {}
        self.upper: dict[Var, _Bound] = {}
        self.beta: dict[Var, DeltaRational] = {}
        self._strict_atoms: list[tuple[LinExpr, Tag]] = []

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    def _intern(self, var: Var) -> Var:
        if var not in self._order:
            self._order[var] = len(self._order)
            self.beta[var] = DR_ZERO
        return var

    def _slack_for(self, expr: LinExpr) -> Var:
        """Slack variable for the homogeneous part of ``expr``.

        Two constraints over the same linear form (up to the constant)
        share a slack variable, which is what lets the tableau detect
        their interaction.
        """
        key = frozenset(expr.coeffs.items())
        slack = self._slack_of_form.get(key)
        if slack is not None:
            return slack
        if len(expr.coeffs) == 1:
            # A single-variable form c*x needs no slack row: bounds are
            # asserted directly on x after dividing by c.
            (var,) = expr.coeffs
            self._intern(var)
            self._slack_of_form[key] = var
            return var
        self._slack_count += 1
        slack = Var(f"__slack{self._slack_count}", "real")
        self._intern(slack)
        row: dict[Var, Fraction] = {}
        for var, coeff in expr.coeffs.items():
            self._intern(var)
            row[var] = coeff
        self.rows[slack] = row
        self.beta[slack] = self._row_value(row)
        self._slack_of_form[key] = slack
        return slack

    def _row_value(self, row: Mapping[Var, Fraction]) -> DeltaRational:
        total = DR_ZERO
        for var, coeff in row.items():
            total = total + self.beta[var].scale(coeff)
        return total

    # ------------------------------------------------------------------
    # Assertions
    # ------------------------------------------------------------------
    def assert_atom(self, atom: Atom, tag: Tag) -> None:
        """Assert ``atom.expr atom.op 0``.  Raises TheoryConflict."""
        descriptor = _describe_atom(atom)
        if descriptor[0] == "const":
            if not descriptor[1]:
                raise TheoryConflict(
                    frozenset([tag]), farkas=(_const_refutation(atom, tag),)
                )
            return
        _, scale, rhs, strict = descriptor
        expr = atom.expr
        slack = self._slack_for(expr)
        if strict:
            self._strict_atoms.append((expr, tag))
        if atom.op == EQ:
            inv = Fraction(1) / scale
            self._assert_upper(
                slack, _Bound(_dr(rhs), tag, inv, expr, atom.op)
            )
            self._assert_lower(
                slack, _Bound(_dr(rhs), tag, -inv, expr, atom.op)
            )
        elif scale > 0:
            bound = _dr(rhs, -1 if strict else 0)
            self._assert_upper(
                slack, _Bound(bound, tag, Fraction(1) / scale, expr, atom.op)
            )
        else:
            # Dividing by a negative scale flips the inequality.
            bound = _dr(rhs, 1 if strict else 0)
            self._assert_lower(
                slack, _Bound(bound, tag, Fraction(-1) / scale, expr, atom.op)
            )

    def _assert_upper(self, var: Var, new: _Bound) -> None:
        value = new.value
        low = self.lower.get(var)
        if low is not None and value < low.value:
            raise TheoryConflict(
                frozenset([new.tag, low.tag]),
                farkas=_merge_farkas([(Fraction(1), new), (Fraction(1), low)]),
            )
        up = self.upper.get(var)
        if up is not None and up.value <= value:
            return
        self.upper[var] = new
        if var not in self.rows and self.beta[var] > value:
            self._update(var, value)

    def _assert_lower(self, var: Var, new: _Bound) -> None:
        value = new.value
        up = self.upper.get(var)
        if up is not None and up.value < value:
            raise TheoryConflict(
                frozenset([new.tag, up.tag]),
                farkas=_merge_farkas([(Fraction(1), new), (Fraction(1), up)]),
            )
        low = self.lower.get(var)
        if low is not None and low.value >= value:
            return
        self.lower[var] = new
        if var not in self.rows and self.beta[var] < value:
            self._update(var, value)

    # ------------------------------------------------------------------
    # Pivoting
    # ------------------------------------------------------------------
    def _update(self, nonbasic: Var, value: DeltaRational) -> None:
        delta = value - self.beta[nonbasic]
        for basic, row in self.rows.items():
            coeff = row.get(nonbasic)
            if coeff:
                self.beta[basic] = self.beta[basic] + delta.scale(coeff)
        self.beta[nonbasic] = value

    def _pivot_and_update(self, basic: Var, nonbasic: Var, value: DeltaRational) -> None:
        row = self.rows[basic]
        a = row[nonbasic]
        theta = (value - self.beta[basic]).scale(Fraction(1) / a)
        self.beta[basic] = value
        self.beta[nonbasic] = self.beta[nonbasic] + theta
        for other_basic, other_row in self.rows.items():
            if other_basic is basic:
                continue
            coeff = other_row.get(nonbasic)
            if coeff:
                self.beta[other_basic] = self.beta[other_basic] + theta.scale(coeff)
        self._pivot(basic, nonbasic)

    def _pivot(self, basic: Var, nonbasic: Var) -> None:
        """Swap roles of ``basic`` (leaves) and ``nonbasic`` (enters basis)."""
        GLOBAL_COUNTERS.pivots += 1
        row = self.rows.pop(basic)
        a = row.pop(nonbasic)
        # nonbasic = (basic - sum(other coeffs)) / a
        new_row: dict[Var, Fraction] = {basic: Fraction(1) / a}
        for var, coeff in row.items():
            new_row[var] = -coeff / a
        self.rows[nonbasic] = new_row
        for other_basic in list(self.rows):
            if other_basic is nonbasic:
                continue
            other_row = self.rows[other_basic]
            coeff = other_row.pop(nonbasic, None)
            if coeff is None or coeff == 0:
                continue
            for var, sub_coeff in new_row.items():
                merged = other_row.get(var, Fraction(0)) + coeff * sub_coeff
                if merged == 0:
                    other_row.pop(var, None)
                else:
                    other_row[var] = merged

    # ------------------------------------------------------------------
    # Main check loop
    # ------------------------------------------------------------------
    def check(self) -> dict[Var, DeltaRational]:
        """Find an assignment within all bounds or raise TheoryConflict."""
        while True:
            violating = self._find_violating_basic()
            if violating is None:
                return {
                    var: self.beta[var]
                    for var in self._order
                    if not var.name.startswith("__slack")
                }
            basic, needs_increase = violating
            target = (
                self.lower[basic].value if needs_increase else self.upper[basic].value
            )
            entering = self._find_entering(basic, needs_increase)
            if entering is None:
                raise self._conflict(basic, needs_increase)
            self._pivot_and_update(basic, entering, target)

    def _find_violating_basic(self) -> tuple[Var, bool] | None:
        best: tuple[int, Var, bool] | None = None
        for basic in self.rows:
            value = self.beta[basic]
            low = self.lower.get(basic)
            if low is not None and value < low.value:
                cand = (self._order[basic], basic, True)
                if best is None or cand[0] < best[0]:
                    best = cand
                continue
            up = self.upper.get(basic)
            if up is not None and value > up.value:
                cand = (self._order[basic], basic, False)
                if best is None or cand[0] < best[0]:
                    best = cand
        if best is None:
            return None
        return best[1], best[2]

    def _find_entering(self, basic: Var, needs_increase: bool) -> Var | None:
        """Bland's rule: smallest-index nonbasic that can move ``basic``."""
        row = self.rows[basic]
        best: tuple[int, Var] | None = None
        for nonbasic, coeff in row.items():
            if coeff == 0:
                continue
            if needs_increase:
                movable = (coeff > 0 and self._can_increase(nonbasic)) or (
                    coeff < 0 and self._can_decrease(nonbasic)
                )
            else:
                movable = (coeff > 0 and self._can_decrease(nonbasic)) or (
                    coeff < 0 and self._can_increase(nonbasic)
                )
            if movable:
                cand = (self._order[nonbasic], nonbasic)
                if best is None or cand[0] < best[0]:
                    best = cand
        return None if best is None else best[1]

    def _can_increase(self, var: Var) -> bool:
        up = self.upper.get(var)
        return up is None or self.beta[var] < up.value

    def _can_decrease(self, var: Var) -> bool:
        low = self.lower.get(var)
        return low is None or self.beta[var] > low.value

    def _conflict(self, basic: Var, needs_increase: bool) -> TheoryConflict:
        """Conflict core plus its Farkas witness.

        The violated row reads ``basic = sum(coeff * nonbasic)``.  The
        witness combines each blocking bound's defining inequality with
        the weight the row assigns it: weight 1 on the violated bound of
        ``basic``, ``|coeff|`` on the bound of each nonbasic -- the row
        identity makes the variable parts cancel, which the independent
        auditor re-verifies over the original atom expressions.
        """
        row = self.rows[basic]
        uses: list[tuple[Fraction, _Bound]] = []
        if needs_increase:
            uses.append((Fraction(1), self.lower[basic]))
            for nonbasic, coeff in row.items():
                if coeff > 0:
                    uses.append((coeff, self.upper[nonbasic]))
                elif coeff < 0:
                    uses.append((-coeff, self.lower[nonbasic]))
        else:
            uses.append((Fraction(1), self.upper[basic]))
            for nonbasic, coeff in row.items():
                if coeff > 0:
                    uses.append((coeff, self.lower[nonbasic]))
                elif coeff < 0:
                    uses.append((-coeff, self.upper[nonbasic]))
        return TheoryConflict(
            frozenset(bound.tag for _, bound in uses),
            farkas=_merge_farkas(uses),
        )


def _merge_farkas(
    uses: Iterable[tuple[Fraction, _Bound]],
) -> tuple[tuple[Fraction, Tag, LinExpr, str], ...]:
    """Aggregate weighted bound uses into per-tag Farkas coefficients.

    An equality atom can appear through both of its bounds in one
    conflict; its signed contributions are summed (any sign is valid
    for an ``=`` constraint).
    """
    merged: dict[Tag, tuple[Fraction, LinExpr, str]] = {}
    for weight, bound in uses:
        coeff = weight * bound.mu
        prior = merged.get(bound.tag)
        if prior is not None:
            coeff = prior[0] + coeff
        merged[bound.tag] = (coeff, bound.expr, bound.op)
    return tuple(
        (coeff, tag, expr, op) for tag, (coeff, expr, op) in merged.items()
    )


def _const_refutation(
    atom: Atom, tag: Tag
) -> tuple[Fraction, Tag, LinExpr, str]:
    """Farkas entry refuting a constant atom that evaluates to false."""
    sign = Fraction(-1) if atom.op == EQ and atom.expr.const < 0 else Fraction(1)
    return (sign, tag, atom.expr, atom.op)


def concretize_delta(
    assignment: Mapping[Var, DeltaRational],
    strict_exprs: Iterable[LinExpr],
    nonstrict_exprs: Iterable[LinExpr] = (),
) -> Fraction:
    """A concrete positive value for delta validating all asserted atoms.

    Given a delta-rational assignment that satisfies every asserted
    constraint symbolically, every ``expr < 0`` atom evaluates to
    ``r + k*delta`` with either ``r < 0`` or (``r == 0`` and ``k < 0``),
    and any delta below ``min(-r/k)`` over atoms with ``k > 0`` keeps it
    negative.  Non-strict ``expr <= 0`` atoms with ``r < 0 < k`` impose
    the same cap (``delta <= -r/k``): ignoring them can push the
    concrete point past a competing weak bound.  Also capped at 1.
    """
    bound = Fraction(1)
    for strict, exprs in ((True, strict_exprs), (False, nonstrict_exprs)):
        for expr in exprs:
            real = expr.const
            k = Fraction(0)
            for var, coeff in expr.coeffs.items():
                value = assignment[var]
                real += coeff * value.real
                k += coeff * value.k
            if k > 0:
                # real + k*delta (<|<=) 0 requires delta (<|<=) -real/k.
                limit = -real / k
                if limit <= 0:
                    # delta must be positive, so a zero cap is already
                    # a symbolic violation.
                    raise AssertionError("atom infeasible at concretization")
                bound = min(bound, limit / 2 if strict else limit)
    return bound


def concrete_model(
    assignment: Mapping[Var, DeltaRational],
    strict_exprs: Iterable[LinExpr],
    nonstrict_exprs: Iterable[LinExpr] = (),
) -> dict[Var, Fraction]:
    """Substitute a concrete delta into a delta-rational assignment."""
    delta = concretize_delta(assignment, strict_exprs, nonstrict_exprs)
    return {var: value.real + value.k * delta for var, value in assignment.items()}
