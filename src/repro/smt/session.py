"""Persistent incremental SMT sessions with activation literals.

The CEGIS loop (Alg. 1 of the paper) issues dozens of checks per
synthesized query -- GenerateSamples, Verify, CounterT, CounterF --
over formulas that share almost all structure: the linearized original
predicate ``p`` is fixed, only the candidate ``p1``, blocking clauses
and probe points change between iterations.  Constructing a fresh
:class:`~repro.smt.solver.Solver` per check (the historical pattern)
re-encodes the CNF, re-registers atoms, and throws away every learned
clause, VSIDS activity, saved phase and bound chain.

:class:`SmtSession` keeps **one** solver warm for a whole lifetime:

* *Base* formulas are asserted once and hold for every later check.
* Per-iteration formulas go into a :class:`Scope` guarded by a fresh
  MiniSat-style **activation literal** ``sel``: each formula ``F`` is
  asserted as the implication ``~sel | F``, and a check *assumes*
  ``sel`` to activate the scope.  Retracting the scope permanently
  asserts ``~sel``, which satisfies all its guard clauses without
  deleting anything.
* Clauses the CDCL core learns while a scope is active are derived by
  resolution over the clause database only (assumptions enter the
  search as decisions, never as axioms), so they remain sound after
  the scope is retracted -- the core stays warm across iterations.

Proof-logging is deliberately *not* threaded through the warm path:
a certificate must justify every clause in the log, and guard clauses
of long-retracted scopes would bloat and obscure the audit trail.
Certified checks (``proof=True`` callers) instead use
:meth:`SmtSession.certified_check`, which runs a sealed fresh solver
over exactly the formulas under audit -- see docs/INTERNALS.md,
"Incremental sessions".
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator

from .formula import (
    EQ,
    LT,
    NE,
    And,
    Atom,
    BVar,
    Formula,
    Not,
    Or,
    disj,
    negate,
    to_nnf,
)
from ..obs.clock import now as _clock_now
from ..obs.metrics import GLOBAL_METRICS
from ..obs.trace import get_tracer
from .solver import Model, Solver
from .stats import GLOBAL_COUNTERS

__all__ = [
    "Scope",
    "SessionLease",
    "SessionPool",
    "SmtSession",
    "certified_solver",
    "install_session_pool",
    "lease_session",
    "session_pool",
    "uninstall_session_pool",
]


def _atom_footprint(formula: Formula) -> set:
    """Every leaf atom the solver may register while encoding ``formula``.

    The raw ``formula.atoms()`` underestimate the encoded vocabulary:
    NNF pushes negations onto atoms (producing the *complement* atom
    objects, e.g. ``~(e <= 0)`` becomes ``-e < 0``), and equality /
    disequality atoms split into strict pairs (``to_nnf`` with
    ``split_ne``, or the solver's on-demand trichotomy lemma).  The
    suppression bookkeeping must count the atoms the solver actually
    registers, so it closes over both polarities and the splits.
    """
    out: set = set()
    for atom in formula.atoms():
        expr = atom.expr
        if atom.op in (EQ, NE):
            out.add(Atom(expr, EQ))
            out.add(Atom(expr, NE))
            out.add(Atom(expr, LT))
            out.add(Atom(-expr, LT))
        else:
            out.add(atom)
            out.add(atom.negated())
    return out


def _connective_nodes(formula: Formula) -> list:
    """Interned ``And``/``Or`` nodes of the NNF the encoder will build.

    These are exactly the keys of the CNF builder's definition cache
    (``assert_formula`` NNF-normalizes with the same defaults), so the
    session can refcount them per scope and have the solver delete a
    retracted candidate's whole Tseitin cone once nothing live shares
    its sub-formulas.
    """
    nnf = to_nnf(formula)
    out: list = []
    stack = [nnf]
    seen: set = set()
    while stack:
        node = stack.pop()
        if isinstance(node, (And, Or)) and node not in seen:
            seen.add(node)
            out.append(node)
            stack.extend(node.args)
    return out

#: Process-wide source of unique activation-literal names.  Selector
#: variables live in the same interned BVar namespace as user formulas;
#: the dunder prefix plus a process-unique counter keeps them out of
#: the way of SQL-derived names.
_SELECTOR_PREFIX = "__sia_sel_"
_selector_ids = itertools.count()

#: Retractions between clause-database compactions.  Suppressing dead
#: atoms from theory rounds is O(1) and happens on every retract, but
#: deleting their clauses (`Solver.compact`) walks the whole database;
#: batching keeps short-lived sessions from paying that walk per
#: iteration while still bounding garbage on long-lived ones.
_COMPACT_INTERVAL = 8


class Scope:
    """A retractable group of assertions guarded by one activation literal.

    Obtained from :meth:`SmtSession.push`; do not construct directly.
    """

    __slots__ = ("_session", "selector", "label", "_active", "_atoms", "_nodes")

    def __init__(self, session: "SmtSession", selector: BVar, label: str) -> None:
        self._session = session
        self.selector = selector
        self.label = label
        self._active = True
        self._atoms: list = []  # leaf atoms this scope references
        self._nodes: list = []  # NNF connective nodes this scope references

    @property
    def active(self) -> bool:
        """Whether the scope still participates in checks by default."""
        return self._active

    def add(self, *formulas: Formula) -> None:
        """Assert more formulas under this scope's activation literal."""
        if not self._active:
            raise ValueError(f"scope {self.label!r} is already retracted")
        self._session._assert_guarded(self, formulas)

    def retract(self) -> None:
        """Permanently retire the scope.

        Asserts the negated selector, which satisfies every guard
        clause of the scope; learned clauses survive (they are sound
        consequences of the clause database alone).  Idempotent.
        """
        if not self._active:
            return
        self._active = False
        self._session._on_retract(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self._active else "retracted"
        return f"Scope({self.label!r}, {state})"


class SmtSession:
    """A long-lived incremental solving session (see module docstring)."""

    def __init__(
        self,
        *,
        bnb_budget: int = 4000,
        ordering_lemmas: bool = True,
        minimize_cores: bool = False,
        max_rounds: int = 50_000,
        float_filter: str | None = None,
    ) -> None:
        GLOBAL_COUNTERS.sessions_created += 1
        self._solver = Solver(
            bnb_budget=bnb_budget,
            ordering_lemmas=ordering_lemmas,
            minimize_cores=minimize_cores,
            max_rounds=max_rounds,
            float_filter=float_filter,
        )
        self._default_budget = bnb_budget
        self._float_filter = float_filter
        self._scopes: list[Scope] = []
        self._checks = 0
        # Theory-relevance bookkeeping: an atom referenced only by
        # retracted scopes is suppressed from theory rounds (see
        # Solver.suppress_atoms); base atoms are live forever.
        self._base_atoms: set = set()
        self._scope_atom_refs: dict = {}
        # Tseitin-cone bookkeeping, same refcount discipline at the
        # level of NNF connective nodes: a node referenced only by
        # retracted scopes has its definition clauses deleted outright
        # (see Solver.compact).
        self._base_nodes: set = set()
        self._scope_node_refs: dict = {}
        # Deferred compaction state: atoms/nodes that died but whose
        # clauses have not been collected yet.  A re-assertion before
        # the flush revives them (they must leave these sets, or the
        # flush would delete live clauses).
        self._pending_dead_atoms: set = set()
        self._pending_dead_nodes: set = set()
        self._retracts_since_compact = 0

    # ------------------------------------------------------------------
    # Assertions
    # ------------------------------------------------------------------
    def assert_base(self, *formulas: Formula) -> None:
        """Assert formulas that hold for the rest of the session."""
        for formula in formulas:
            atoms = _atom_footprint(formula)
            self._base_atoms.update(atoms)
            self._pending_dead_atoms.difference_update(atoms)
            nodes = _connective_nodes(formula)
            self._base_nodes.update(nodes)
            self._pending_dead_nodes.difference_update(nodes)
            self._solver.unsuppress_atoms(atoms)
        self._solver.add(*formulas)

    def push(self, *formulas: Formula, label: str = "") -> Scope:
        """Open a retractable scope asserting ``formulas`` under a guard."""
        name = f"{_SELECTOR_PREFIX}{next(_selector_ids)}__"
        scope = Scope(self, BVar(name), label or name)
        self._scopes.append(scope)
        GLOBAL_COUNTERS.scopes_opened += 1
        if formulas:
            self._assert_guarded(scope, formulas)
        return scope

    def _assert_guarded(self, scope: Scope, formulas: Iterable[Formula]) -> None:
        guard = Not(scope.selector)
        for formula in formulas:
            atoms = _atom_footprint(formula)
            self._pending_dead_atoms.difference_update(atoms)
            for atom in atoms:
                scope._atoms.append(atom)
                self._scope_atom_refs[atom] = (
                    self._scope_atom_refs.get(atom, 0) + 1
                )
            self._solver.unsuppress_atoms(atoms)
            guarded = disj([guard, formula])
            for node in _connective_nodes(guarded):
                self._pending_dead_nodes.discard(node)
                scope._nodes.append(node)
                self._scope_node_refs[node] = (
                    self._scope_node_refs.get(node, 0) + 1
                )
            self._solver.add(guarded)

    def _on_retract(self, scope: Scope) -> None:
        self._scopes.remove(scope)
        self._solver.add(negate(scope.selector))
        GLOBAL_COUNTERS.scopes_retracted += 1
        dead = []
        for atom in scope._atoms:
            remaining = self._scope_atom_refs[atom] - 1
            if remaining:
                self._scope_atom_refs[atom] = remaining
            else:
                del self._scope_atom_refs[atom]
                if atom not in self._base_atoms:
                    dead.append(atom)
        scope._atoms.clear()
        dead_nodes = []
        for node in scope._nodes:
            remaining = self._scope_node_refs[node] - 1
            if remaining:
                self._scope_node_refs[node] = remaining
            else:
                del self._scope_node_refs[node]
                if node not in self._base_nodes:
                    dead_nodes.append(node)
        scope._nodes.clear()
        if dead:
            self._solver.suppress_atoms(dead)
            self._pending_dead_atoms.update(dead)
        self._pending_dead_nodes.update(dead_nodes)
        self._retracts_since_compact += 1
        if self._retracts_since_compact >= _COMPACT_INTERVAL:
            self._flush_compaction()

    def _flush_compaction(self) -> None:
        """Run the deferred clause-database collection (see module doc)."""
        self._solver.compact(
            self._pending_dead_nodes, dead_atoms=self._pending_dead_atoms
        )
        self._pending_dead_nodes.clear()
        self._pending_dead_atoms.clear()
        self._retracts_since_compact = 0

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def check(
        self,
        assumptions: list[Formula] | None = None,
        *,
        disable: Iterable[Scope] = (),
        bnb_budget: int | None = None,
    ) -> str:
        """Run one check; returns ``"sat"`` or ``"unsat"``.

        Every active scope's selector is assumed true, so scoped
        assertions constrain the check exactly as if they were base
        formulas; scopes listed in ``disable`` sit this check out
        (dormant, not retracted).  ``assumptions`` are extra
        literal-shaped formulas for this call only.  ``bnb_budget``
        overrides the theory budget for this check.
        """
        GLOBAL_COUNTERS.session_checks += 1
        self._checks += 1
        skip = set(map(id, disable))
        lits: list[Formula] = [
            scope.selector for scope in self._scopes if id(scope) not in skip
        ]
        transient: list = []
        if assumptions:
            lits.extend(assumptions)
            # Assumption atoms constrain this check only: make their
            # footprint live for the call, then retire whatever no base
            # formula or active scope references (one-shot probe atoms
            # would otherwise stay in every later theory round).
            for formula in assumptions:
                leaf = formula.arg if isinstance(formula, Not) else formula
                if not isinstance(leaf, Atom):
                    continue
                for atom in _atom_footprint(leaf):
                    if (
                        atom not in self._base_atoms
                        and not self._scope_atom_refs.get(atom)
                    ):
                        transient.append(atom)
            self._solver.unsuppress_atoms(transient)
        self._solver.bnb_budget = (
            self._default_budget if bnb_budget is None else bnb_budget
        )
        tracer = get_tracer()
        span = (
            tracer.span(
                "smt.check",
                counters=True,
                scopes=len(lits) - len(assumptions or []),
                assumptions=len(assumptions or []),
            )
            if tracer.smt_spans
            else None
        )
        start = _clock_now()
        try:
            if span is None:
                return self._solver.check(assumptions=lits)
            with span:
                verdict = self._solver.check(assumptions=lits)
                span.set(verdict=verdict)
                return verdict
        finally:
            GLOBAL_METRICS.timer("smt.session_check_ms").record(
                # int literal: the ms conversion must not trip the
                # exact-zone float audit (test_float_purity whitelist)
                (_clock_now() - start) * 1000
            )
            if transient:
                self._solver.suppress_atoms(transient)

    def model(self) -> Model:
        """Model of the last satisfiable :meth:`check`."""
        # Delegating accessor: the wrapped solver enforces the
        # checked-verdict contract and raises on a stale read.
        return self._solver.model()  # sia: allow(SIA008)

    @property
    def checks_served(self) -> int:
        """Number of checks this session has run (reuse metric)."""
        return self._checks

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Retract every scope still active and flush compaction.

        Sessions abandoned with live scopes used to leave
        ``scopes_opened`` permanently ahead of ``scopes_retracted``
        (the ``scopes_retracted: 0`` artifact in the cold-path bench
        rows), skewing scope-accounting comparisons between workloads.
        Teardown now retracts whatever is left so the counters balance
        and the clause database is collected once.  Idempotent; the
        session remains usable for base-level checks afterwards.
        """
        for scope in list(self._scopes):
            scope.retract()
        if self._pending_dead_atoms or self._pending_dead_nodes:
            self._flush_compaction()

    # ------------------------------------------------------------------
    # Certified fallback
    # ------------------------------------------------------------------
    def certified_check(
        self,
        formulas: Iterable[Formula],
        *,
        bnb_budget: int | None = None,
    ) -> Solver:
        """Check ``formulas`` on a sealed fresh proof-logging solver.

        The warm solver's clause database mixes guard clauses from many
        retracted scopes, which a certificate auditor would have to
        wade through; certified verdicts instead come from a fresh
        ``proof=True`` solver holding exactly the audited formulas.
        Returns the solver after :meth:`~repro.smt.solver.Solver.check`
        so callers can read the verdict from ``proof_log.result``,
        fetch a model, and hand the log to the auditor.
        """
        return certified_solver(
            formulas,
            bnb_budget=self._default_budget if bnb_budget is None else bnb_budget,
            float_filter=self._float_filter,
        )


def certified_solver(
    formulas: Iterable[Formula],
    *,
    bnb_budget: int = 4000,
    float_filter: str | None = None,
) -> Solver:
    """Sealed fresh proof-logging solver over ``formulas``, checked.

    The canonical entry point for certified verdicts (see
    :meth:`SmtSession.certified_check`); callers read the verdict from
    ``proof_log.result`` and hand the log to the auditor.  The float
    tier composes with proof logging: its verdicts are advisory and
    every certificate is re-derived exactly, so a certified check may
    still run the filter.
    """
    GLOBAL_COUNTERS.proof_fallbacks += 1
    solver = Solver(bnb_budget=bnb_budget, proof=True, float_filter=float_filter)
    solver.add(*formulas)
    solver.check()
    return solver


# ----------------------------------------------------------------------
# Session pooling: warm sessions reused *across* enumerations/queries
# ----------------------------------------------------------------------
#: Leases served per idle pooled session before the LRU evicts it.
_POOL_CAPACITY = 16


class SessionPool:
    """Keyed LRU cache of warm, idle :class:`SmtSession` instances.

    The session lifecycle work (PR 3) amortizes solver construction
    *within* one enumeration; every ``Sampler.sample`` call and every
    synthesized query still built its sessions from cold (the
    ``sessions_created == scopes_opened`` artifact in the cold-path
    bench rows).  The pool closes that gap: sessions are keyed by
    ``(base formulas, bnb_budget, float_filter)`` -- base formulas are
    hash-consed, so the *same* predicate produces the *same* key -- and
    an idle session whose key recurs is handed back warm, learned
    clauses, saved phases and bound chains intact.

    The pool holds only **idle** sessions; a checked-out session is
    exclusively owned by its :class:`SessionLease` until released.
    Capacity-bounded LRU: the least-recently-released session is closed
    and dropped when the pool overflows.

    Determinism: a pooled hit resumes warm CDCL state, so the solver
    may enumerate models in a different order than a fresh session
    would.  Pools are therefore **opt-in** (installed per worker
    process by the parallel driver, or explicitly via
    :func:`session_pool`); with the same pool lifecycle and the same
    lease order, runs are bit-reproducible -- the parallel driver's
    query-granular tasks keep each query's cells in canonical order on
    one worker for exactly this reason.
    """

    def __init__(self, capacity: int = _POOL_CAPACITY) -> None:
        self._capacity = max(capacity, 1)
        self._idle: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._idle)

    def acquire(
        self, key: tuple, factory: Callable[[], SmtSession]
    ) -> SmtSession:
        """A warm session for ``key``, or a fresh one from ``factory``."""
        session = self._idle.pop(key, None)
        if session is not None:
            self.hits += 1
            GLOBAL_COUNTERS.sessions_reused += 1
            return session
        self.misses += 1
        return factory()

    def release(self, key: tuple, session: SmtSession) -> None:
        """Return an idle session (lease scopes already retracted)."""
        if key in self._idle:
            # A sibling lease for the same key released first; keep the
            # resident session (it has served more checks) and retire
            # the duplicate.
            session.close()
            return
        self._idle[key] = session
        while len(self._idle) > self._capacity:
            _, evicted = self._idle.popitem(last=False)
            evicted.close()
            self.evictions += 1

    def close(self) -> None:
        """Close and drop every idle session."""
        for session in self._idle.values():
            session.close()
        self._idle.clear()

    def stats(self) -> dict:
        """Pure-JSON pool effectiveness summary."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "idle": len(self._idle),
        }


class SessionLease:
    """A session checked out for one enumeration or verification.

    The lease is the compatibility shim that makes pooling sound:
    enumerators historically assert blocking clauses with
    :meth:`SmtSession.assert_base` (permanent), which would poison a
    reused session -- earlier blocked points would silently constrain
    later enumerations over the same base.  A *pooled* lease therefore
    routes :meth:`add` through one retractable work scope, and
    :meth:`release` retracts it (plus any scopes pushed through the
    lease) before handing the session back.  An *unpooled* lease
    degrades to the historical behavior: permanent assertions on a
    private session, closed on release.
    """

    __slots__ = ("session", "_pool", "_key", "_work", "_scopes", "_released")

    def __init__(
        self,
        session: SmtSession,
        pool: SessionPool | None,
        key: tuple,
    ) -> None:
        self.session = session
        self._pool = pool
        self._key = key
        self._work = (
            session.push(label="lease-work") if pool is not None else None
        )
        self._scopes: list[Scope] = []
        self._released = False

    def add(self, *formulas: Formula) -> None:
        """Assert formulas for the lifetime of this lease."""
        if self._work is not None:
            self._work.add(*formulas)
        else:
            self.session.assert_base(*formulas)

    def push(self, *formulas: Formula, label: str = "") -> Scope:
        """Open a scope that is retracted automatically on release."""
        scope = self.session.push(*formulas, label=label)
        self._scopes.append(scope)
        return scope

    def check(
        self,
        assumptions: list[Formula] | None = None,
        *,
        disable: Iterable[Scope] = (),
        bnb_budget: int | None = None,
    ) -> str:
        return self.session.check(
            assumptions, disable=disable, bnb_budget=bnb_budget
        )

    def model(self) -> Model:
        # sia: allow(SIA008) -- pure delegator; the check/model pairing
        # is the caller's (and SmtSession.model's own guard) to hold.
        return self.session.model()

    def release(self) -> None:
        """Retract lease state and return/close the session.  Idempotent."""
        if self._released:
            return
        self._released = True
        for scope in self._scopes:
            scope.retract()
        self._scopes.clear()
        if self._work is not None:
            self._work.retract()
        if self._pool is not None:
            self._pool.release(self._key, self.session)
        else:
            self.session.close()


#: The installed pool, if any.  Per process: spawn workers install
#: their own in their worker main, so pooled sessions never cross a
#: process boundary.
_ACTIVE_POOL: SessionPool | None = None


def install_session_pool(pool: SessionPool | None = None) -> SessionPool:
    """Install ``pool`` (or a fresh one) as the process's active pool.

    Replaces any previously installed pool (closing its idle
    sessions); leases already checked out from the old pool release
    back into it harmlessly -- it just never hands sessions out again.
    """
    global _ACTIVE_POOL
    if _ACTIVE_POOL is not None:
        _ACTIVE_POOL.close()
    _ACTIVE_POOL = pool if pool is not None else SessionPool()
    return _ACTIVE_POOL


def uninstall_session_pool() -> None:
    """Close and remove the active pool (no-op when none installed)."""
    global _ACTIVE_POOL
    pool, _ACTIVE_POOL = _ACTIVE_POOL, None
    if pool is not None:
        pool.close()


@contextmanager
def session_pool(capacity: int = _POOL_CAPACITY) -> Iterator[SessionPool]:
    """Context-managed :func:`install_session_pool`."""
    pool = install_session_pool(SessionPool(capacity))
    try:
        yield pool
    finally:
        uninstall_session_pool()


def lease_session(
    base: Iterable[Formula],
    *,
    bnb_budget: int = 4000,
    float_filter: str | None = None,
) -> SessionLease:
    """Check out a session with ``base`` asserted permanently.

    With a pool installed (see :func:`install_session_pool`) the lease
    reuses an idle warm session whose ``(base, bnb_budget,
    float_filter)`` key matches -- base formulas are interned, so
    structural equality is identity here.  Without a pool this is
    exactly the historical fresh-session path.
    """
    base = tuple(base)
    pool = _ACTIVE_POOL
    key = (base, bnb_budget, float_filter)

    def factory() -> SmtSession:
        session = SmtSession(bnb_budget=bnb_budget, float_filter=float_filter)
        session.assert_base(*base)
        return session

    if pool is None:
        return SessionLease(factory(), None, key)
    return SessionLease(pool.acquire(key, factory), pool, key)
