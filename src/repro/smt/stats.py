"""Process-wide solver instrumentation counters.

The warm-session work (docs/INTERNALS.md, "Incremental sessions")
is justified by *measured* reductions in solver construction and
re-encoding work, so the substrate keeps cheap monotone counters that
the micro-benchmarks (``benchmarks/bench_smt_micro.py``) and the
parallel workload driver snapshot around their workloads:

* ``solvers_constructed`` -- ``Solver`` instances built (each one
  re-encodes CNF and grows a cold CDCL core from nothing),
* ``checks`` -- top-level ``Solver.check`` calls,
* ``clauses_learned`` -- CDCL conflict clauses learned,
* ``restarts`` -- CDCL Luby restarts,
* ``pivots`` -- simplex pivot operations,
* ``sessions_created`` / ``session_checks`` -- :class:`SmtSession`
  instances and the checks they served (``session_checks /
  sessions_created`` is the session-reuse factor),
* ``sessions_reused`` -- session-pool hits
  (:class:`~repro.smt.session.SessionPool`): a lease request served by
  a warm pooled session instead of constructing a fresh one, so
  ``sessions_reused / (sessions_created + sessions_reused)`` is the
  pool hit rate,
* ``scopes_opened`` / ``scopes_retracted`` -- activation-literal
  scopes pushed and retired,
* ``proof_fallbacks`` -- checks that had to leave the warm session
  for a sealed proof-logging solver (certified paths),
* ``float_checks`` / ``float_pivots`` -- two-tier backend
  (:mod:`repro.smt.backend`): LRA checks that entered the float tier,
  and pivots spent there (``pivots`` stays the *exact*-tier pivot
  count, so ``float_pivots / (float_pivots + pivots)`` is the share of
  pivot work the cheap tier absorbed),
* ``float_sat_confirmed`` / ``float_unsat_confirmed`` -- float-tier
  verdicts the exact tier confirmed (a snapped SAT candidate that
  model-checked in Fractions; a suspected conflict re-derived as an
  exact Farkas certificate),
* ``tier_disagreements`` -- float verdicts the exact tier *refuted*
  (a bogus conflict or a candidate that failed the exact model check);
  each one is silently corrected by a full exact solve,
* ``tier_fallbacks`` -- float-tier checks that ended in a full exact
  solve for any reason (give-up, disagreement, or ``filter`` mode's
  conservative SAT path).

**Counting semantics** (pinned by ``tests/smt/test_counter_semantics.py``):
``checks`` counts *every* top-level ``Solver.check`` call, wherever it
came from -- warm session checks and certified fallbacks included.
``session_checks`` counts the subset of ``checks`` served by a warm
:class:`SmtSession` (so a warm check increments **both**, by design:
``checks - session_checks`` is the cold-check count, and
``session_checks / checks`` is the warm share).  A certified fallback
(:func:`~repro.smt.session.certified_solver`, whether reached through
``SmtSession.certified_check`` or directly) runs on a sealed fresh
solver: it increments ``solvers_constructed``, ``checks`` and
``proof_fallbacks``, and must **never** increment ``session_checks``
-- it was not served warm, and counting it there would overstate the
session-reuse factor the warm-CEGIS benchmarks report.

Counters are per process; the parallel driver aggregates the deltas
its workers report.  This module sits below every other smt module so
both :mod:`repro.smt.sat` and :mod:`repro.smt.solver` can import it
without cycles.  Richer distributions (per-check latency percentiles)
live in :data:`repro.obs.metrics.GLOBAL_METRICS`; these counters stay
dataclass-flat because the hot loops increment them unconditionally.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields


@dataclass
class SolverCounters:
    """Monotone event counters (see module docstring)."""

    solvers_constructed: int = 0
    checks: int = 0
    clauses_learned: int = 0
    restarts: int = 0
    pivots: int = 0
    sessions_created: int = 0
    sessions_reused: int = 0
    session_checks: int = 0
    scopes_opened: int = 0
    scopes_retracted: int = 0
    proof_fallbacks: int = 0
    float_checks: int = 0
    float_pivots: int = 0
    float_sat_confirmed: int = 0
    float_unsat_confirmed: int = 0
    tier_disagreements: int = 0
    tier_fallbacks: int = 0

    def snapshot(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Counter increments since a previous :meth:`snapshot`."""
        return {
            name: value - snapshot.get(name, 0)
            for name, value in self.snapshot().items()
        }

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


#: Pid that imported this module.  Spawn workers re-import (fresh
#: counters, owner == worker); fork children inherit the parent's pid
#: here -- the runtime sanitizer (:mod:`repro.obs.sanitizer`) flags
#: writes whenever ``os.getpid()`` disagrees with the owner.
_OWNER_PID = os.getpid()

#: The process-wide counter instance (workers report their own copy).
GLOBAL_COUNTERS = SolverCounters()
