"""Quantifier-free formulas over linear arithmetic atoms and booleans.

A :class:`Formula` is one of:

* :data:`TRUE` / :data:`FALSE` -- constants,
* :class:`Atom` -- a linear constraint ``expr OP 0``,
* :class:`BVar` -- a propositional variable (used for the NULL flags of
  the three-valued-logic encoding of section 5.2),
* :class:`Not`, :class:`And`, :class:`Or` -- boolean structure.

Formulas are immutable values.  The smart constructors ``conj``,
``disj`` and ``negate`` perform the obvious simplifications (constant
folding, flattening) so that the rest of the system can build formulas
without worrying about degenerate shapes.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from fractions import Fraction
from typing import ClassVar, Iterable, Mapping, Sequence

from .terms import LinExpr, Scalar, Var

# Comparison operators of atoms, always against zero.
LE = "<="
LT = "<"
EQ = "="
NE = "!="

_NEGATED_OP = {LE: LT, LT: LE, EQ: NE, NE: EQ}


class Formula:
    """Base class for all formula nodes."""

    __slots__ = ()

    def variables(self) -> set[Var]:
        """All arithmetic variables occurring in the formula."""
        out: set[Var] = set()
        _collect_vars(self, out)
        return out

    def bool_variables(self) -> set["BVar"]:
        """All propositional variables occurring in the formula."""
        out: set[BVar] = set()
        _collect_bvars(self, out)
        return out

    def atoms(self) -> list["Atom"]:
        """All distinct arithmetic atoms, in first-occurrence order."""
        seen: dict[Atom, None] = {}
        _collect_atoms(self, seen)
        return list(seen)

    def evaluate(
        self,
        assignment: Mapping[Var, Scalar],
        bool_assignment: Mapping["BVar", bool] | None = None,
    ) -> bool:
        """Two-valued evaluation under a total assignment."""
        return _evaluate(self, assignment, bool_assignment or {})

    # Operator sugar --------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return conj([self, other])

    def __or__(self, other: "Formula") -> "Formula":
        return disj([self, other])

    def __invert__(self) -> "Formula":
        return negate(self)


class _Const(Formula):
    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        object.__setattr__(self, "value", value)

    def __setattr__(self, *a: object) -> None:  # pragma: no cover
        raise AttributeError("constant formulas are immutable")

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = _Const(True)
FALSE = _Const(False)


@dataclass(frozen=True)
class Atom(Formula):
    """The linear constraint ``expr op 0``.

    Atoms (like every formula node) are hash-consed: structurally
    equal nodes are the same object, so the CNF encoder's definition
    cache and the session layer can key on identity.  Intern tables
    are weak -- nodes no live formula references are collected.
    """

    expr: LinExpr
    op: str

    _intern: ClassVar["weakref.WeakValueDictionary[tuple, Atom]"] = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, expr: LinExpr, op: str) -> "Atom":
        key = (expr, op)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        cls._intern[key] = self
        return self

    def __getnewargs__(self) -> tuple[LinExpr, str]:
        return (self.expr, self.op)

    def __post_init__(self) -> None:
        if self.op not in (LE, LT, EQ, NE):
            raise ValueError(f"unknown atom operator {self.op!r}")

    def negated(self) -> "Atom":
        """The complementary atom (exact over rationals and integers)."""
        if self.op == LE:
            return Atom(-self.expr, LT)
        if self.op == LT:
            return Atom(-self.expr, LE)
        return Atom(self.expr, _NEGATED_OP[self.op])

    def holds(self, value: Fraction) -> bool:
        """Whether ``value op 0`` holds for a concrete LHS value."""
        if self.op == LE:
            return value <= 0
        if self.op == LT:
            return value < 0
        if self.op == EQ:
            return value == 0
        return value != 0

    def __repr__(self) -> str:
        return f"({self.expr!r} {self.op} 0)"


@dataclass(frozen=True)
class BVar(Formula):
    """A propositional variable."""

    name: str

    _intern: ClassVar["weakref.WeakValueDictionary[str, BVar]"] = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, name: str) -> "BVar":
        cached = cls._intern.get(name)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        cls._intern[name] = self
        return self

    def __getnewargs__(self) -> tuple[str]:
        return (self.name,)

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Not(Formula):
    arg: Formula

    _intern: ClassVar["weakref.WeakValueDictionary[Formula, Not]"] = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, arg: Formula) -> "Not":
        cached = cls._intern.get(arg)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        cls._intern[arg] = self
        return self

    def __getnewargs__(self) -> tuple[Formula]:
        return (self.arg,)

    def __repr__(self) -> str:
        return f"~{self.arg!r}"


class _NAry(Formula):
    __slots__ = ("args", "_hash", "__weakref__")

    # Shared by And and Or; the concrete class is part of the key.
    _intern: ClassVar["weakref.WeakValueDictionary[tuple, _NAry]"] = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, args: Sequence[Formula]) -> "_NAry":
        args_tuple = tuple(args)
        key = (cls, args_tuple)
        cached = _NAry._intern.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        object.__setattr__(self, "args", args_tuple)
        object.__setattr__(self, "_hash", hash((cls.__name__, args_tuple)))
        _NAry._intern[key] = self
        return self

    def __init__(self, args: Sequence[Formula]) -> None:
        # Construction (and interning) happens in __new__.
        pass

    def __reduce__(self):
        return (type(self), (self.args,))

    def __setattr__(self, *a: object) -> None:  # pragma: no cover
        raise AttributeError("formulas are immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return type(self) is type(other) and self.args == other.args

    def __hash__(self) -> int:
        return self._hash


class And(_NAry):
    """Conjunction node (build via :func:`conj`)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.args)) + ")"


class Or(_NAry):
    """Disjunction node (build via :func:`disj`)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.args)) + ")"


# ----------------------------------------------------------------------
# Smart constructors
# ----------------------------------------------------------------------
def conj(args: Iterable[Formula]) -> Formula:
    """Conjunction with flattening and constant folding."""
    flat: list[Formula] = []
    for arg in args:
        if arg is TRUE:
            continue
        if arg is FALSE:
            return FALSE
        if isinstance(arg, And):
            flat.extend(arg.args)
        else:
            flat.append(arg)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def disj(args: Iterable[Formula]) -> Formula:
    """Disjunction with flattening and constant folding."""
    flat: list[Formula] = []
    for arg in args:
        if arg is FALSE:
            continue
        if arg is TRUE:
            return TRUE
        if isinstance(arg, Or):
            flat.extend(arg.args)
        else:
            flat.append(arg)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(flat)


def negate(formula: Formula) -> Formula:
    """Logical negation (kept shallow; NNF pushes it all the way down)."""
    if formula is TRUE:
        return FALSE
    if formula is FALSE:
        return TRUE
    if isinstance(formula, Not):
        return formula.arg
    if isinstance(formula, Atom):
        return formula.negated()
    return Not(formula)


# ----------------------------------------------------------------------
# Atom construction from comparisons
# ----------------------------------------------------------------------
def compare(lhs: LinExpr, op: str, rhs: LinExpr) -> Formula:
    """Build the atom for ``lhs op rhs`` with op in <, <=, >, >=, =, !=."""
    if op == "<":
        atom = Atom(lhs - rhs, LT)
    elif op == "<=":
        atom = Atom(lhs - rhs, LE)
    elif op == ">":
        atom = Atom(rhs - lhs, LT)
    elif op == ">=":
        atom = Atom(rhs - lhs, LE)
    elif op == "=":
        atom = Atom(lhs - rhs, EQ)
    elif op in ("!=", "<>"):
        atom = Atom(lhs - rhs, NE)
    else:
        raise ValueError(f"unknown comparison operator {op!r}")
    return fold_atom(atom)


def fold_atom(atom: Atom) -> Formula:
    """Fold an atom over a constant expression to TRUE/FALSE."""
    if atom.expr.is_constant:
        return TRUE if atom.holds(atom.expr.const) else FALSE
    return atom


def eq(lhs: LinExpr, rhs: LinExpr) -> Formula:
    """The atom ``lhs = rhs``."""
    return compare(lhs, "=", rhs)


def le(lhs: LinExpr, rhs: LinExpr) -> Formula:
    """The atom ``lhs <= rhs``."""
    return compare(lhs, "<=", rhs)


def lt(lhs: LinExpr, rhs: LinExpr) -> Formula:
    """The atom ``lhs < rhs``."""
    return compare(lhs, "<", rhs)


# ----------------------------------------------------------------------
# Negation normal form
# ----------------------------------------------------------------------
#: Memoized NNF results, keyed on the (interned) input node.  The key
#: is held weakly so the cache never outlives the formulas themselves;
#: the inner dict is keyed on ``split_ne``.
_NNF_CACHE: "weakref.WeakKeyDictionary[Formula, dict[bool, Formula]]" = (
    weakref.WeakKeyDictionary()
)


def to_nnf(formula: Formula, *, split_ne: bool = True) -> Formula:
    """Negation normal form.

    Negations are pushed onto atoms and propositional variables.  When
    ``split_ne`` is set (the default), disequality atoms ``e != 0`` are
    rewritten into ``e < 0 | -e < 0`` so that downstream consumers (the
    theory solver, Fourier-Motzkin) only see ``<=``, ``<`` and ``=``.

    Results are memoized on interned node identity, so re-asserting a
    structurally equal formula (the warm-session pattern) normalizes at
    dictionary-lookup cost.
    """
    if formula is TRUE or formula is FALSE:
        return formula
    per_node = _NNF_CACHE.get(formula)
    if per_node is not None:
        cached = per_node.get(split_ne)
        if cached is not None:
            return cached
    result = _nnf(formula, negated=False, split_ne=split_ne)
    if per_node is None:
        per_node = {}
        _NNF_CACHE[formula] = per_node
    per_node[split_ne] = result
    return result


def _nnf(formula: Formula, *, negated: bool, split_ne: bool) -> Formula:
    if formula is TRUE:
        return FALSE if negated else TRUE
    if formula is FALSE:
        return TRUE if negated else FALSE
    if isinstance(formula, Not):
        return _nnf(formula.arg, negated=not negated, split_ne=split_ne)
    if isinstance(formula, BVar):
        return Not(formula) if negated else formula
    if isinstance(formula, Atom):
        atom = formula.negated() if negated else formula
        folded = fold_atom(atom)
        if isinstance(folded, Atom) and folded.op == NE and split_ne:
            return disj([Atom(folded.expr, LT), Atom(-folded.expr, LT)])
        return folded
    if isinstance(formula, And):
        parts = [_nnf(a, negated=negated, split_ne=split_ne) for a in formula.args]
        return disj(parts) if negated else conj(parts)
    if isinstance(formula, Or):
        parts = [_nnf(a, negated=negated, split_ne=split_ne) for a in formula.args]
        return conj(parts) if negated else disj(parts)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


# ----------------------------------------------------------------------
# Disjunctive normal form (used by quantifier elimination)
# ----------------------------------------------------------------------
class DnfBlowupError(Exception):
    """Raised when DNF expansion would exceed the configured bound."""


def to_dnf(formula: Formula, *, max_conjuncts: int = 4096) -> list[list[Atom]]:
    """Expand an NNF formula into a list of conjunctions of atoms.

    Propositional variables are not allowed here: quantifier
    elimination operates on pure arithmetic.  Raises
    :class:`DnfBlowupError` if the expansion exceeds ``max_conjuncts``.
    """
    nnf = to_nnf(formula)
    cubes = _dnf(nnf, max_conjuncts)
    return [cube for cube in cubes if cube is not None]


def _dnf(formula: Formula, limit: int) -> list[list[Atom] | None]:
    if formula is TRUE:
        return [[]]
    if formula is FALSE:
        return []
    if isinstance(formula, Atom):
        return [[formula]]
    if isinstance(formula, Or):
        out: list[list[Atom] | None] = []
        for arg in formula.args:
            out.extend(_dnf(arg, limit))
            if len(out) > limit:
                raise DnfBlowupError(f"DNF exceeds {limit} conjuncts")
        return out
    if isinstance(formula, And):
        product: list[list[Atom]] = [[]]
        for arg in formula.args:
            branches = _dnf(arg, limit)
            product = [
                cube + branch
                for cube in product
                for branch in branches
                if branch is not None
            ]
            if len(product) > limit:
                raise DnfBlowupError(f"DNF exceeds {limit} conjuncts")
        return list(product)
    if isinstance(formula, (BVar, Not)):
        raise TypeError("DNF expansion is only defined for pure arithmetic formulas")
    raise TypeError(f"unknown formula node {type(formula).__name__}")


# ----------------------------------------------------------------------
# Internal traversals
# ----------------------------------------------------------------------
def _collect_vars(formula: Formula, out: set[Var]) -> None:
    if isinstance(formula, Atom):
        out.update(formula.expr.coeffs)
    elif isinstance(formula, Not):
        _collect_vars(formula.arg, out)
    elif isinstance(formula, (And, Or)):
        for arg in formula.args:
            _collect_vars(arg, out)


def _collect_bvars(formula: Formula, out: set[BVar]) -> None:
    if isinstance(formula, BVar):
        out.add(formula)
    elif isinstance(formula, Not):
        _collect_bvars(formula.arg, out)
    elif isinstance(formula, (And, Or)):
        for arg in formula.args:
            _collect_bvars(arg, out)


def _collect_atoms(formula: Formula, out: dict[Atom, None]) -> None:
    if isinstance(formula, Atom):
        out.setdefault(formula)
    elif isinstance(formula, Not):
        _collect_atoms(formula.arg, out)
    elif isinstance(formula, (And, Or)):
        for arg in formula.args:
            _collect_atoms(arg, out)


def _evaluate(
    formula: Formula,
    assignment: Mapping[Var, Scalar],
    bool_assignment: Mapping[BVar, bool],
) -> bool:
    if formula is TRUE:
        return True
    if formula is FALSE:
        return False
    if isinstance(formula, Atom):
        return formula.holds(formula.expr.evaluate(assignment))
    if isinstance(formula, BVar):
        return bool(bool_assignment[formula])
    if isinstance(formula, Not):
        return not _evaluate(formula.arg, assignment, bool_assignment)
    if isinstance(formula, And):
        return all(_evaluate(a, assignment, bool_assignment) for a in formula.args)
    if isinstance(formula, Or):
        return any(_evaluate(a, assignment, bool_assignment) for a in formula.args)
    raise TypeError(f"unknown formula node {type(formula).__name__}")
