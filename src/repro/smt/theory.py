"""Linear integer arithmetic on top of the rational simplex.

Two standard ingredients:

* **Integer tightening** -- constraints whose variables are all
  integer-sorted are normalised to integer coefficients, divided by
  their content (coefficient gcd) and rounded: ``e < b`` becomes
  ``e <= ceil(b) - 1``, ``e <= b`` becomes ``e <= floor(b)``, and an
  equality whose content does not divide the constant is immediately
  infeasible.

* **Branch and bound** -- if the rational relaxation is feasible but
  assigns a fractional value ``v`` to an integer variable ``x``, the
  problem splits into ``x <= floor(v)`` and ``x >= ceil(v)``.

The conflict core of an integer-infeasible problem is the union of the
cores of both branches with the branching bounds removed; this is sound
because every integer point satisfies one of the two branch bounds.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Sequence

from .backend import FLOAT_OFF, check_tableau
from .formula import EQ, LE, LT, Atom
from .proof import FarkasCert, FarkasEntry, IntDivCert, SplitCert, TheoryCert
from .simplex import TheoryConflict, concrete_model
from .terms import LinExpr, Var

Tag = Hashable


class SolverBudgetError(Exception):
    """Branch-and-bound exceeded its node budget; result is unknown."""


@dataclass(frozen=True)
class _BranchTag:
    """Pseudo-tag for branching bounds.

    Branch tags are internal to branch and bound: each split frame
    removes its *own* two tags when merging its children's cores (the
    split certificate justifies the removal), so no branch tag ever
    reaches the conflict core surfaced to the SAT layer.
    """

    depth: int
    side: str

    @property
    def ref(self) -> int:
        """Stable identifier used by split certificates."""
        return self.depth * 2 + (1 if self.side == "ge" else 0)


def _is_pure_int(expr: LinExpr) -> bool:
    return all(var.is_int for var in expr.coeffs)


@functools.lru_cache(maxsize=262_144)
def tighten(atom: Atom) -> Atom | bool:
    """Integer-tighten an atom; returns True/False when it folds.

    Only applies to atoms over integer variables; mixed or real atoms
    are returned unchanged.  Memoised: the lazy DPLL(T) loop re-checks
    the same atoms on every round, and the exact-rational
    normalisation dominated profiles before caching.
    """
    expr = atom.expr
    if expr.is_constant:
        return atom.holds(expr.const)
    if not _is_pure_int(expr):
        return atom
    expr = expr.scaled_integral()
    content = expr.content()
    if content == 0:
        return atom.holds(expr.const)
    homogeneous = LinExpr(expr.coeffs)  # drop constant
    bound = -expr.const  # constraint is homogeneous op bound

    if atom.op == EQ:
        if bound % content != 0:
            return False
        return Atom(homogeneous / content - bound / content, EQ)
    if atom.op == LT:
        # homogeneous < bound  <=>  homogeneous <= ceil(bound) - 1
        tight = math.ceil(bound) - 1
        op = LE
    elif atom.op == LE:
        tight = math.floor(bound)
        op = LE
    else:
        raise ValueError(f"cannot tighten op {atom.op!r}")
    # Divide by content: h <= t  <=>  h/c <= floor(t/c)
    tight = math.floor(Fraction(tight) / content)
    return Atom(homogeneous / content - tight, op)


def check_conjunction(
    constraints: Sequence[tuple[Atom, Tag]],
    *,
    max_nodes: int = 4000,
    float_mode: str = FLOAT_OFF,
) -> dict[Var, Fraction]:
    """Feasibility of a conjunction over mixed integer/real variables.

    Returns a model mapping every variable of the constraints to a
    rational value (integral for integer-sorted variables).  Raises
    :class:`TheoryConflict` with a core of input tags when infeasible,
    or :class:`SolverBudgetError` when branch and bound gives up.

    ``float_mode`` selects the tableau tier stack for every rational
    relaxation (:func:`repro.smt.backend.check_tableau`); the returned
    model and any conflict certificate are exact regardless of mode.
    """
    prepared: list[tuple[Atom, Tag]] = []
    orig_of_tag: dict[Tag, Atom] = {}
    for atom, tag in constraints:
        orig_of_tag.setdefault(tag, atom)
        tightened = tighten(atom)
        if tightened is True:
            continue
        if tightened is False:
            raise TheoryConflict(
                frozenset([tag]), cert=_refute_folded(atom, tag)
            )
        prepared.append((tightened, tag))
    return _branch_and_bound(
        prepared, max_nodes, orig_of_tag, float_mode=float_mode
    )


def _refute_folded(atom: Atom, tag: Tag) -> TheoryCert:
    """Certificate for an atom :func:`tighten` folded to False.

    Either the atom is a false constant (one-entry Farkas) or it is an
    integer equality whose coefficient gcd does not divide the constant
    (divisibility refutation).
    """
    expr = atom.expr
    if expr.is_constant:
        sign = (
            Fraction(-1)
            if atom.op == EQ and expr.const < 0
            else Fraction(1)
        )
        entry = FarkasEntry(
            coeff=sign,
            lit=tag if isinstance(tag, int) else None,
            orig_expr=expr,
            orig_op=atom.op,
            used_expr=expr,
            used_op=atom.op,
        )
        return FarkasCert((entry,))
    return IntDivCert(lit=tag if isinstance(tag, int) else 0, expr=expr)


def _leaf_cert(
    conflict: TheoryConflict, orig_of_tag: dict[Tag, Atom]
) -> TheoryCert | None:
    """Wrap a simplex conflict's Farkas witness into a certificate leaf."""
    if conflict.cert is not None:
        return conflict.cert  # pragma: no cover - defensive
    if conflict.farkas is None:
        return None  # pragma: no cover - defensive
    entries: list[FarkasEntry] = []
    for coeff, tag, expr, op in conflict.farkas:
        if isinstance(tag, _BranchTag):
            entries.append(
                FarkasEntry(
                    coeff=coeff,
                    lit=None,
                    branch=tag.ref,
                    orig_expr=expr,
                    orig_op=op,
                    used_expr=expr,
                    used_op=op,
                )
            )
            continue
        orig = orig_of_tag.get(tag)
        orig_expr, orig_op = (
            (orig.expr, orig.op) if orig is not None else (expr, op)
        )
        entries.append(
            FarkasEntry(
                coeff=coeff,
                lit=tag if isinstance(tag, int) else None,
                orig_expr=orig_expr,
                orig_op=orig_op,
                used_expr=expr,
                used_op=op,
            )
        )
    return FarkasCert(tuple(entries))


def _lra_check(
    constraints: list[tuple[Atom, Tag]],
    float_mode: str = FLOAT_OFF,
) -> dict[Var, Fraction]:
    """One rational-relaxation feasibility check.

    Tableau solving is delegated to the two-tier backend; whichever
    tier produced the delta-rational assignment, concretisation below
    happens in exact Fractions.
    """
    strict_exprs: list[LinExpr] = []
    nonstrict_exprs: list[LinExpr] = []
    for atom, _tag in constraints:
        if atom.op == LT:
            strict_exprs.append(atom.expr)
        elif atom.op == LE:
            nonstrict_exprs.append(atom.expr)
    assignment = check_tableau(constraints, float_mode=float_mode)
    return concrete_model(assignment, strict_exprs, nonstrict_exprs)


def _branch_and_bound(
    base: list[tuple[Atom, Tag]],
    max_nodes: int,
    orig_of_tag: dict[Tag, Atom] | None = None,
    *,
    float_mode: str = FLOAT_OFF,
) -> dict[Var, Fraction]:
    """Iterative depth-first branch and bound.

    An explicit stack (rather than recursion) keeps deep branching
    chains -- e.g. thin rational slivers with no integer points -- from
    blowing the interpreter's recursion limit.  When a subproblem is
    integer-infeasible, the conflict core is the union of both
    branches' cores with *that split's* branch bounds removed (every
    integer point satisfies one of the two bounds); branch tags of
    enclosing splits stay in the core until their own frame merges
    them, so the surfaced core never silently drops a bound it depends
    on.  Every conflict carries a composed certificate: Farkas leaves
    from the simplex joined by :class:`~repro.smt.proof.SplitCert`
    nodes at each exhausted split.
    """
    orig_atoms = orig_of_tag if orig_of_tag is not None else {}
    # Each stack frame: branch constraints, parent frame index, the
    # side of the parent's split it explores, accumulated child
    # (core, cert, side) triples, and the split it opened (if any).
    frames: list[dict] = [
        {"extra": [], "parent": -1, "side": "", "cores": [], "pending": 2,
         "split": None}
    ]
    stack: list[int] = [0]
    nodes = 0

    def compose(frame: dict) -> tuple[frozenset[Tag], TheoryCert | None]:
        """Merge both children of an exhausted split frame."""
        branch_var, floor_v, le_tag, ge_tag = frame["split"]
        by_side = {side: cert for _, cert, side in frame["cores"]}
        merged = frozenset(
            tag
            for child_core, _, _ in frame["cores"]
            for tag in child_core
        ) - {le_tag, ge_tag}
        cert: TheoryCert | None = None
        if by_side.get("le") is not None and by_side.get("ge") is not None:
            cert = SplitCert(
                var=branch_var,
                floor=floor_v,
                le_ref=le_tag.ref,
                ge_ref=ge_tag.ref,
                le_cert=by_side["le"],
                ge_cert=by_side["ge"],
            )
        return merged, cert

    def fail_upward(
        index: int, core: frozenset[Tag], cert: TheoryCert | None
    ) -> None:
        """Record a failed frame; raise when the root is exhausted."""
        while True:
            frame = frames[index]
            parent = frame["parent"]
            if parent < 0:
                raise TheoryConflict(
                    frozenset(
                        tag for tag in core if not isinstance(tag, _BranchTag)
                    ),
                    cert=cert,
                )
            pframe = frames[parent]
            pframe["cores"].append((core, cert, frame["side"]))
            pframe["pending"] -= 1
            if pframe["pending"] > 0:
                return
            core, cert = compose(pframe)
            index = parent

    while stack:
        if nodes >= max_nodes:
            raise SolverBudgetError("branch-and-bound node budget exhausted")
        nodes += 1
        index = stack.pop()
        frame = frames[index]
        constraints = base + frame["extra"]
        try:
            model = _lra_check(constraints, float_mode)
        except TheoryConflict as conflict:
            leaf = _leaf_cert(conflict, orig_atoms)
            if frame["parent"] < 0:
                conflict.cert = leaf
                raise
            fail_upward(index, conflict.core, leaf)
            continue
        branch_var, value = _fractional_int_var(model)
        if branch_var is None:
            return model
        floor_v = math.floor(value)
        le_tag = _BranchTag(nodes, "le")
        ge_tag = _BranchTag(nodes, "ge")
        low = (Atom(LinExpr.var(branch_var) - floor_v, LE), le_tag)
        high = (Atom((floor_v + 1) - LinExpr.var(branch_var), LE), ge_tag)
        frame["pending"] = 2
        frame["cores"] = []
        frame["split"] = (branch_var, floor_v, le_tag, ge_tag)
        for (atom, tag), side in ((high, "ge"), (low, "le")):
            frames.append(
                {"extra": frame["extra"] + [(atom, tag)], "parent": index,
                 "side": side, "cores": [], "pending": 2, "split": None}
            )
            stack.append(len(frames) - 1)
    # All branches failed; the root's fail_upward raised already --
    # reaching here means the root itself was the failing frame.
    raise TheoryConflict(frozenset())  # pragma: no cover - defensive


def _fractional_int_var(
    model: dict[Var, Fraction],
) -> tuple[Var | None, Fraction]:
    """The integer variable whose value is most fractional, if any."""
    best: tuple[Fraction, Var, Fraction] | None = None
    for var, value in sorted(model.items(), key=lambda item: item[0].name):
        if not var.is_int or value.denominator == 1:
            continue
        frac = value - math.floor(value)
        distance = abs(frac - Fraction(1, 2))
        if best is None or distance < best[0]:
            best = (distance, var, value)
    if best is None:
        return None, Fraction(0)
    return best[1], best[2]
