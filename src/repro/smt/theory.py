"""Linear integer arithmetic on top of the rational simplex.

Two standard ingredients:

* **Integer tightening** -- constraints whose variables are all
  integer-sorted are normalised to integer coefficients, divided by
  their content (coefficient gcd) and rounded: ``e < b`` becomes
  ``e <= ceil(b) - 1``, ``e <= b`` becomes ``e <= floor(b)``, and an
  equality whose content does not divide the constant is immediately
  infeasible.

* **Branch and bound** -- if the rational relaxation is feasible but
  assigns a fractional value ``v`` to an integer variable ``x``, the
  problem splits into ``x <= floor(v)`` and ``x >= ceil(v)``.

The conflict core of an integer-infeasible problem is the union of the
cores of both branches with the branching bounds removed; this is sound
because every integer point satisfies one of the two branch bounds.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Sequence

from .formula import EQ, LE, LT, Atom
from .simplex import Simplex, TheoryConflict, concrete_model
from .terms import LinExpr, Var

Tag = Hashable


class SolverBudgetError(Exception):
    """Branch-and-bound exceeded its node budget; result is unknown."""


@dataclass(frozen=True)
class _BranchTag:
    """Pseudo-tag for branching bounds (filtered out of conflict cores)."""

    depth: int
    side: str


def _is_pure_int(expr: LinExpr) -> bool:
    return all(var.is_int for var in expr.coeffs)


@functools.lru_cache(maxsize=262_144)
def tighten(atom: Atom) -> Atom | bool:
    """Integer-tighten an atom; returns True/False when it folds.

    Only applies to atoms over integer variables; mixed or real atoms
    are returned unchanged.  Memoised: the lazy DPLL(T) loop re-checks
    the same atoms on every round, and the exact-rational
    normalisation dominated profiles before caching.
    """
    expr = atom.expr
    if expr.is_constant:
        return atom.holds(expr.const)
    if not _is_pure_int(expr):
        return atom
    expr = expr.scaled_integral()
    content = expr.content()
    if content == 0:
        return atom.holds(expr.const)
    homogeneous = LinExpr(expr.coeffs)  # drop constant
    bound = -expr.const  # constraint is homogeneous op bound

    if atom.op == EQ:
        if bound % content != 0:
            return False
        return Atom(homogeneous / content - bound / content, EQ)
    if atom.op == LT:
        # homogeneous < bound  <=>  homogeneous <= ceil(bound) - 1
        tight = math.ceil(bound) - 1
        op = LE
    elif atom.op == LE:
        tight = math.floor(bound)
        op = LE
    else:
        raise ValueError(f"cannot tighten op {atom.op!r}")
    # Divide by content: h <= t  <=>  h/c <= floor(t/c)
    tight = math.floor(Fraction(tight) / content)
    return Atom(homogeneous / content - tight, op)


def check_conjunction(
    constraints: Sequence[tuple[Atom, Tag]],
    *,
    max_nodes: int = 4000,
) -> dict[Var, Fraction]:
    """Feasibility of a conjunction over mixed integer/real variables.

    Returns a model mapping every variable of the constraints to a
    rational value (integral for integer-sorted variables).  Raises
    :class:`TheoryConflict` with a core of input tags when infeasible,
    or :class:`SolverBudgetError` when branch and bound gives up.
    """
    prepared: list[tuple[Atom, Tag]] = []
    for atom, tag in constraints:
        tightened = tighten(atom)
        if tightened is True:
            continue
        if tightened is False:
            raise TheoryConflict(frozenset([tag]))
        prepared.append((tightened, tag))
    return _branch_and_bound(prepared, max_nodes)


def _lra_check(
    constraints: list[tuple[Atom, Tag]],
) -> dict[Var, Fraction]:
    """One rational-relaxation feasibility check."""
    simplex = Simplex()
    strict_exprs: list[LinExpr] = []
    for atom, tag in constraints:
        if atom.op == LT:
            strict_exprs.append(atom.expr)
        simplex.assert_atom(atom, tag)
    assignment = simplex.check()
    return concrete_model(assignment, strict_exprs)


def _branch_and_bound(
    base: list[tuple[Atom, Tag]],
    max_nodes: int,
) -> dict[Var, Fraction]:
    """Iterative depth-first branch and bound.

    An explicit stack (rather than recursion) keeps deep branching
    chains -- e.g. thin rational slivers with no integer points -- from
    blowing the interpreter's recursion limit.  When a subproblem is
    integer-infeasible, the conflict core is the union of both
    branches' cores with the branch bounds themselves removed (every
    integer point satisfies one of the two bounds).
    """
    # Each stack frame: (branch constraints, parent frame index,
    # accumulated child cores).
    frames: list[dict] = [{"extra": [], "parent": -1, "cores": [], "pending": 2}]
    stack: list[int] = [0]
    nodes = 0

    def fail_upward(index: int, core: frozenset[Tag]) -> dict[Var, Fraction]:
        """Record a core; raise when both branches of an ancestor failed."""
        while True:
            frame = frames[index]
            frame["cores"].append(core)
            frame["pending"] -= 1
            if frame["pending"] > 0:
                return {}
            merged = frozenset(
                tag
                for child_core in frame["cores"]
                for tag in child_core
                if not isinstance(tag, _BranchTag)
            )
            if frame["parent"] < 0:
                raise TheoryConflict(merged)
            index = frame["parent"]
            core = merged

    while stack:
        if nodes >= max_nodes:
            raise SolverBudgetError("branch-and-bound node budget exhausted")
        nodes += 1
        index = stack.pop()
        frame = frames[index]
        constraints = base + frame["extra"]
        try:
            model = _lra_check(constraints)
        except TheoryConflict as conflict:
            if frame["parent"] < 0:
                raise
            fail_upward(frame["parent"], conflict.core)
            continue
        branch_var, value = _fractional_int_var(model)
        if branch_var is None:
            return model
        floor_v = math.floor(value)
        depth = len(frame["extra"])
        low = (Atom(LinExpr.var(branch_var) - floor_v, LE), _BranchTag(nodes, "le"))
        high = (
            Atom((floor_v + 1) - LinExpr.var(branch_var), LE),
            _BranchTag(nodes, "ge"),
        )
        frame["pending"] = 2
        frame["cores"] = []
        for atom, tag in (high, low):
            frames.append(
                {"extra": frame["extra"] + [(atom, tag)], "parent": index,
                 "cores": [], "pending": 2}
            )
            stack.append(len(frames) - 1)
        del depth
    # All branches failed; the root's fail_upward raised already --
    # reaching here means the root itself was the failing frame.
    raise TheoryConflict(frozenset())  # pragma: no cover - defensive


def _fractional_int_var(
    model: dict[Var, Fraction],
) -> tuple[Var | None, Fraction]:
    """The integer variable whose value is most fractional, if any."""
    best: tuple[Fraction, Var, Fraction] | None = None
    for var, value in sorted(model.items(), key=lambda item: item[0].name):
        if not var.is_int or value.denominator == 1:
            continue
        frac = value - math.floor(value)
        distance = abs(frac - Fraction(1, 2))
        if best is None or distance < best[0]:
            best = (distance, var, value)
    if best is None:
        return None, Fraction(0)
    return best[1], best[2]
