"""Linear arithmetic terms for the SMT substrate.

The predicate grammar of the paper (section 4.1) is, after the
linearization performed by :mod:`repro.predicates.normalize`, a boolean
combination of *linear* constraints over integer- and real-sorted
variables.  This module provides the two building blocks:

* :class:`Var` -- a sorted first-order variable.
* :class:`LinExpr` -- an immutable linear expression ``sum(c_i * x_i) + c``
  with exact :class:`fractions.Fraction` coefficients.

Exact rational arithmetic is essential: the synthesized predicates are
verified with the solver, and floating point drift would make the
verification step unsound.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from fractions import Fraction
from typing import ClassVar, Iterable, Mapping, Union

Scalar = Union[int, Fraction]

INT = "int"
REAL = "real"
_SORTS = (INT, REAL)


@dataclass(frozen=True, order=True)
class Var:
    """A sorted variable.

    Variables are compared structurally: two ``Var`` objects with the
    same name and sort are the same variable.  The synthesis pipeline
    derives names from SQL column names (e.g. ``lineitem.l_shipdate``),
    so structural identity gives the natural aliasing behaviour.

    Instances are hash-consed: constructing the same (name, sort) pair
    twice yields the *same object*, so structural equality implies
    identity and downstream identity-keyed caches (memoized CNF
    encoding, linearization) are sound.  The intern table holds weak
    references only -- variables no live formula mentions are
    collected, so one long process serving many sessions does not
    accumulate dead queries' vocabularies.
    """

    name: str
    sort: str = INT

    _intern: ClassVar["weakref.WeakValueDictionary[tuple[str, str], Var]"] = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, name: str, sort: str = INT) -> "Var":
        if sort not in _SORTS:
            raise ValueError(f"unknown sort {sort!r}; expected one of {_SORTS}")
        key = (name, sort)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        cls._intern[key] = self
        return self

    def __getnewargs__(self) -> tuple[str, str]:
        # Route unpickling through __new__ so deserialized variables
        # (e.g. from parallel bench workers) intern like fresh ones.
        return (self.name, self.sort)

    def __post_init__(self) -> None:
        if self.sort not in _SORTS:
            raise ValueError(f"unknown sort {self.sort!r}; expected one of {_SORTS}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}:{self.sort}"

    @property
    def is_int(self) -> bool:
        return self.sort == INT


def _as_fraction(value: Scalar) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise TypeError(f"expected int or Fraction, got {type(value).__name__}")


class LinExpr:
    """An immutable linear expression ``sum(coeffs[v] * v) + const``.

    Instances behave like values: arithmetic operators return new
    expressions and never mutate.  Zero coefficients are never stored,
    so equal expressions have equal coefficient maps.

    Expressions are hash-consed after normalisation: two structurally
    equal expressions are the same object, which lets the CNF encoder
    and linearization caches key on identity.  The intern table is
    weak, so expressions referenced by no live formula are collected.
    """

    __slots__ = ("coeffs", "const", "_hash", "__weakref__")

    _intern: "weakref.WeakValueDictionary[tuple, LinExpr]" = (
        weakref.WeakValueDictionary()
    )

    def __new__(
        cls,
        coeffs: Mapping[Var, Scalar] | None = None,
        const: Scalar = 0,
    ) -> "LinExpr":
        clean: dict[Var, Fraction] = {}
        if coeffs:
            for var, coeff in coeffs.items():
                frac = _as_fraction(coeff)
                if frac != 0:
                    clean[var] = frac
        key = (frozenset(clean.items()), _as_fraction(const))
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        object.__setattr__(self, "coeffs", clean)
        object.__setattr__(self, "const", key[1])
        object.__setattr__(self, "_hash", hash(key))
        cls._intern[key] = self
        return self

    def __init__(
        self,
        coeffs: Mapping[Var, Scalar] | None = None,
        const: Scalar = 0,
    ) -> None:
        # Construction (normalisation + interning) happens in __new__.
        pass

    def __reduce__(self):
        # Unpickled expressions re-enter the intern table via __new__.
        return (LinExpr, (self.coeffs, self.const))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("LinExpr is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def var(var: Var) -> "LinExpr":
        """The expression consisting of a single variable."""
        return LinExpr({var: 1})

    @staticmethod
    def const_expr(value: Scalar) -> "LinExpr":
        """A constant expression."""
        return LinExpr({}, value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> set[Var]:
        return set(self.coeffs)

    def coeff(self, var: Var) -> Fraction:
        return self.coeffs.get(var, Fraction(0))

    def evaluate(self, assignment: Mapping[Var, Scalar]) -> Fraction:
        """Evaluate under a total assignment of the expression's variables."""
        total = self.const
        for var, coeff in self.coeffs.items():
            total += coeff * _as_fraction(assignment[var])
        return total

    def substitute(self, var: Var, replacement: "LinExpr") -> "LinExpr":
        """Replace ``var`` by a linear expression."""
        coeff = self.coeffs.get(var)
        if coeff is None:
            return self
        rest = {v: c for v, c in self.coeffs.items() if v != var}
        result = LinExpr(rest, self.const)
        return result + replacement * coeff

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "LinExpr | Scalar") -> "LinExpr":
        if isinstance(other, (int, Fraction)):
            return LinExpr(self.coeffs, self.const + _as_fraction(other))
        if not isinstance(other, LinExpr):
            return NotImplemented
        merged = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            merged[var] = merged.get(var, Fraction(0)) + coeff
        return LinExpr(merged, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({v: -c for v, c in self.coeffs.items()}, -self.const)

    def __sub__(self, other: "LinExpr | Scalar") -> "LinExpr":
        if isinstance(other, (int, Fraction)):
            return LinExpr(self.coeffs, self.const - _as_fraction(other))
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: Scalar) -> "LinExpr":
        return (-self) + other

    def __mul__(self, scalar: Scalar) -> "LinExpr":
        if not isinstance(scalar, (int, Fraction)):
            return NotImplemented
        frac = _as_fraction(scalar)
        return LinExpr(
            {v: c * frac for v, c in self.coeffs.items()}, self.const * frac
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: Scalar) -> "LinExpr":
        frac = _as_fraction(scalar)
        if frac == 0:
            raise ZeroDivisionError("division of linear expression by zero")
        return self * (Fraction(1) / frac)

    # ------------------------------------------------------------------
    # Normalisation helpers
    # ------------------------------------------------------------------
    def scaled_integral(self) -> "LinExpr":
        """Scale by a positive rational so all coefficients are integers.

        The constant term is scaled by the same factor, so the zero set
        and sign of the expression are unchanged.  Used by the integer
        tightening and Fourier-Motzkin passes.
        """
        denoms = [c.denominator for c in self.coeffs.values()]
        denoms.append(self.const.denominator)
        lcm = 1
        for d in denoms:
            lcm = lcm * d // _gcd(lcm, d)
        if lcm == 1:
            return self
        return self * lcm

    def content(self) -> Fraction:
        """GCD of the variable coefficients (0 for constant expressions)."""
        g = 0
        for coeff in self.coeffs.values():
            g = _gcd(g, abs(coeff.numerator))
        return Fraction(g)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, LinExpr):
            return NotImplemented
        # Interning makes structurally equal expressions identical, so
        # this structural fallback only fires across intern tables
        # (e.g. objects revived by pickle mid-flight).
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for var in sorted(self.coeffs, key=lambda v: v.name):
            coeff = self.coeffs[var]
            if coeff == 1:
                parts.append(f"{var.name}")
            elif coeff == -1:
                parts.append(f"-{var.name}")
            else:
                parts.append(f"{coeff}*{var.name}")
        if self.const != 0 or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return abs(a)


def linear_combination(terms: Iterable[tuple[Scalar, Var]], const: Scalar = 0) -> LinExpr:
    """Build ``sum(c * v for c, v in terms) + const``."""
    coeffs: dict[Var, Fraction] = {}
    for coeff, var in terms:
        coeffs[var] = coeffs.get(var, Fraction(0)) + _as_fraction(coeff)
    return LinExpr(coeffs, const)
