"""Two-tier tableau backend: float filter, exact certified confirmation.

The numeric core used to be a single hardwired Fraction simplex; this
module makes the tableau pluggable and adds the fast tier in front:

* :class:`TableauBackend` -- the structural protocol both tiers
  implement (``assert_atom`` + ``check``).  The exact Dutertre--de
  Moura implementation (:class:`repro.smt.simplex.Simplex`) and the
  epsilon-guarded float clone
  (:class:`repro.smt.floatsimplex.FloatSimplex`) are its two
  instances.
* :func:`check_tableau` -- the orchestrator every LRA feasibility
  check routes through (:func:`repro.smt.theory._lra_check`).  Mode
  ``off`` is the historical exact-only path.  In the filter modes the
  float tier runs first and its verdict is **advisory**:

  - float-UNSAT hands the suspected Farkas row set (conflict tags) to
    the exact tier, which re-derives the certificate from Fractions by
    solving just those constraints; a refuted suspicion falls back to
    the full exact solve.  Every surfaced ``TheoryConflict`` therefore
    carries an exact-Fraction Farkas witness -- the proof/certify
    layer never sees a float.
  - float-SAT is confirmed by snapping the candidate onto exact bound
    values and model-checking every constraint in Fractions (mode
    ``filter+trust-sat``), or conservatively re-solved exactly (mode
    ``filter``).

Mode selection threads down from :class:`repro.core.config.SiaConfig`
(``float_filter``) through ``Solver``/``SmtSession``; the
``SIA_FLOAT_FILTER`` environment variable force-overrides every
construction site (used by CI to run the tier-1 suite with the float
tier forced on and forced off).

Instrumentation: per-tier pivot/agreement/disagreement counters live
in :data:`repro.smt.stats.GLOBAL_COUNTERS` (so ``counters=True`` trace
spans and the bench JSON attribute work to the tier that spent it) and
tier latencies are recorded as ``smt.tier.*_ms`` timers in
:data:`repro.obs.metrics.GLOBAL_METRICS`.
"""

from __future__ import annotations

import os
from fractions import Fraction
from typing import Hashable, Mapping, Protocol, Sequence

from ..obs.clock import now as _clock_now
from ..obs.metrics import GLOBAL_METRICS
from .floatsimplex import (
    FloatConflict,
    FloatDelta,
    FloatSimplex,
    FloatTierGiveUp,
)
from .formula import EQ, LE, LT, Atom
from .simplex import DeltaRational, Simplex, TheoryConflict
from .stats import GLOBAL_COUNTERS
from .terms import Var

Tag = Hashable

__all__ = [
    "FLOAT_OFF",
    "FLOAT_FILTER",
    "FLOAT_TRUST_SAT",
    "FLOAT_MODES",
    "FLOAT_MODE_ENV",
    "TableauBackend",
    "check_tableau",
    "resolve_float_mode",
]

#: Exact-only: the historical single-tier path.
FLOAT_OFF = "off"
#: Float tier filters; float-SAT still re-solves exactly from scratch.
FLOAT_FILTER = "filter"
#: Additionally trust float-SAT *hints*: snap the candidate model onto
#: exact values and accept it once it model-checks in Fractions.
FLOAT_TRUST_SAT = "filter+trust-sat"

FLOAT_MODES = (FLOAT_OFF, FLOAT_FILTER, FLOAT_TRUST_SAT)

#: Environment override: forces the mode at every construction site.
FLOAT_MODE_ENV = "SIA_FLOAT_FILTER"

#: Denominator cap when rationalizing a float that snapped to no bound.
_SNAP_DENOMINATOR = 10**9


class TableauBackend(Protocol):
    """Structural protocol of one tableau tier.

    ``assert_atom`` installs ``atom.expr atom.op 0`` under ``tag`` and
    may raise the tier's conflict exception; ``check`` either returns
    a variable assignment or raises it.  The exact tier's assignment
    maps to :class:`DeltaRational`; the float tier's to
    :class:`FloatDelta` -- the orchestrator is the only place aware of
    both value domains.
    """

    def assert_atom(self, atom: Atom, tag: Tag) -> None: ...

    def check(self) -> Mapping[Var, object]: ...


def resolve_float_mode(mode: str | None) -> str:
    """Validate ``mode``, honoring the ``SIA_FLOAT_FILTER`` override.

    ``None`` means "caller has no opinion" and resolves to the env
    override or :data:`FLOAT_OFF`.
    """
    override = os.environ.get(FLOAT_MODE_ENV)
    if override:
        mode = override
    if mode is None:
        mode = FLOAT_OFF
    if mode not in FLOAT_MODES:
        raise ValueError(
            f"unknown float-filter mode {mode!r}; expected one of "
            f"{', '.join(FLOAT_MODES)}"
        )
    return mode


# ----------------------------------------------------------------------
# Exact tier
# ----------------------------------------------------------------------
def _exact_check(
    constraints: Sequence[tuple[Atom, Tag]],
) -> dict[Var, DeltaRational]:
    """One full exact-simplex feasibility run (raises TheoryConflict)."""
    simplex: TableauBackend = Simplex()
    for atom, tag in constraints:
        simplex.assert_atom(atom, tag)
    assignment = simplex.check()
    # The exact tier's values are DeltaRational by construction; the
    # cast is only narrowing what the protocol widened.
    return dict(assignment)  # type: ignore[arg-type]


def _timed_exact(
    constraints: Sequence[tuple[Atom, Tag]], timer: str
) -> dict[Var, DeltaRational]:
    start = _clock_now()
    try:
        return _exact_check(constraints)
    finally:
        GLOBAL_METRICS.timer(timer).record((_clock_now() - start) * 1000)


# ----------------------------------------------------------------------
# Verdict confirmation
# ----------------------------------------------------------------------
def _confirm_unsat(
    constraints: Sequence[tuple[Atom, Tag]], core: frozenset[Tag]
) -> None:
    """Re-derive a float conflict exactly, or return to signal refusal.

    Solves only the constraints the float tier named in its suspected
    Farkas row set.  If they really are infeasible the exact simplex
    raises :class:`TheoryConflict` whose certificate -- derived purely
    from Fractions -- is valid for the full constraint set (a conflict
    over a subset is a conflict over the whole).  Returning normally
    means the suspicion was refuted.
    """
    suspect = [(atom, tag) for atom, tag in constraints if tag in core]
    if not suspect:
        return
    simplex = Simplex()
    for atom, tag in suspect:
        simplex.assert_atom(atom, tag)
    simplex.check()


def _snap_value(
    value: FloatDelta, candidates: Sequence[DeltaRational]
) -> DeltaRational:
    """Exact value for a float cell: nearest asserted bound, else a
    nearby small rational.

    Nonbasic variables sit exactly on one of their bounds in a
    Dutertre--de Moura solution, and those bounds were asserted as
    exact rationals -- so snapping recovers the intended exact value
    whenever the float image is within rounding distance of one.
    """
    # The one sanctioned float-touching boundary of this module: the
    # float candidate is *compared* against exact bounds (never mixed
    # into them), and whatever leaves this function is a Fraction.
    for exact in candidates:
        if (
            abs(value.real - float(exact.real)) <= 1e-6  # sia: allow-float
            and abs(value.k - float(exact.k)) <= 1e-6  # sia: allow-float
        ):
            return exact
    real = Fraction(value.real).limit_denominator(_SNAP_DENOMINATOR)
    k = Fraction(value.k).limit_denominator(_SNAP_DENOMINATOR)
    return DeltaRational(real, k)


def _holds_symbolically(atom: Atom, value: DeltaRational) -> bool:
    """Whether ``value_of(expr) op 0`` holds for infinitesimal delta."""
    real, k = value.real, value.k
    if atom.op == EQ:
        return real == 0 and k == 0
    if atom.op == LT:
        return real < 0 or (real == 0 and k < 0)
    if atom.op == LE:
        return real < 0 or (real == 0 and k <= 0)
    raise ValueError(f"cannot evaluate op {atom.op!r}")  # pragma: no cover


def _confirm_sat(
    constraints: Sequence[tuple[Atom, Tag]],
    tableau: FloatSimplex,
    assignment: Mapping[Var, FloatDelta],
) -> dict[Var, DeltaRational] | None:
    """Exact model-check of a snapped float candidate.

    Every float value is converted to an exact :class:`DeltaRational`
    (preferring the variable's own asserted bound values) and every
    constraint is evaluated symbolically in Fractions.  Returns the
    exact model on success, ``None`` when any constraint fails --
    nothing float-valued survives into the result.
    """
    exact: dict[Var, DeltaRational] = {}
    for var, value in assignment.items():
        exact[var] = _snap_value(value, tableau.exact_bound_values(var))
    for atom, _tag in constraints:
        expr = atom.expr
        real = expr.const
        k = Fraction(0)
        for var, coeff in expr.coeffs.items():
            value = exact.get(var)
            if value is None:
                value = DeltaRational(Fraction(0))
                exact[var] = value
            real += coeff * value.real
            k += coeff * value.k
        if not _holds_symbolically(atom, DeltaRational(real, k)):
            return None
    return exact


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------
def check_tableau(
    constraints: Sequence[tuple[Atom, Tag]],
    *,
    float_mode: str = FLOAT_OFF,
) -> dict[Var, DeltaRational]:
    """Feasibility of one LRA conjunction through the tier stack.

    Returns an exact delta-rational assignment or raises
    :class:`TheoryConflict` carrying an exact Farkas witness --
    identical contract to the historical direct-simplex path,
    whichever tier did the work.
    """
    if float_mode == FLOAT_OFF:
        return _exact_check(constraints)

    GLOBAL_COUNTERS.float_checks += 1
    start = _clock_now()
    conflict: FloatConflict | None = None
    candidate: dict[Var, FloatDelta] | None = None
    tableau = FloatSimplex()
    try:
        for atom, tag in constraints:
            tableau.assert_atom(atom, tag)
        candidate = tableau.check()
    except FloatConflict as suspected:
        conflict = suspected
    except FloatTierGiveUp:
        GLOBAL_COUNTERS.tier_fallbacks += 1
        GLOBAL_METRICS.timer("smt.tier.float_ms").record(
            (_clock_now() - start) * 1000
        )
        return _timed_exact(constraints, "smt.tier.fallback_ms")
    GLOBAL_METRICS.timer("smt.tier.float_ms").record(
        (_clock_now() - start) * 1000
    )

    if conflict is not None:
        confirm_start = _clock_now()
        try:
            _confirm_unsat(constraints, conflict.core)
        except TheoryConflict:
            GLOBAL_COUNTERS.float_unsat_confirmed += 1
            raise
        finally:
            GLOBAL_METRICS.timer("smt.tier.exact_ms").record(
                (_clock_now() - confirm_start) * 1000
            )
        # The exact tier refuted the suspected conflict: disagreement,
        # silently corrected by a full exact solve.
        GLOBAL_COUNTERS.tier_disagreements += 1
        GLOBAL_COUNTERS.tier_fallbacks += 1
        return _timed_exact(constraints, "smt.tier.fallback_ms")

    assert candidate is not None
    if float_mode == FLOAT_TRUST_SAT:
        confirm_start = _clock_now()
        model = _confirm_sat(constraints, tableau, candidate)
        GLOBAL_METRICS.timer("smt.tier.exact_ms").record(
            (_clock_now() - confirm_start) * 1000
        )
        if model is not None:
            GLOBAL_COUNTERS.float_sat_confirmed += 1
            return model
        # Candidate failed the exact model check: the float tier was
        # wrong (or merely imprecise); count it and re-solve exactly.
        GLOBAL_COUNTERS.tier_disagreements += 1
    GLOBAL_COUNTERS.tier_fallbacks += 1
    return _timed_exact(constraints, "smt.tier.fallback_ms")
