"""From-scratch SMT substrate for linear integer/real arithmetic.

Replaces the Z3 dependency of the original Sia system (see DESIGN.md,
substitution table).  Public surface:

* terms: :class:`Var`, :class:`LinExpr`
* formulas: :class:`Atom`, :class:`BVar`, ``conj``/``disj``/``negate``,
  comparison builders, NNF/DNF
* solving: :class:`Solver`, :class:`Model`, ``is_satisfiable``,
  ``get_model``, ``implies``, ``all_models``
* proofs: :class:`ProofLog` and the certificate types
  (``Solver(proof=True)``; audited by :mod:`repro.analysis.certify`)
* quantifier elimination: ``eliminate_exists``, ``unsat_region``
* warm sessions: :class:`SmtSession`, :class:`Scope` (activation-literal
  incrementality), :data:`GLOBAL_COUNTERS` instrumentation
* two-tier tableau: :class:`TableauBackend`, ``check_tableau`` and the
  float-filter mode constants (``FLOAT_OFF`` / ``FLOAT_FILTER`` /
  ``FLOAT_TRUST_SAT``); the float tier itself is
  :class:`~repro.smt.floatsimplex.FloatSimplex`
"""

from .backend import (
    FLOAT_FILTER,
    FLOAT_MODES,
    FLOAT_OFF,
    FLOAT_TRUST_SAT,
    TableauBackend,
    check_tableau,
    resolve_float_mode,
)
from .formula import (
    EQ,
    FALSE,
    LE,
    LT,
    NE,
    TRUE,
    And,
    Atom,
    BVar,
    DnfBlowupError,
    Formula,
    Not,
    Or,
    compare,
    conj,
    disj,
    eq,
    fold_atom,
    le,
    lt,
    negate,
    to_dnf,
    to_nnf,
)
from .optimize import bounds, maximize, minimize
from .proof import (
    ClauseStep,
    FarkasCert,
    FarkasEntry,
    IntDivCert,
    ProofLog,
    SplitCert,
    TrichotomyCert,
)
from .qe import EliminationResult, eliminate_exists, unsat_region
from .session import (
    Scope,
    SessionLease,
    SessionPool,
    SmtSession,
    install_session_pool,
    lease_session,
    session_pool,
    uninstall_session_pool,
)
from .simplex import DeltaRational, Simplex, TheoryConflict
from .solver import (
    SAT,
    UNSAT,
    Model,
    Solver,
    SolverError,
    all_models,
    get_model,
    implies,
    is_satisfiable,
)
from .stats import GLOBAL_COUNTERS, SolverCounters
from .terms import INT, REAL, LinExpr, Var, linear_combination
from .theory import SolverBudgetError, check_conjunction, tighten

__all__ = [
    "And",
    "Atom",
    "BVar",
    "ClauseStep",
    "DeltaRational",
    "DnfBlowupError",
    "EliminationResult",
    "EQ",
    "FALSE",
    "FLOAT_FILTER",
    "FLOAT_MODES",
    "FLOAT_OFF",
    "FLOAT_TRUST_SAT",
    "FarkasCert",
    "FarkasEntry",
    "Formula",
    "GLOBAL_COUNTERS",
    "INT",
    "IntDivCert",
    "LE",
    "LT",
    "LinExpr",
    "Model",
    "NE",
    "Not",
    "Or",
    "ProofLog",
    "REAL",
    "SAT",
    "Scope",
    "Simplex",
    "SessionLease",
    "SessionPool",
    "SmtSession",
    "install_session_pool",
    "lease_session",
    "session_pool",
    "uninstall_session_pool",
    "SplitCert",
    "TableauBackend",
    "TrichotomyCert",
    "Solver",
    "SolverBudgetError",
    "SolverCounters",
    "SolverError",
    "TheoryConflict",
    "TRUE",
    "UNSAT",
    "Var",
    "all_models",
    "bounds",
    "check_conjunction",
    "check_tableau",
    "compare",
    "maximize",
    "minimize",
    "conj",
    "disj",
    "eliminate_exists",
    "eq",
    "fold_atom",
    "get_model",
    "implies",
    "is_satisfiable",
    "le",
    "linear_combination",
    "lt",
    "negate",
    "resolve_float_mode",
    "tighten",
    "to_dnf",
    "to_nnf",
    "unsat_region",
]
