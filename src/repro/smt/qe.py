"""Quantifier elimination by Fourier-Motzkin projection.

Sia's FALSE training samples are *unsatisfaction tuples* (Def. 4): an
assignment to the kept columns such that **no** extension to the
remaining columns satisfies the original predicate ``p``.  The set of
such tuples is ``not exists y . p(x, y)``, a formula with one
quantifier alternation.  We compute it by:

1. expanding ``p`` to DNF (cheap -- the paper's workload predicates are
   conjunctions),
2. eliminating the quantified variables from each cube with equality
   substitution + Fourier-Motzkin,
3. negating the resulting quantifier-free disjunction.

Over the reals the projection is exact.  Over the integers the real
shadow *over-approximates* ``exists y``, so its negation
*under-approximates* the unsatisfaction region -- every sample drawn
from it is still a genuine unsatisfaction tuple (soundness is never at
risk), but optimality detection can be conservative.  The projection is
exact over the integers whenever each eliminated variable occurs with
coefficient +-1 in every atom, which covers the paper's entire TPC-H
workload grammar; :class:`EliminationResult.exact` reports this.
"""

from __future__ import annotations

from dataclasses import dataclass

from .formula import (
    EQ,
    FALSE,
    LE,
    LT,
    TRUE,
    Atom,
    Formula,
    conj,
    disj,
    fold_atom,
    negate,
    to_dnf,
)
from .terms import LinExpr, Var
from .theory import tighten


@dataclass
class EliminationResult:
    """Outcome of quantifier elimination.

    ``formula`` is quantifier-free over the kept variables; ``exact``
    reports whether integer elimination was exact (unit coefficients /
    equality substitutions all the way down).
    """

    formula: Formula
    exact: bool


def eliminate_exists(formula: Formula, elim_vars: set[Var]) -> EliminationResult:
    """Quantifier-free equivalent (over reals) of ``exists elim_vars . formula``."""
    cubes = to_dnf(formula)
    exact = True
    projected: list[Formula] = []
    for cube in cubes:
        result = _project_cube(cube, elim_vars)
        if result is None:
            continue  # infeasible cube
        atoms, cube_exact = result
        exact = exact and cube_exact
        projected.append(conj(atoms))
    return EliminationResult(disj(projected), exact)


def unsat_region(formula: Formula, keep_vars: set[Var]) -> EliminationResult:
    """The unsatisfaction-tuple region ``not exists y . formula``.

    ``keep_vars`` are the columns of the synthesized predicate; all
    other variables of ``formula`` are eliminated.  For integer sorts
    the result under-approximates the true region unless ``exact``.
    """
    elim = formula.variables() - keep_vars
    exists = eliminate_exists(formula, elim)
    return EliminationResult(negate(exists.formula), exists.exact)


# ----------------------------------------------------------------------
# Cube projection
# ----------------------------------------------------------------------
def _project_cube(
    cube: list[Atom], elim_vars: set[Var]
) -> tuple[list[Formula], bool] | None:
    """Eliminate ``elim_vars`` from a conjunction of atoms.

    Returns (atoms over the kept variables, exactness flag), or None if
    the cube is detected infeasible during projection.
    """
    atoms: list[Atom] = []
    for atom in cube:
        tightened = tighten(atom)
        if tightened is False:
            return None
        if tightened is True:
            continue
        atoms.append(tightened)

    exact = True
    # Eliminate one variable at a time; order by fewest occurrences to
    # keep intermediate systems small.
    remaining = sorted(
        (var for var in elim_vars),
        key=lambda v: (sum(1 for a in atoms if v in a.expr.coeffs), v.name),
    )
    for var in remaining:
        step = _eliminate_var(atoms, var)
        if step is None:
            return None
        atoms, step_exact = step
        exact = exact and step_exact
    return list(atoms), exact


def _eliminate_var(
    atoms: list[Atom], var: Var
) -> tuple[list[Atom], bool] | None:
    touching = [a for a in atoms if var in a.expr.coeffs]
    if not touching:
        return atoms, True
    others = [a for a in atoms if var not in a.expr.coeffs]

    # Prefer substitution through an equality (exact when coeff is +-1,
    # or when the variable is real-sorted).
    for atom in touching:
        if atom.op != EQ:
            continue
        coeff = atom.expr.coeffs[var]
        # atom: coeff*var + rest = 0  =>  var = -rest/coeff
        replacement = -(atom.expr - LinExpr.var(var) * coeff) / coeff
        exact = (not var.is_int) or abs(coeff) == 1
        new_atoms: list[Atom] = []
        for other in touching:
            if other is atom:
                continue
            folded = fold_atom(Atom(other.expr.substitute(var, replacement), other.op))
            if folded is FALSE:
                return None
            if folded is TRUE:
                continue
            assert isinstance(folded, Atom)
            new_atoms.append(folded)
        return others + new_atoms, exact

    # Fourier-Motzkin over the inequalities.
    uppers: list[Atom] = []  # coeff > 0: var bounded above
    lowers: list[Atom] = []  # coeff < 0: var bounded below
    for atom in touching:
        if atom.expr.coeffs[var] > 0:
            uppers.append(atom)
        else:
            lowers.append(atom)
    if not uppers or not lowers:
        # Unbounded on one side: the touching constraints are always
        # satisfiable by pushing var far enough; drop them.
        return others, True

    exact = True
    combined: list[Atom] = []
    for up in uppers:
        a_up = up.expr.coeffs[var]
        for low in lowers:
            a_low = low.expr.coeffs[var]  # negative
            if var.is_int and not (a_up == 1 or a_low == -1):
                exact = False
            op = LT if (up.op == LT or low.op == LT) else LE
            # (-a_low) * up.expr + a_up * low.expr has var cancelled.
            merged_expr = up.expr * (-a_low) + low.expr * a_up
            folded = fold_atom(Atom(merged_expr, op))
            if folded is FALSE:
                return None
            if folded is TRUE:
                continue
            assert isinstance(folded, Atom)
            tightened = tighten(folded)
            if tightened is False:
                return None
            if tightened is True:
                continue
            combined.append(tightened)
    return others + combined, exact
