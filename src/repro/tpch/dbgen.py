"""dbgen-style TPC-H data generation on numpy.

Follows the distributions of the TPC-H specification where they matter
for the paper's experiments (order-date uniform over 1992-01-01 ..
1998-08-02; ship/commit/receipt dates as bounded offsets from the order
date; quantities 1..50; ~4 lineitems per order) and simplifies the
rest.  Deterministic for a given (scale factor, seed).
"""

from __future__ import annotations

import datetime as dt

import numpy as np

from ..engine import Catalog, Table
from ..predicates import date_to_days
from .schema import BASE_ROWS, START_DATE, TPCH_SCHEMA

# dbgen draws o_orderdate from [STARTDATE, ENDDATE - 151 days].
_ORDERDATE_MIN = date_to_days(START_DATE)
_ORDERDATE_MAX = date_to_days(dt.date(1998, 8, 2))


def _rows(table: str, scale_factor: float) -> int:
    if table in ("region", "nation"):
        return BASE_ROWS[table]
    return max(1, int(BASE_ROWS[table] * scale_factor))


def generate_catalog(scale_factor: float = 0.01, *, seed: int = 0) -> Catalog:
    """All eight TPC-H tables at the given scale factor."""
    rng = np.random.default_rng(seed)
    catalog = Catalog()

    catalog.register(
        Table("region", TPCH_SCHEMA["region"], {"r_regionkey": np.arange(5)})
    )
    catalog.register(
        Table(
            "nation",
            TPCH_SCHEMA["nation"],
            {
                "n_nationkey": np.arange(25),
                "n_regionkey": np.arange(25) % 5,
            },
        )
    )

    n_supp = _rows("supplier", scale_factor)
    catalog.register(
        Table(
            "supplier",
            TPCH_SCHEMA["supplier"],
            {
                "s_suppkey": np.arange(1, n_supp + 1),
                "s_nationkey": rng.integers(0, 25, n_supp),
                "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, n_supp), 2),
            },
        )
    )

    n_cust = _rows("customer", scale_factor)
    catalog.register(
        Table(
            "customer",
            TPCH_SCHEMA["customer"],
            {
                "c_custkey": np.arange(1, n_cust + 1),
                "c_nationkey": rng.integers(0, 25, n_cust),
                "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, n_cust), 2),
            },
        )
    )

    n_part = _rows("part", scale_factor)
    catalog.register(
        Table(
            "part",
            TPCH_SCHEMA["part"],
            {
                "p_partkey": np.arange(1, n_part + 1),
                "p_size": rng.integers(1, 51, n_part),
                "p_retailprice": np.round(
                    900.0 + (np.arange(1, n_part + 1) % 1000) / 10.0, 2
                ),
            },
        )
    )

    n_ps = _rows("partsupp", scale_factor)
    catalog.register(
        Table(
            "partsupp",
            TPCH_SCHEMA["partsupp"],
            {
                "ps_partkey": rng.integers(1, n_part + 1, n_ps),
                "ps_suppkey": rng.integers(1, n_supp + 1, n_ps),
                "ps_availqty": rng.integers(1, 10_000, n_ps),
                "ps_supplycost": np.round(rng.uniform(1.0, 1000.0, n_ps), 2),
            },
        )
    )

    n_orders = _rows("orders", scale_factor)
    o_orderdate = rng.integers(_ORDERDATE_MIN, _ORDERDATE_MAX + 1, n_orders)
    catalog.register(
        Table(
            "orders",
            TPCH_SCHEMA["orders"],
            {
                "o_orderkey": np.arange(1, n_orders + 1),
                "o_custkey": rng.integers(1, n_cust + 1, n_orders),
                "o_totalprice": np.round(rng.uniform(857.71, 555285.16, n_orders), 2),
                "o_orderdate": o_orderdate,
                "o_shippriority": np.zeros(n_orders, dtype=np.int64),
            },
        )
    )

    lines_per_order = rng.integers(1, 8, n_orders)
    n_lines = int(lines_per_order.sum())
    l_orderkey = np.repeat(np.arange(1, n_orders + 1), lines_per_order)
    order_dates = np.repeat(o_orderdate, lines_per_order)
    # dbgen: shipdate = orderdate + U(1, 121); commitdate = orderdate +
    # U(30, 90); receiptdate = shipdate + U(1, 30).
    l_shipdate = order_dates + rng.integers(1, 122, n_lines)
    l_commitdate = order_dates + rng.integers(30, 91, n_lines)
    l_receiptdate = l_shipdate + rng.integers(1, 31, n_lines)
    l_quantity = rng.integers(1, 51, n_lines)
    l_partkey = rng.integers(1, n_part + 1, n_lines)
    base_price = 900.0 + (l_partkey % 1000) / 10.0
    catalog.register(
        Table(
            "lineitem",
            TPCH_SCHEMA["lineitem"],
            {
                "l_orderkey": l_orderkey,
                "l_partkey": l_partkey,
                "l_suppkey": rng.integers(1, n_supp + 1, n_lines),
                "l_linenumber": _line_numbers(lines_per_order),
                "l_quantity": l_quantity,
                "l_extendedprice": np.round(base_price * l_quantity, 2),
                "l_discount": np.round(rng.uniform(0.0, 0.10, n_lines), 2),
                "l_tax": np.round(rng.uniform(0.0, 0.08, n_lines), 2),
                "l_shipdate": l_shipdate,
                "l_commitdate": l_commitdate,
                "l_receiptdate": l_receiptdate,
            },
        )
    )
    return catalog


def _line_numbers(lines_per_order: np.ndarray) -> np.ndarray:
    """1, 2, ..., k per order, concatenated (vectorised)."""
    total = int(lines_per_order.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.cumsum(lines_per_order) - lines_per_order
    return np.arange(total) - np.repeat(starts, lines_per_order) + 1
