"""The paper's 200-query benchmark workload (section 6.3).

Template::

    SELECT * FROM lineitem, orders
    WHERE o_orderkey = l_orderkey AND predicate

``predicate`` is a random conjunction of 3..8 binary arithmetic terms
over three lineitem date columns (l_shipdate, l_commitdate,
l_receiptdate) and o_orderdate.  Every term references o_orderdate, so
the optimizer cannot push any original conjunct down to lineitem --
which is exactly the opportunity Sia exploits.  Unsatisfiable
predicates are regenerated, mirroring the paper.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass

from ..errors import SynthesisError
from ..predicates import (
    Col,
    Column,
    Comparison,
    DATE,
    INTEGER,
    Lit,
    Pred,
    lower_predicate,
    pand,
)
from ..smt import is_satisfiable
from ..sql.binder import BoundQuery
from ..sql.printer import render_query
from .schema import TPCH_SCHEMA

LINEITEM_DATES = (
    Column("lineitem", "l_shipdate", DATE),
    Column("lineitem", "l_commitdate", DATE),
    Column("lineitem", "l_receiptdate", DATE),
)
ORDERDATE = Column("orders", "o_orderdate", DATE)
ORDERKEY = Column("orders", "o_orderkey", INTEGER)
LINEITEM_ORDERKEY = Column("lineitem", "l_orderkey", INTEGER)

_OPS = ("<", "<=", ">", ">=")
_DATE_LO = dt.date(1992, 6, 1)
_DATE_HI = dt.date(1998, 1, 1)


@dataclass
class WorkloadQuery:
    """One benchmark query: SQL text plus its bound form."""

    index: int
    query: BoundQuery
    predicate: Pred  # the non-join conjunction (synthesis input)

    @property
    def sql(self) -> str:
        return render_query(self.query)


def _random_date(rng: random.Random) -> Lit:
    span = (_DATE_HI - _DATE_LO).days
    return Lit.date(_DATE_LO + dt.timedelta(days=rng.randrange(span)))


def _random_interval(rng: random.Random) -> Lit:
    return Lit.integer(rng.randint(-90, 120))


def _random_term(rng: random.Random) -> tuple[Comparison, bool]:
    """One term referencing o_orderdate; the flag reports whether it
    also uses a lineitem column."""
    op = rng.choice(_OPS)
    pattern = rng.choices(
        ("order_vs_const", "diff_vs_interval", "diff_vs_diff", "col_vs_shifted"),
        weights=(2, 4, 3, 3),
    )[0]
    lcols = list(LINEITEM_DATES)
    rng.shuffle(lcols)
    if pattern == "order_vs_const":
        return Comparison(Col(ORDERDATE), op, _random_date(rng)), False
    if pattern == "diff_vs_interval":
        # l - o OP interval
        return (
            Comparison(Col(lcols[0]) - Col(ORDERDATE), op, _random_interval(rng)),
            True,
        )
    if pattern == "diff_vs_diff":
        # l1 - o OP l2 - l3 + interval
        rhs = (Col(lcols[1]) - Col(lcols[2])) + _random_interval(rng)
        return Comparison(Col(lcols[0]) - Col(ORDERDATE), op, rhs), True
    # col_vs_shifted: l OP o + interval
    return (
        Comparison(Col(lcols[0]), op, Col(ORDERDATE) + _random_interval(rng)),
        True,
    )


def random_predicate(rng: random.Random) -> Pred:
    """One satisfiable conjunctive predicate per the section 6.3 grammar."""
    for _ in range(200):
        num_terms = rng.randint(3, 8)
        terms = []
        uses_lineitem = False
        for _ in range(num_terms):
            term, touches = _random_term(rng)
            terms.append(term)
            uses_lineitem = uses_lineitem or touches
        if not uses_lineitem:
            continue
        predicate = pand(terms)
        formula, _ = lower_predicate(predicate)
        if is_satisfiable(formula):
            return predicate
    raise SynthesisError("could not generate a satisfiable predicate")


def make_query(index: int, predicate: Pred) -> WorkloadQuery:
    """Wrap a predicate in the section 6.3 join template."""
    join = Comparison(Col(ORDERKEY), "=", Col(LINEITEM_ORDERKEY))
    query = BoundQuery(
        tables=["lineitem", "orders"],
        where=pand([join, predicate]),
        projections=None,
    )
    return WorkloadQuery(index=index, query=query, predicate=predicate)


def generate_workload(count: int = 200, *, seed: int = 42) -> list[WorkloadQuery]:
    """The paper's collection of ``count`` random queries."""
    rng = random.Random(seed)
    return [make_query(i, random_predicate(rng)) for i in range(count)]


def schema():
    """Binder schema for the workload's tables."""
    return {name: dict(cols) for name, cols in TPCH_SCHEMA.items()}
