"""TPC-H-derived query library for the bundled engine.

These are the standard TPC-H queries restricted to the predicate
fragment this reproduction supports (section 4.1: no TEXT columns, no
subqueries).  Each entry adapts the official query's *access pattern*
-- its joins, date-range filters and aggregation shape -- so the
engine, parser and rewriter can be exercised on realistic workloads
beyond the section 6.3 generator.

Use :func:`get_query` / :func:`all_queries` to fetch SQL strings, bind
them against :func:`repro.tpch.workload.schema`, and run them with
:mod:`repro.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LibraryQuery:
    name: str
    description: str
    sql: str
    rewritable: bool  # has a cross-table predicate Sia can work on


QUERIES: dict[str, LibraryQuery] = {}


def _register(name: str, description: str, sql: str, *, rewritable: bool) -> None:
    QUERIES[name] = LibraryQuery(name, description, " ".join(sql.split()), rewritable)


_register(
    "q1_pricing_summary",
    "TPC-H Q1 shape: scan-heavy aggregation over recent lineitems "
    "(grouping key adapted from the TEXT return flag to the line number).",
    """
    SELECT l_linenumber, COUNT(*), SUM(l_quantity), SUM(l_extendedprice),
           AVG(l_discount)
    FROM lineitem
    WHERE l_shipdate <= DATE '1998-09-02'
    GROUP BY l_linenumber
    ORDER BY l_linenumber
    """,
    rewritable=False,
)

_register(
    "q3_shipping_priority",
    "TPC-H Q3 shape: revenue of orders placed before a date with "
    "lineitems shipped after it, top results first.",
    """
    SELECT l_orderkey, SUM(l_extendedprice)
    FROM lineitem, orders
    WHERE o_orderkey = l_orderkey
      AND o_orderdate < DATE '1995-03-15'
      AND l_shipdate > DATE '1995-03-15'
    GROUP BY l_orderkey
    ORDER BY l_orderkey
    LIMIT 10
    """,
    rewritable=False,
)

_register(
    "q4_order_priority",
    "TPC-H Q4 shape (the paper's section 6.3 template base): orders in "
    "a quarter whose lineitems were committed before receipt.",
    """
    SELECT COUNT(*)
    FROM lineitem, orders
    WHERE o_orderkey = l_orderkey
      AND o_orderdate >= DATE '1993-07-01'
      AND o_orderdate < DATE '1993-10-01'
      AND l_commitdate < l_receiptdate
    """,
    rewritable=False,
)

_register(
    "q6_forecast_revenue",
    "TPC-H Q6: pure single-table range filters and a global aggregate.",
    """
    SELECT SUM(l_extendedprice), COUNT(*)
    FROM lineitem
    WHERE l_shipdate >= DATE '1994-01-01'
      AND l_shipdate < DATE '1995-01-01'
      AND l_discount >= 0.05 AND l_discount <= 0.07
      AND l_quantity < 24
    """,
    rewritable=False,
)

_register(
    "q12_shipping_modes",
    "TPC-H Q12 shape: late-shipment analysis with cross-table date "
    "arithmetic -- every interesting predicate references o_orderdate, "
    "so Sia can synthesize lineitem-only bounds.",
    """
    SELECT COUNT(*)
    FROM lineitem, orders
    WHERE o_orderkey = l_orderkey
      AND l_commitdate < l_receiptdate
      AND l_shipdate < l_commitdate
      AND l_receiptdate - o_orderdate < 120
      AND o_orderdate >= DATE '1994-01-01'
      AND o_orderdate < DATE '1995-01-01'
    """,
    rewritable=True,
)

_register(
    "q_motivating",
    "The paper's section 2 motivating query Q1.",
    """
    SELECT * FROM lineitem, orders
    WHERE o_orderkey = l_orderkey
      AND l_shipdate - o_orderdate < 20
      AND o_orderdate < DATE '1993-06-01'
      AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10
    """,
    rewritable=True,
)


def get_query(name: str) -> LibraryQuery:
    """Look up a library query by name (KeyError lists options)."""
    try:
        return QUERIES[name]
    except KeyError:
        raise KeyError(
            f"unknown query {name!r}; available: {sorted(QUERIES)}"
        ) from None


def all_queries() -> list[LibraryQuery]:
    """All library queries, sorted by name."""
    return [QUERIES[name] for name in sorted(QUERIES)]
