"""TPC-H substrate: schema, dbgen-style data, and the paper's workload."""

from .dbgen import generate_catalog
from .schema import BASE_ROWS, CURRENT_DATE, END_DATE, START_DATE, TPCH_SCHEMA
from .workload import (
    LINEITEM_DATES,
    ORDERDATE,
    WorkloadQuery,
    generate_workload,
    make_query,
    random_predicate,
)

__all__ = [
    "BASE_ROWS",
    "CURRENT_DATE",
    "END_DATE",
    "LINEITEM_DATES",
    "ORDERDATE",
    "START_DATE",
    "TPCH_SCHEMA",
    "WorkloadQuery",
    "generate_catalog",
    "generate_workload",
    "make_query",
    "random_predicate",
]
