"""TPC-H schema (revision 2.16) restricted to Sia-typed columns.

The paper's predicate fragment has no TEXT type (section 4.1), so the
string columns of TPC-H (names, comments, flags) are omitted; every
numeric, date and key column of all eight tables is present.  Dates are
stored as int64 day offsets from the global epoch.
"""

from __future__ import annotations

import datetime as dt

from ..predicates import DATE, DOUBLE, INTEGER

# Date range used by dbgen.
START_DATE = dt.date(1992, 1, 1)
END_DATE = dt.date(1998, 12, 31)
CURRENT_DATE = dt.date(1995, 6, 17)

TPCH_SCHEMA: dict[str, dict[str, str]] = {
    "region": {
        "r_regionkey": INTEGER,
    },
    "nation": {
        "n_nationkey": INTEGER,
        "n_regionkey": INTEGER,
    },
    "supplier": {
        "s_suppkey": INTEGER,
        "s_nationkey": INTEGER,
        "s_acctbal": DOUBLE,
    },
    "customer": {
        "c_custkey": INTEGER,
        "c_nationkey": INTEGER,
        "c_acctbal": DOUBLE,
    },
    "part": {
        "p_partkey": INTEGER,
        "p_size": INTEGER,
        "p_retailprice": DOUBLE,
    },
    "partsupp": {
        "ps_partkey": INTEGER,
        "ps_suppkey": INTEGER,
        "ps_availqty": INTEGER,
        "ps_supplycost": DOUBLE,
    },
    "orders": {
        "o_orderkey": INTEGER,
        "o_custkey": INTEGER,
        "o_totalprice": DOUBLE,
        "o_orderdate": DATE,
        "o_shippriority": INTEGER,
    },
    "lineitem": {
        "l_orderkey": INTEGER,
        "l_partkey": INTEGER,
        "l_suppkey": INTEGER,
        "l_linenumber": INTEGER,
        "l_quantity": INTEGER,
        "l_extendedprice": DOUBLE,
        "l_discount": DOUBLE,
        "l_tax": DOUBLE,
        "l_shipdate": DATE,
        "l_commitdate": DATE,
        "l_receiptdate": DATE,
    },
}

# Base cardinalities at scale factor 1 (TPC-H spec, section 4.2.5).
BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    # lineitem is ~4x orders (1..7 lines per order).
}
