"""Learning substrate: linear SVM and exact hyperplane predicates."""

from .hyperplane import DisjunctivePredicate, Hyperplane, hyperplane_from_floats
from .rationalize import rationalize_weights
from .svm import SvmModel, train_linear_svm

__all__ = [
    "DisjunctivePredicate",
    "Hyperplane",
    "SvmModel",
    "hyperplane_from_floats",
    "rationalize_weights",
    "train_linear_svm",
]
