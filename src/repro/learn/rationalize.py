"""Float -> exact rational conversion of learned hyperplanes.

The verification step (section 5.5) feeds the learned predicate to the
SMT solver, so its coefficients must be exact rationals.  We round each
floating-point weight with bounded-denominator continued fractions and
clear denominators, producing integer coefficients.  Tiny weights
(relative to the largest) are snapped to zero -- they are SVM noise and
would otherwise force the synthesized predicate to mention columns the
model does not actually use.
"""

from __future__ import annotations

from math import gcd

import numpy as np


def rationalize_weights(
    weights: np.ndarray,
    bias: float,
    *,
    max_denominator: int = 64,
) -> tuple[list[int], int]:
    """Integer coefficients (weights, bias) defining the same hyperplane.

    The hyperplane is scale-invariant, so we first normalise by the
    largest coefficient magnitude and round the *normalised* values
    with bounded-denominator continued fractions.  Rounding each raw
    float independently would combine unrelated denominators into huge
    integers, which makes the learned predicates unreadable and the
    downstream integer theory solving needlessly expensive.
    """
    weights = np.asarray(weights, dtype=np.float64)
    # sia: allow-float -- documented learn-boundary crossing: this is
    # the last float read before the continued-fraction rounding below
    # converts everything to exact integers.
    magnitude = float(np.max(np.abs(weights))) if weights.size else 0.0
    if magnitude <= 0.0:
        # Degenerate direction: only the bias remains; its sign is all
        # that matters for a constant "hyperplane".
        return [0] * int(weights.size), (0 if bias == 0 else (1 if bias > 0 else -1))

    # Scale so the largest weight becomes `max_denominator`, then round
    # to the integer grid.  This bounds every *weight* coefficient by
    # max_denominator while keeping relative error below
    # 1/(2*max_denominator); the bias keeps its true magnitude (it is
    # an offset, not a direction component).  Rounding each float with
    # an independent continued fraction instead would multiply
    # unrelated denominators into huge integers.
    scale = max_denominator / magnitude
    integers = [int(round(value * scale)) for value in weights]
    int_bias = int(round(bias * scale))

    common = 0
    for value in integers + [int_bias]:
        common = gcd(common, abs(value))
    if common > 1:
        integers = [value // common for value in integers]
        int_bias //= common
    return integers, int_bias
