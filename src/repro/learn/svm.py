"""Linear soft-margin SVM trained by dual coordinate descent.

This replaces LibSVM (DESIGN.md substitution table).  The paper only
uses the *linear* kernel and only consumes the learned hyperplane
``w . x + b``, so we implement the standard dual coordinate descent
algorithm for L1-loss linear SVMs (Hsieh et al., ICML'08 -- the same
algorithm that powers liblinear) on numpy.

The bias is learned by folding a constant feature into the weight
vector (the usual liblinear trick).  Features are max-abs scaled
internally for conditioning; returned weights are in the original
feature space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SvmModel:
    """A separating hyperplane ``w . x + b > 0`` (floating point)."""

    weights: np.ndarray  # shape (n_features,)
    bias: float

    def decision(self, points: np.ndarray) -> np.ndarray:
        return points @ self.weights + self.bias

    def predict(self, points: np.ndarray) -> np.ndarray:
        """True where the model classifies a point as positive."""
        return self.decision(points) > 0.0


def train_linear_svm(
    positives: np.ndarray,
    negatives: np.ndarray,
    *,
    c: float = 1e6,
    bias_scale: float = 1.0,
    max_epochs: int = 300,
    tol: float = 1e-8,
    seed: int = 0,
) -> SvmModel:
    """Train on positive (TRUE) and negative (FALSE) samples.

    Args:
        positives: array (n_pos, d) of TRUE samples.
        negatives: array (n_neg, d) of FALSE samples.
        c: soft-margin penalty.  The default is effectively hard
            margin: Sia needs the TRUE samples classified correctly
            whenever the data is separable (Alg. 2's contract), and the
            max-abs feature scaling below shrinks feature magnitudes so
            small penalties would underfit.
        bias_scale: magnitude of the folded-in constant feature.
        max_epochs: dual coordinate descent epochs.
        tol: projected-gradient stopping tolerance.
        seed: permutation seed (training is deterministic given it).
    """
    positives = np.asarray(positives, dtype=np.float64)
    negatives = np.asarray(negatives, dtype=np.float64)
    if positives.ndim != 2 or negatives.ndim != 2:
        raise ValueError("sample arrays must be two-dimensional")
    if positives.shape[0] == 0:
        raise ValueError("at least one positive sample is required")
    dim = positives.shape[1]
    if negatives.shape[0] == 0:
        # Nothing to separate from: accept everything.
        return SvmModel(np.zeros(dim), 1.0)
    if negatives.shape[1] != dim:
        raise ValueError("positive and negative samples disagree on dimension")

    points = np.vstack([positives, negatives])
    labels = np.concatenate(
        [np.ones(len(positives)), -np.ones(len(negatives))]
    )

    # Max-abs feature scaling for conditioning.
    scale = np.maximum(np.abs(points).max(axis=0), 1.0)
    scaled = points / scale
    # Fold in the bias feature.
    data = np.hstack([scaled, np.full((len(scaled), 1), bias_scale)])

    n, d = data.shape
    alpha = np.zeros(n)
    w = np.zeros(d)
    q_diag = np.einsum("ij,ij->i", data, data)
    q_diag = np.where(q_diag <= 0.0, 1.0, q_diag)
    rng = np.random.default_rng(seed)
    order = np.arange(n)

    for _ in range(max_epochs):
        rng.shuffle(order)
        max_violation = 0.0
        for i in order:
            gradient = labels[i] * (data[i] @ w) - 1.0
            projected = gradient
            if alpha[i] <= 0.0:
                projected = min(gradient, 0.0)
            elif alpha[i] >= c:
                projected = max(gradient, 0.0)
            if projected == 0.0:
                continue
            max_violation = max(max_violation, abs(projected))
            old = alpha[i]
            alpha[i] = min(max(old - gradient / q_diag[i], 0.0), c)
            delta = (alpha[i] - old) * labels[i]
            if delta != 0.0:
                w = w + delta * data[i]
        if max_violation < tol:
            break

    weights = w[:dim] / scale
    # sia: allow-float -- documented learn-boundary crossing: the SVM is
    # float-native; rationalize_weights() restores exactness before the
    # hyperplane re-enters the SMT pipeline.
    bias = float(w[dim] * bias_scale)
    return SvmModel(weights, bias)
