"""Exact learned predicates: hyperplanes and their disjunctions.

Section 5.4 ("Predicate Construction"): each linear SVM model becomes
the arithmetic predicate ``sum(w_i * col_i) + b > 0``; the disjunction
of models maps to a disjunction of such predicates.  Coefficients here
are exact integers (see :mod:`repro.learn.rationalize`), so the
predicate can be fed to the solver and rendered back to SQL.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

import math

from ..errors import SynthesisError
from ..predicates import (
    DATE,
    TIMESTAMP,
    Arith,
    Col,
    Comparison,
    Expr,
    Lit,
    Pred,
    por,
)
from ..predicates.expr import literal_for_column
from ..predicates.normalize import LinearizationContext
from ..smt import LT, Atom, Formula, LinExpr, Var, disj


@dataclass(frozen=True)
class Hyperplane:
    """The predicate ``sum(w_i * var_i) + bias > 0`` (integer coeffs)."""

    coeffs: tuple[tuple[Var, int], ...]
    bias: int

    def __post_init__(self) -> None:
        if all(weight == 0 for _, weight in self.coeffs):
            raise SynthesisError("degenerate hyperplane: all weights zero")

    @property
    def variables(self) -> tuple[Var, ...]:
        return tuple(var for var, weight in self.coeffs if weight != 0)

    def linexpr(self) -> LinExpr:
        cached = _LINEXPR_CACHE.get(self)
        if cached is not None:
            return cached
        expr = LinExpr.const_expr(self.bias)
        for var, weight in self.coeffs:
            if weight:
                expr = expr + LinExpr.var(var) * weight
        # Idempotent memo insert: interning makes both racers compute
        # the identical LinExpr, so losing one insert is harmless.
        _LINEXPR_CACHE[self] = expr  # sia: allow(SIA503)
        return expr

    def formula(self) -> Formula:
        # w.x + b > 0  <=>  -(w.x + b) < 0.  Term/formula interning
        # makes the result the *same object* across calls, so the
        # solver-side identity caches (CNF definitions, NNF) hit.
        return Atom(-self.linexpr(), LT)

    def accepts(self, point: Mapping[Var, Fraction | int]) -> bool:
        total = Fraction(self.bias)
        for var, weight in self.coeffs:
            total += weight * Fraction(point[var])
        return total > 0

    def to_pred(self, ctx: LinearizationContext) -> Pred:
        """Render back to SQL IR through the column mapping of ``ctx``.

        Single-column hyperplanes simplify to plain bound comparisons
        (``l_shipdate <= DATE '1993-06-19'``), matching the shape of
        the paper's rewritten queries and keeping the engine's filter
        cost low; multi-column ones render as ``terms > const``.
        """
        active = [(var, weight) for var, weight in self.coeffs if weight != 0]
        if len(active) == 1:
            simplified = self._single_column_pred(active[0], ctx)
            if simplified is not None:
                return simplified
        expr: Expr | None = None
        for var, weight in active:
            term = _column_term(var, ctx)
            if weight != 1:
                term = Arith("*", Lit.integer(weight), term)
            expr = term if expr is None else Arith("+", expr, term)
        if expr is None:  # pragma: no cover - prevented by __post_init__
            raise SynthesisError("hyperplane with no terms")
        return Comparison(expr, ">", Lit.integer(-self.bias))

    def _single_column_pred(
        self, term: tuple[Var, int], ctx: LinearizationContext
    ) -> Pred | None:
        """``w*v + b > 0`` over one column as a direct bound."""
        var, weight = term
        column = ctx.column_of_var.get(var)
        if column is None:
            return None
        bound = -Fraction(self.bias) / weight  # v > bound (w>0) or v < bound
        if weight > 0:
            if var.is_int:
                # v > bound  <=>  v >= floor(bound) + 1
                value = ctx.decode_value(Fraction(math.floor(bound) + 1), column)
                return Comparison(Col(column), ">=", literal_for_column(column, value))
            return Comparison(
                Col(column), ">", literal_for_column(column, ctx.decode_value(bound, column))
            )
        if var.is_int:
            # v < bound  <=>  v <= ceil(bound) - 1
            value = ctx.decode_value(Fraction(math.ceil(bound) - 1), column)
            return Comparison(Col(column), "<=", literal_for_column(column, value))
        return Comparison(
            Col(column), "<", literal_for_column(column, ctx.decode_value(bound, column))
        )

    def __str__(self) -> str:
        parts = []
        for var, weight in self.coeffs:
            if weight == 0:
                continue
            name = var.name.split(".")[-1]
            if weight == 1:
                parts.append(name)
            elif weight == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{weight}*{name}")
        if self.bias:
            parts.append(str(self.bias))
        return " + ".join(parts).replace("+ -", "- ") + " > 0"


#: Memoized linearization, keyed weakly on the (frozen, hashable)
#: hyperplane so entries die with their planes.  The CEGIS loop calls
#: ``formula()`` on the same planes once per iteration (candidate
#: formulas, pruning probes, counter-example bases).
_LINEXPR_CACHE: "weakref.WeakKeyDictionary[Hyperplane, LinExpr]" = (
    weakref.WeakKeyDictionary()
)


def _column_term(var: Var, ctx: LinearizationContext) -> Expr:
    """SQL expression whose integer encoding equals ``var``."""
    column = ctx.column_of_var.get(var)
    if column is None:
        packed = ctx.packed_expr_of_var.get(var)
        if packed is None:
            raise SynthesisError(f"variable {var} has no column mapping")
        return packed
    if column.ctype == DATE:
        # The variable holds days since the context origin.
        return Arith("-", Col(column), Lit.date(ctx.date_origin))
    if column.ctype == TIMESTAMP:
        return Arith("-", Col(column), Lit.timestamp(ctx.ts_origin))
    return Col(column)


@dataclass(frozen=True)
class DisjunctivePredicate:
    """Disjunction of hyperplanes -- the output shape of Learn (Alg. 2)."""

    planes: tuple[Hyperplane, ...]

    def __post_init__(self) -> None:
        if not self.planes:
            raise SynthesisError("empty disjunction")

    def formula(self) -> Formula:
        return disj([plane.formula() for plane in self.planes])

    def accepts(self, point: Mapping[Var, Fraction | int]) -> bool:
        return any(plane.accepts(point) for plane in self.planes)

    def to_pred(self, ctx: LinearizationContext) -> Pred:
        return por([plane.to_pred(ctx) for plane in self.planes])

    @property
    def variables(self) -> tuple[Var, ...]:
        seen: dict[Var, None] = {}
        for plane in self.planes:
            for var in plane.variables:
                seen.setdefault(var)
        return tuple(seen)

    def __str__(self) -> str:
        return " OR ".join(str(plane) for plane in self.planes)


def hyperplane_from_floats(
    variables: Sequence[Var],
    weights,
    bias: float,
    *,
    max_denominator: int = 64,
) -> Hyperplane | None:
    """Build an exact hyperplane from SVM output; None if degenerate."""
    from .rationalize import rationalize_weights

    int_weights, int_bias = rationalize_weights(
        weights, bias, max_denominator=max_denominator
    )
    if all(weight == 0 for weight in int_weights):
        return None
    coeffs = tuple(zip(tuple(variables), (int(w) for w in int_weights)))
    return Hyperplane(coeffs, int(int_bias))
