"""Training-sample generation with the SMT solver (section 5.3).

TRUE samples are models of ``p AND NotOld`` projected onto the target
columns (feasible restrictions, Lemma 3).  FALSE samples are models of
``UnsatRegion(p) AND NotOld`` where the unsatisfaction region comes
from quantifier elimination (Lemma 4 / section 4.2).

``NotOld`` is rebuilt from the accumulated sample list on every query,
exactly as the paper describes: a conjunction whose terms force the
target columns to differ from every existing sample.

Diversification ("Additional Heuristics" in section 5.3): plain model
enumeration returns clustered vertices, so the default strategy first
tries random interval constraints around a random centre inside the
sampling box and relaxes on unsatisfiability.  The ``sequential``
strategy (used by the ablation benchmark) skips the randomisation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction

from ..smt import (
    LE,
    LT,
    NE,
    SAT,
    Atom,
    Formula,
    LinExpr,
    SolverError,
    Var,
    compare,
    conj,
    disj,
    lease_session,
)
from ..smt.theory import SolverBudgetError
from .config import RANDOM_BOX, SiaConfig
from .result import Point


def not_old_formula(points: list[Point], variables: list[Var]) -> Formula:
    """``AND over samples of (OR over columns of col != value)``."""
    terms = []
    for point in points:
        terms.append(
            disj(
                [
                    Atom(LinExpr.var(var) - point[var], NE)
                    for var in variables
                ]
            )
        )
    return conj(terms)


def box_formula(variables: list[Var], box: int) -> Formula:
    """Keep sample magnitudes small: ``-box <= var <= box`` per column."""
    bounds = []
    for var in variables:
        expr = LinExpr.var(var)
        bounds.append(compare(expr, "<=", LinExpr.const_expr(box)))
        bounds.append(compare(LinExpr.const_expr(-box), "<=", expr))
    return conj(bounds)


@dataclass
class SampleSet:
    """Result of a sampling request."""

    points: list[Point] = field(default_factory=list)
    exhausted: bool = False  # the constraint ran out of new models


class Sampler:
    """Draws diverse models of formulas, projected onto target columns."""

    def __init__(self, config: SiaConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng

    # ------------------------------------------------------------------
    def sample(
        self,
        base: Formula,
        variables: list[Var],
        count: int,
        *,
        existing: list[Point] | None = None,
        random_attempts: int | None = None,
    ) -> SampleSet:
        """Up to ``count`` new models of ``base`` distinct from
        ``existing`` on the target ``variables``.

        ``random_attempts`` controls how many randomised-region solves
        are tried per sample before falling back to plain enumeration
        (counter-example mining uses fewer attempts than initial-sample
        generation -- the paper just takes whatever model the solver
        returns there).
        """
        if random_attempts is None:
            random_attempts = 2 if self.config.sampling_strategy == RANDOM_BOX else 0
        from ..obs.trace import get_tracer

        with get_tracer().span(
            "samples.draw", requested=count, random_attempts=random_attempts
        ) as span:
            result = self._sample(
                base, variables, count, existing, random_attempts
            )
            span.set(found=len(result.points), exhausted=result.exhausted)
            return result

    def _sample(
        self,
        base: Formula,
        variables: list[Var],
        count: int,
        existing: list[Point] | None,
        random_attempts: int,
    ) -> SampleSet:
        points: list[Point] = []
        all_known = list(existing or [])
        # One persistent session serves every sample of this call
        # (base + box + growing NotOld); randomised sub-regions are
        # layered on via *assumptions* and the sampling box rides in a
        # retractable scope, so a single warm CDCL instance covers both
        # the boxed search and the unboxed fallback (historically two
        # separate solvers, rebuilt per call).
        enumerator = _IncrementalEnumerator(
            base, variables, all_known, self.config, with_box=True
        )

        try:
            for _ in range(count):
                point = None
                for attempt in range(random_attempts):
                    assumptions = self._random_region_atoms(variables)
                    if attempt == 0:
                        assumptions += self._nonzero_atoms(variables)
                    point = enumerator.next(all_known, assumptions=assumptions)
                    if point is not None:
                        break
                if point is None:
                    point = enumerator.next(all_known)
                if point is None:
                    # Unboxed fallback: same session, box scope disabled.
                    point = enumerator.next(all_known, boxed=False)
                if point is None:
                    return SampleSet(points, exhausted=True)
                points.append(point)
                all_known.append(point)
            return SampleSet(points, exhausted=False)
        finally:
            # Retract the box scope before abandoning the session;
            # without this every sampling call leaked one opened scope
            # into the counters (the `scopes_retracted: 0` artifact in
            # the cold-path bench rows).
            enumerator.close()

    # ------------------------------------------------------------------
    def _random_region_atoms(self, variables: list[Var]) -> list:
        """Random sub-interval per column, as assumption literals."""
        box = self.config.sample_box
        width = max(box // 2, 1)
        atoms = []
        for var in variables:
            low = self.rng.randint(-box, box - width)
            expr = LinExpr.var(var)
            # low <= var  as  (low - var) <= 0;  var <= low+width likewise.
            atoms.append(Atom(LinExpr.const_expr(low) - expr, LE))
            atoms.append(Atom(expr - (low + width), LE))
        return atoms

    def _nonzero_atoms(self, variables: list[Var]) -> list:
        """The paper's 'values must not be equal to zero' heuristic.

        Encoded as strict one-sided literals (var > 0 or var < 0 chosen
        at random) because assumptions must be literal-shaped.
        """
        atoms = []
        for var in variables:
            expr = LinExpr.var(var)
            if self.rng.random() < 0.5:
                atoms.append(Atom(-expr, LT))  # var > 0
            else:
                atoms.append(Atom(expr, LT))  # var < 0
        return atoms


class IncrementalEnumerator:
    """A warm session kept across samples: blocks each returned point.

    All additions are monotone (more constraints, more blocked
    points), so one CDCL instance with its learned clauses serves an
    entire enumeration -- this is what makes the counter-example loop
    cheap.  ``add`` conjoins further constraints (e.g. newly learned
    valid predicates in the FALSE counter-example search).

    The sampling box is held in a retractable scope rather than
    asserted outright, so the unboxed fallback (``next(...,
    boxed=False)``) reuses the same warm session instead of building a
    second solver over the same base formula.

    The session comes from a :func:`repro.smt.lease_session` lease:
    with a :class:`~repro.smt.SessionPool` installed (worker processes
    of the sharded driver), enumerations over a recurring base formula
    -- every CEGIS iteration's TRUE sampler shares one base -- reuse a
    warm pooled session, and all additions ride in the lease's
    retractable work scope so nothing leaks into the next checkout.
    """

    def __init__(
        self,
        base: Formula,
        variables: list[Var],
        known: list[Point],
        config: SiaConfig,
        *,
        with_box: bool,
    ) -> None:
        self.variables = variables
        self._lease = lease_session(
            (base,),
            bnb_budget=config.bnb_budget,
            float_filter=config.float_filter,
        )
        self.session = self._lease.session
        self._box_scope = (
            self._lease.push(
                box_formula(variables, config.sample_box), label="sample-box"
            )
            if with_box
            else None
        )
        self.blocked = 0
        self._block(known)

    def add(self, formula: Formula) -> None:
        self._lease.add(formula)

    def _block(self, points: list[Point]) -> None:
        for point in points[self.blocked:]:
            self._lease.add(not_old_formula([point], self.variables))
            self.blocked += 1

    def next(
        self,
        known: list[Point],
        assumptions: list | None = None,
        *,
        boxed: bool = True,
    ) -> Point | None:
        self._block(known)
        disable = (
            [self._box_scope]
            if (not boxed and self._box_scope is not None)
            else []
        )
        try:
            if self.session.check(assumptions, disable=disable) != SAT:
                return None
        except (SolverError, SolverBudgetError):
            return None
        model = self.session.model()
        return {var: model.value(var) for var in self.variables}

    def close(self) -> None:
        """Release the session lease: retracts the box and work scopes
        and returns the session to the pool (or closes it when
        unpooled).  Idempotent."""
        self._lease.release()


# Backwards-compatible alias used inside Sampler.
_IncrementalEnumerator = IncrementalEnumerator


def enumerate_all(
    base: Formula,
    variables: list[Var],
    limit: int,
    *,
    bnb_budget: int = 4000,
    float_filter: str | None = None,
) -> SampleSet:
    """Exhaustively enumerate models (the finite-domain fallback of
    section 5.3).  ``exhausted=True`` means the enumeration completed;
    ``False`` means the limit was hit."""
    points: list[Point] = []
    lease = lease_session(
        (base,), bnb_budget=bnb_budget, float_filter=float_filter
    )
    try:
        for _ in range(limit):
            try:
                if lease.check() != SAT:
                    return SampleSet(points, exhausted=True)
            except (SolverError, SolverBudgetError):
                return SampleSet(points, exhausted=False)
            model = lease.model()
            point = {var: model.value(var) for var in variables}
            points.append(point)
            lease.add(not_old_formula([point], variables))
        return SampleSet(points, exhausted=False)
    finally:
        # Historically this session was simply abandoned (leaked
        # scopes and an unbalanced sessions_created); releasing the
        # lease balances the counters and lets a pool reuse it.
        lease.release()


def point_key(point: Point, variables: list[Var]) -> tuple[Fraction, ...]:
    """Hashable projection of a point (used for dedup in tests/benches)."""
    return tuple(point[var] for var in variables)
