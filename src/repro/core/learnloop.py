"""The Learn procedure (Algorithm 2).

Train a linear SVM on (TRUE, FALSE) samples; if some TRUE samples are
misclassified, retrain on just those (plus all FALSE samples) and
disjoin the models, repeating until every TRUE sample is accepted.

The paper's contract is that Learn returns a predicate classifying all
TRUE samples correctly.  A linear SVM cannot always make progress on
degenerate sample sets (e.g. a TRUE point lying inside the convex hull
of FALSE points); when that happens we *force* separation by shifting
the intercept of the current direction until all remaining TRUE
samples are accepted -- the verifier then rejects the predicate if the
forced plane overreaches, which is exactly how the paper handles the
non-separable limitation (section 6.7).
"""

from __future__ import annotations

import math
import random
from fractions import Fraction

import numpy as np

from ..errors import SynthesisError
from ..learn import DisjunctivePredicate, Hyperplane, train_linear_svm
from ..smt import Var
from .config import SiaConfig
from .result import Point


def _points_to_array(points: list[Point], variables: list[Var]) -> np.ndarray:
    return np.array(
        [[float(point[var]) for var in variables] for point in points],
        dtype=np.float64,
    )


def learn(
    ts: list[Point],
    fs: list[Point],
    variables: list[Var],
    config: SiaConfig,
    rng: random.Random,
) -> DisjunctivePredicate:
    """Learn a predicate accepting all of ``ts`` (Alg. 2)."""
    if not ts:
        raise SynthesisError("Learn requires at least one TRUE sample")
    if not fs:
        raise SynthesisError("Learn requires at least one FALSE sample")

    fs_array = _points_to_array(fs, variables)
    remaining = list(ts)
    planes: list[Hyperplane] = []

    while remaining:
        ts_array = _points_to_array(remaining, variables)
        model = train_linear_svm(
            ts_array,
            fs_array,
            c=config.svm_c,
            seed=rng.randrange(2**31),
        )
        plane = _plane_with_exact_bias(
            model.weights, remaining, fs, variables, config
        )
        accepted: list[Point] = []
        if plane is not None:
            accepted = [point for point in remaining if plane.accepts(point)]
        if plane is None or not accepted:
            plane = _forced_plane(remaining, fs, variables, model.weights)
            accepted = list(remaining)
        planes.append(plane)
        accepted_keys = {id(point) for point in accepted}
        remaining = [point for point in remaining if id(point) not in accepted_keys]

    return DisjunctivePredicate(tuple(planes))


def _plane_with_exact_bias(
    float_weights: np.ndarray,
    ts: list[Point],
    fs: list[Point],
    variables: list[Var],
    config: SiaConfig,
) -> Hyperplane | None:
    """Exact hyperplane: SVM direction, exactly-refit intercept.

    Dual coordinate descent converges slowly on tight margins, which
    misplaces the *intercept* even when the direction is good (and a
    misplaced intercept silently accepts FALSE samples, stalling the
    optimality search).  Since the direction is all the SVM really
    contributes, we recompute the intercept exactly in rational
    arithmetic: the cut sits at the highest FALSE score below the
    lowest TRUE score.  Every TRUE sample is then strictly accepted and
    every FALSE sample separable along this direction is rejected --
    the strongest choice for the fixed direction.
    """
    from ..learn import rationalize_weights

    direction, _ = rationalize_weights(
        float_weights, 0.0, max_denominator=config.max_denominator
    )
    if all(weight == 0 for weight in direction):
        return None

    def score(point: Point) -> Fraction:
        return sum(
            (Fraction(w) * point[var] for w, var in zip(direction, variables)),
            Fraction(0),
        )

    min_true = min(score(point) for point in ts)
    below = [s for s in (score(point) for point in fs) if s < min_true]
    if below:
        # Cut exactly at the highest rejected FALSE score: `> cut`
        # rejects it while accepting every TRUE sample.  (A midpoint
        # cut would be the classic max-margin choice, but over real
        # sorts it can never reach the supremum of the feasible
        # region, so the loop would chase it forever.)
        cut = max(below)
    else:
        cut = min_true - 1
    # w.x > cut  <=>  (d*w).x - d*cut > 0 with d clearing the denominator.
    denom = cut.denominator
    coeffs = tuple(
        (var, int(w * denom)) for var, w in zip(variables, direction)
    )
    return Hyperplane(coeffs, -int(cut * denom))


def _forced_plane(
    remaining: list[Point],
    fs: list[Point],
    variables: list[Var],
    float_weights: np.ndarray,
) -> Hyperplane:
    """A plane guaranteed to accept every remaining TRUE sample.

    Uses the SVM's direction if usable, otherwise the direction from
    the FALSE centroid to the TRUE centroid, otherwise the first axis;
    then shifts the intercept past the minimum TRUE score.
    """
    direction = _integer_direction(float_weights)
    if direction is None:
        ts_mean = np.mean(_points_to_array(remaining, variables), axis=0)
        fs_mean = np.mean(_points_to_array(fs, variables), axis=0)
        direction = _integer_direction(ts_mean - fs_mean)
    if direction is None:
        direction = [1] + [0] * (len(variables) - 1)

    min_score = min(
        sum(Fraction(w) * point[var] for w, var in zip(direction, variables))
        for point in remaining
    )
    bias = -math.floor(min_score) + 1
    coeffs = tuple(zip(tuple(variables), direction))
    return Hyperplane(coeffs, bias)


def _integer_direction(weights: np.ndarray) -> list[int] | None:
    from ..learn import rationalize_weights

    ints, _ = rationalize_weights(np.asarray(weights, dtype=np.float64), 0.0)
    if all(value == 0 for value in ints):
        return None
    return [int(v) for v in ints]
