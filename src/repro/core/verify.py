"""Validity checking of learned predicates (section 5.5).

``Verify`` feeds ``T(p) AND NOT T(p1)`` to the solver, where ``T`` is
the three-valued-logic truth lift of section 5.2 (both the original
predicate and the learned one are encoded with (value, NULL-flag)
variable pairs).  Unsatisfiability means every tuple accepted by ``p``
is accepted by ``p1``, i.e. ``p1`` is a valid dimensionality reduction
(Def. 2).

Note the outer negation: ``NOT T(p1)`` rather than ``F(p1)``.  A tuple
on which ``p1`` evaluates to NULL is filtered out by SQL, so it counts
against validity; this is what makes certain disjunctive predicates
with NULL-able columns unsynthesizable (tested in
``tests/core/test_verify_3vl.py``).
"""

from __future__ import annotations

from ..learn import DisjunctivePredicate, Hyperplane
from ..predicates import Pred, truth_formula
from ..predicates.normalize import LinearizationContext
from ..smt import Formula, Not, conj, disj, is_satisfiable, negate


def plane_truth_formula(plane: Hyperplane, ctx: LinearizationContext) -> Formula:
    """3VL truth of one hyperplane: all touched columns non-NULL and
    the inequality holds."""
    non_null = []
    for var in plane.variables:
        for column in _columns_of_var(var, ctx):
            non_null.append(Not(ctx.null_flag(column)))
    return conj([*non_null, plane.formula()])


def learned_truth_formula(
    learned: DisjunctivePredicate, ctx: LinearizationContext
) -> Formula:
    """3VL truth of a disjunction of hyperplanes."""
    return disj([plane_truth_formula(plane, ctx) for plane in learned.planes])


def verify_implied(
    original: Pred,
    learned: DisjunctivePredicate,
    ctx: LinearizationContext,
    *,
    bnb_budget: int = 4000,
    certify: bool = False,
) -> bool:
    """True iff ``original`` implies ``learned`` under three-valued logic.

    Conservative on solver resource exhaustion: an *unknown* answer is
    reported as "not valid", so Sia can never emit a predicate whose
    validity was not actually proven.

    ``certify=True`` removes the remaining trust in the solver itself:
    the check runs with proof logging on and the UNSAT verdict only
    counts once the independent auditor
    (:mod:`repro.analysis.certify`) accepts the proof.  An audited
    verdict that fails certification is treated as unproven, exactly
    like a resource-exhausted one.
    """
    from ..smt import SolverError
    from ..smt.theory import SolverBudgetError

    t_p = truth_formula(original, ctx)
    t_p1 = learned_truth_formula(learned, ctx)
    obligation = conj([t_p, negate(t_p1)])
    try:
        if not certify:
            return not is_satisfiable(obligation, bnb_budget=bnb_budget)
        from ..analysis.certify import audit_proof
        from ..smt import UNSAT, Solver

        solver = Solver(bnb_budget=bnb_budget, proof=True)
        solver.add(obligation)
        if solver.check() != UNSAT:
            return False
        assert solver.proof_log is not None
        return not audit_proof(solver.proof_log, origin="verify")
    except (SolverError, SolverBudgetError):
        return False


def _columns_of_var(var, ctx: LinearizationContext):
    column = ctx.column_of_var.get(var)
    if column is not None:
        return [column]
    packed = ctx.packed_expr_of_var.get(var)
    if packed is not None:
        return sorted(packed.columns())
    return []
