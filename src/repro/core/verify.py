"""Validity checking of learned predicates (section 5.5).

``Verify`` feeds ``T(p) AND NOT T(p1)`` to the solver, where ``T`` is
the three-valued-logic truth lift of section 5.2 (both the original
predicate and the learned one are encoded with (value, NULL-flag)
variable pairs).  Unsatisfiability means every tuple accepted by ``p``
is accepted by ``p1``, i.e. ``p1`` is a valid dimensionality reduction
(Def. 2).

Note the outer negation: ``NOT T(p1)`` rather than ``F(p1)``.  A tuple
on which ``p1`` evaluates to NULL is filtered out by SQL, so it counts
against validity; this is what makes certain disjunctive predicates
with NULL-able columns unsynthesizable (tested in
``tests/core/test_verify_3vl.py``).
"""

from __future__ import annotations

from ..learn import DisjunctivePredicate, Hyperplane
from ..predicates import Pred, truth_formula
from ..predicates.normalize import LinearizationContext
from ..smt import (
    SAT,
    Formula,
    Not,
    conj,
    disj,
    is_satisfiable,
    lease_session,
    negate,
)
from ..smt.session import certified_solver


def plane_truth_formula(plane: Hyperplane, ctx: LinearizationContext) -> Formula:
    """3VL truth of one hyperplane: all touched columns non-NULL and
    the inequality holds."""
    non_null = []
    for var in plane.variables:
        for column in _columns_of_var(var, ctx):
            non_null.append(Not(ctx.null_flag(column)))
    return conj([*non_null, plane.formula()])


def learned_truth_formula(
    learned: DisjunctivePredicate, ctx: LinearizationContext
) -> Formula:
    """3VL truth of a disjunction of hyperplanes."""
    return disj([plane_truth_formula(plane, ctx) for plane in learned.planes])


def verify_implied(
    original: Pred,
    learned: DisjunctivePredicate,
    ctx: LinearizationContext,
    *,
    bnb_budget: int = 4000,
    certify: bool = False,
    float_filter: str | None = None,
) -> bool:
    """True iff ``original`` implies ``learned`` under three-valued logic.

    Conservative on solver resource exhaustion: an *unknown* answer is
    reported as "not valid", so Sia can never emit a predicate whose
    validity was not actually proven.

    ``certify=True`` removes the remaining trust in the solver itself:
    the check runs with proof logging on and the UNSAT verdict only
    counts once the independent auditor
    (:mod:`repro.analysis.certify`) accepts the proof.  An audited
    verdict that fails certification is treated as unproven, exactly
    like a resource-exhausted one.
    """
    from ..smt import SolverError
    from ..smt.theory import SolverBudgetError

    t_p = truth_formula(original, ctx)
    t_p1 = learned_truth_formula(learned, ctx)
    obligation = conj([t_p, negate(t_p1)])
    try:
        if not certify:
            return not is_satisfiable(
                obligation, bnb_budget=bnb_budget, float_filter=float_filter
            )
        from ..analysis.certify import audit_proof
        from ..smt import UNSAT

        solver = certified_solver(
            [obligation], bnb_budget=bnb_budget, float_filter=float_filter
        )
        assert solver.proof_log is not None
        if solver.proof_log.result != UNSAT:
            return False
        return not audit_proof(solver.proof_log, origin="verify")
    except (SolverError, SolverBudgetError):
        return False


class WarmUnsatChecker:
    """Warm UNSAT prover for ``base AND extra`` over a stream of extras.

    The base formula is asserted once into a persistent
    :class:`~repro.smt.session.SmtSession`; each :meth:`proves_unsat`
    call pushes the extra formula under an activation literal, checks,
    and retracts, so learned clauses about the base survive from one
    query to the next.  Conservative like the one-shot helpers: an
    unknown verdict (budget or round exhaustion) reports ``False`` --
    "unsatisfiability not proven" -- never an over-claim.

    The session is a :func:`repro.smt.lease_session` lease: with a
    session pool installed (the sharded driver's workers), a checker
    over a recurring base -- the same query's ``T(p)`` across all
    seven column subsets -- resumes a warm pooled session instead of
    re-encoding from cold.
    """

    def __init__(
        self,
        base: Formula,
        *,
        bnb_budget: int = 4000,
        float_filter: str | None = None,
    ) -> None:
        self._lease = lease_session(
            (base,), bnb_budget=bnb_budget, float_filter=float_filter
        )
        self._session = self._lease.session

    def close(self) -> None:
        """Release the lease (returns the session to the pool)."""
        self._lease.release()

    def proves_unsat(
        self, extra: Formula, *, bnb_budget: int | None = None
    ) -> bool:
        from ..smt import SolverError
        from ..smt.theory import SolverBudgetError

        scope = self._session.push(extra, label="probe")
        try:
            return self._session.check(bnb_budget=bnb_budget) != SAT
        except (SolverError, SolverBudgetError):
            return False
        finally:
            scope.retract()


class PredicateVerifier:
    """Warm ``Verify`` for one (original predicate, context) pair.

    Asserting the 3VL truth lift ``T(p)`` once and pushing each
    candidate's ``NOT T(p1)`` under an activation literal keeps the
    CDCL core warm across CEGIS iterations -- the candidates share
    almost all of their atoms with ``p`` and with each other.  The
    certified path (``certify=True``) bypasses the warm session
    entirely: certificates must justify every clause, so those checks
    run on a sealed fresh proof-logging solver via
    :func:`verify_implied`.
    """

    def __init__(
        self,
        original: Pred,
        ctx: LinearizationContext,
        *,
        bnb_budget: int = 4000,
        certify: bool = False,
        float_filter: str | None = None,
    ) -> None:
        self._original = original
        self._ctx = ctx
        self._bnb_budget = bnb_budget
        self._certify = certify
        self._float_filter = float_filter
        self._checker: WarmUnsatChecker | None = None
        if not certify:
            self._checker = WarmUnsatChecker(
                truth_formula(original, ctx),
                bnb_budget=bnb_budget,
                float_filter=float_filter,
            )

    def verify(self, learned: DisjunctivePredicate) -> bool:
        """True iff the original predicate implies ``learned`` (3VL)."""
        from ..obs.trace import get_tracer

        with get_tracer().span(
            "verify.implication",
            certified=self._certify,
            warm=self._checker is not None,
        ) as span:
            if self._checker is None:
                result = verify_implied(
                    self._original,
                    learned,
                    self._ctx,
                    bnb_budget=self._bnb_budget,
                    certify=self._certify,
                    float_filter=self._float_filter,
                )
            else:
                t_p1 = learned_truth_formula(learned, self._ctx)
                result = self._checker.proves_unsat(negate(t_p1))
            span.set(implied=result)
            return result

    def close(self) -> None:
        """Release the warm checker's session scopes (if any)."""
        if self._checker is not None:
            self._checker.close()


def _columns_of_var(var, ctx: LinearizationContext):
    column = ctx.column_of_var.get(var)
    if column is not None:
        return [column]
    packed = ctx.packed_expr_of_var.get(var)
    if packed is not None:
        return sorted(packed.columns())
    return []
