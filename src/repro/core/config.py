"""Configurations of the synthesis pipeline (Table 1 of the paper).

========  ==============  ===============  ================  ====================
Variant   Max iterations  # initial TRUE   # initial FALSE   # samples/iteration
========  ==============  ===============  ================  ====================
SIA       41              10               10                5
SIA_v1    1               110              110               n/a
SIA_v2    1               220              220               n/a
========  ==============  ===============  ================  ====================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

RANDOM_BOX = "random_box"
SEQUENTIAL = "sequential"  # ablation: plain NotOld enumeration


@dataclass(frozen=True)
class SiaConfig:
    """Tunables of the counter-example guided learning loop."""

    name: str = "SIA"
    max_iterations: int = 41
    initial_true_samples: int = 10
    initial_false_samples: int = 10
    samples_per_iteration: int = 5
    sample_box: int = 200
    sampling_strategy: str = RANDOM_BOX
    svm_c: float = 1e6
    max_denominator: int = 64
    seed: int = 0
    bnb_budget: int = 4000
    verify_budget: int = 800
    enumeration_limit: int = 2000
    # Proof-carrying Verify: run the validity check with proof logging
    # and accept UNSAT only after the independent certificate auditor
    # (repro.analysis.certify) replays the proof.  Off by default --
    # it roughly doubles verification work -- but recommended whenever
    # machine-discovered predicates are shipped without human review.
    certify_verify: bool = False
    # Wall-clock budget for one synthesis; None = unlimited.  Section
    # 6.2: "the optimizer may use SIA with an explicit timeout".  On
    # expiry the loop returns the best valid predicate found so far.
    timeout_ms: float | None = None
    # Warm incremental sessions (repro.smt.session): Verify and the
    # optimality probe reuse one solver across CEGIS iterations via
    # activation literals instead of rebuilding per check.  Semantics
    # are identical either way (the differential test in
    # tests/smt/test_session.py proves it); the flag exists so the
    # micro-benchmarks can measure warm vs. cold.
    warm_sessions: bool = True
    # Two-tier tableau backend (repro.smt.backend): "off" runs the
    # exact Fraction simplex alone (the historical path); "filter"
    # runs a float-arithmetic tableau first and uses its UNSAT
    # verdicts -- after exact re-derivation of the certificate -- to
    # skip exact pivoting; "filter+trust-sat" additionally accepts
    # float SAT candidates once they model-check in exact arithmetic.
    # All three modes produce identical verdicts and exact-Fraction
    # certificates (the differential suite in
    # tests/smt/test_two_tier.py proves it); the knob trades float-tier
    # throughput against pure-exact predictability.  The
    # SIA_FLOAT_FILTER environment variable overrides this at every
    # solver construction site (CI forces both extremes).
    float_filter: str = "filter+trust-sat"

    def with_seed(self, seed: int) -> "SiaConfig":
        return replace(self, seed=seed)


SIA_DEFAULT = SiaConfig()

SIA_V1 = SiaConfig(
    name="SIA_v1",
    max_iterations=1,
    initial_true_samples=110,
    initial_false_samples=110,
    samples_per_iteration=0,
)

SIA_V2 = SiaConfig(
    name="SIA_v2",
    max_iterations=1,
    initial_true_samples=220,
    initial_false_samples=220,
    samples_per_iteration=0,
)
