"""Synthesis outcomes, statistics and per-iteration traces.

The timing breakdown follows Table 3 of the paper:

* generation time -- obtaining initial samples and counter-example
  samples from the solver (including the quantifier-elimination work
  for the unsatisfaction region),
* learning time -- SVM training,
* validation time -- checking validity of a learned predicate and
  optimality of a valid one with the solver.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from fractions import Fraction

from ..obs.clock import now
from ..predicates import Pred
from ..smt import Var

Point = dict[Var, Fraction]

# Outcome statuses
OPTIMAL = "optimal"  # counter-example search proved optimality
VALID = "valid"  # valid but iteration budget hit before optimality
TRIVIAL = "trivial"  # only the trivial predicate TRUE exists
FAILED = "failed"  # could not synthesize a valid predicate
UNSUPPORTED = "unsupported"  # predicate outside Sia's fragment


@dataclass
class Timings:
    """Milliseconds spent per pipeline stage."""

    generation_ms: float = 0.0
    learning_ms: float = 0.0
    validation_ms: float = 0.0

    @contextmanager
    def track(self, stage: str):
        # The injectable clock keeps these breakdowns deterministic
        # under ManualClock in tests (and SIA010-compliant).
        start = now()
        try:
            yield
        finally:
            elapsed = (now() - start) * 1000.0
            attr = f"{stage}_ms"
            setattr(self, attr, getattr(self, attr) + elapsed)

    @property
    def total_ms(self) -> float:
        return self.generation_ms + self.learning_ms + self.validation_ms


@dataclass
class IterationTrace:
    """One pass of the learning loop (for Figure 4-style rendering)."""

    index: int
    learned: str  # human-readable learned predicate
    valid: bool
    new_true: list[Point] = field(default_factory=list)
    new_false: list[Point] = field(default_factory=list)


@dataclass
class SynthesisOutcome:
    """Everything Alg. 1 produces, plus bookkeeping for the benchmarks."""

    status: str
    predicate: Pred | None = None  # SQL IR of the synthesized predicate
    detail: str = ""
    iterations: int = 0
    true_samples: int = 0
    false_samples: int = 0
    timings: Timings = field(default_factory=Timings)
    trace: list[IterationTrace] = field(default_factory=list)
    optimal_exact: bool = True  # QE exactness caveat (DESIGN.md section 6)
    target_columns: tuple[str, ...] = ()
    #: The cooperative deadline (section 6.2) expired: the outcome is a
    #: *partial* result -- best predicate found so far, truncated
    #: timings.  Downstream aggregates must not mix these silently.
    timed_out: bool = False

    @property
    def is_valid(self) -> bool:
        return self.status in (OPTIMAL, VALID)

    @property
    def is_optimal(self) -> bool:
        return self.status == OPTIMAL

    def __repr__(self) -> str:
        head = f"SynthesisOutcome({self.status}"
        if self.predicate is not None:
            head += f", {self.predicate!r}"
        return head + f", iters={self.iterations})"
