"""The Synthesize procedure (Algorithm 1): counter-example guided
learning of a valid, optimal predicate over a chosen column set.

Pipeline per iteration (section 3.1 / figure 3):

1. ``Learn`` a candidate predicate from the current samples (Alg. 2).
2. ``Verify`` it is implied by the original predicate under 3VL.
3. If invalid: mine TRUE counter-examples (satisfy ``p``, rejected by
   the candidate) and loop.
4. If valid: conjoin into the accumulated result; mine FALSE
   counter-examples (unsatisfaction tuples the result still accepts).
   None exist -> the result is optimal (Lemma 4); otherwise loop.

Section 5.3's finite-domain fallbacks are implemented: an exhausted
TRUE enumeration yields a disjunction of equalities, an exhausted FALSE
enumeration yields the negation of one.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field

from ..errors import UnsupportedPredicateError
from ..learn import DisjunctivePredicate
from ..obs.clock import now as _clock_now
from ..obs.trace import get_tracer
from ..predicates import (
    Col,
    Column,
    Comparison,
    DOUBLE,
    FALSE_PRED,
    Lit,
    PNot,
    Pred,
    pand,
    por,
)
from ..predicates.normalize import LinearizationContext, lower_predicate
from ..smt import FALSE, Formula, Var, conj, negate
from ..smt.qe import unsat_region
from .config import SIA_DEFAULT, SiaConfig
from .learnloop import learn
from .result import (
    FAILED,
    OPTIMAL,
    TRIVIAL,
    UNSUPPORTED,
    VALID,
    IterationTrace,
    Point,
    SynthesisOutcome,
    Timings,
)
from .samples import (
    IncrementalEnumerator,
    Sampler,
    enumerate_all,
    not_old_formula,
)
from .verify import PredicateVerifier, verify_implied


@dataclass
class ValidPredicate:
    """The accumulated valid predicate p1 (a conjunction of learned
    disjunctions; starts trivial = TRUE)."""

    parts: list[DisjunctivePredicate] = field(default_factory=list)

    @property
    def is_trivial(self) -> bool:
        return not self.parts

    def formula(self) -> Formula:
        return conj([part.formula() for part in self.parts])

    def to_pred(self, ctx: LinearizationContext) -> Pred:
        return pand([part.to_pred(ctx) for part in self.parts])

    def prune_dominated(
        self,
        witnesses: list[dict] | None = None,
        bnb_budget: int = 300,
        recent_only: bool = False,
        float_filter: str | None = None,
    ) -> None:
        """Drop parts implied by the newest part.

        Alg. 1 conjoins every valid learned predicate; as the loop
        converges the newest predicate usually subsumes earlier, weaker
        ones, and carrying them makes the optimality queries (and the
        final SQL) needlessly large.  Dropping an implied conjunct
        never changes the conjunction's semantics.

        ``witnesses`` (sample points) serve as a cheap pre-filter: a
        point accepted by the newest part but rejected by an old part
        disproves implication without touching the solver.
        """
        from ..smt import is_satisfiable

        if len(self.parts) < 2:
            return
        newest = self.parts[-1]
        witnesses = witnesses or []
        kept = []
        candidates = self.parts[:-1]
        if recent_only:
            kept = list(candidates[:-1])
            candidates = candidates[-1:]
        for part in candidates:
            has_witness = any(
                newest.accepts(point) and not part.accepts(point)
                for point in witnesses
            )
            if has_witness:
                kept.append(part)
                continue
            if not _implication_holds(
                conj([newest.formula(), negate(part.formula())]),
                bnb_budget,
                float_filter=float_filter,
            ):
                kept.append(part)
        self.parts = kept + [newest]

    def minimize(
        self,
        witnesses: list[dict] | None = None,
        bnb_budget: int = 1000,
        float_filter: str | None = None,
    ) -> None:
        """Greedy redundancy elimination over the whole conjunction.

        Run once at the end of the loop: drop duplicates, then drop any
        part implied by the conjunction of the remaining ones (oldest,
        weakest parts first).  Equivalent semantics, far cheaper to
        evaluate in the engine -- the paper's rewritten queries carry a
        handful of predicates, not one per loop iteration.
        """
        from ..smt import is_satisfiable

        witnesses = witnesses or []
        kept = list(dict.fromkeys(self.parts))
        index = 0
        while index < len(kept) and len(kept) > 1:
            part = kept[index]
            others = kept[:index] + kept[index + 1:]
            others_formula = conj([p.formula() for p in others])
            has_witness = any(
                not part.accepts(point)
                and all(other.accepts(point) for other in others)
                for point in witnesses
            )
            if has_witness:
                index += 1
                continue
            implied = _implication_holds(
                conj([others_formula, negate(part.formula())]),
                bnb_budget,
                float_filter=float_filter,
            )
            if implied:
                kept = others
            else:
                index += 1
        self.parts = kept

    def __str__(self) -> str:
        if self.is_trivial:
            return "TRUE"
        return " AND ".join(f"({part})" for part in self.parts)


logger = logging.getLogger(__name__)


def _implication_holds(
    negated_implication: Formula,
    bnb_budget: int,
    *,
    certify: bool = False,
    float_filter: str | None = None,
) -> bool:
    """UNSAT check with conservative handling of resource exhaustion:
    an unknown result counts as 'implication not proven'.

    With ``certify=True`` the UNSAT verdict additionally has to survive
    the independent proof audit (see :func:`repro.core.verify.verify_implied`).
    """
    from ..smt import SolverError, is_satisfiable
    from ..smt.theory import SolverBudgetError

    try:
        if not certify:
            return not is_satisfiable(
                negated_implication,
                bnb_budget=bnb_budget,
                float_filter=float_filter,
            )
        from ..analysis.certify import audit_proof
        from ..smt import UNSAT
        from ..smt.session import certified_solver

        solver = certified_solver(
            [negated_implication],
            bnb_budget=bnb_budget,
            float_filter=float_filter,
        )
        assert solver.proof_log is not None
        if solver.proof_log.result != UNSAT:
            return False
        return not audit_proof(solver.proof_log, origin="counter-f")
    except (SolverError, SolverBudgetError):
        return False


class Synthesizer:
    """Reusable synthesis engine configured once (see SiaConfig)."""

    def __init__(self, config: SiaConfig = SIA_DEFAULT) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def synthesize(
        self, pred: Pred, target_columns: set[Column] | list[Column]
    ) -> SynthesisOutcome:
        """Synthesize a valid predicate over ``target_columns``.

        ``target_columns`` must be a non-empty subset of the columns of
        ``pred`` (Def. 2 requires Cols' subset of Cols).

        Each call is one ``synthesize`` root span in the trace (see
        :mod:`repro.obs.trace`); the CEGIS stages inside carry the
        ``phase`` labels ``repro trace`` attributes time to.
        """
        targets = sorted(set(target_columns))
        tracer = get_tracer()
        with tracer.span(
            "synthesize",
            targets=",".join(col.qualified for col in targets),
        ) as root:
            outcome = self._synthesize(pred, targets, tracer)
            root.set(
                status=outcome.status,
                iterations=outcome.iterations,
                true_samples=outcome.true_samples,
                false_samples=outcome.false_samples,
            )
            return outcome

    def _synthesize(
        self, pred: Pred, targets: list[Column], tracer
    ) -> SynthesisOutcome:
        timings = Timings()
        outcome = SynthesisOutcome(
            status=FAILED,
            timings=timings,
            target_columns=tuple(col.qualified for col in targets),
        )
        if not targets:
            outcome.status = UNSUPPORTED
            outcome.detail = "empty target column set"
            return outcome

        try:
            formula, ctx = lower_predicate(pred)
        except UnsupportedPredicateError as exc:
            outcome.status = UNSUPPORTED
            outcome.detail = str(exc)
            return outcome

        missing = [col for col in targets if col not in ctx.var_of_column]
        if missing:
            outcome.status = UNSUPPORTED
            outcome.detail = (
                "target columns not used linearly in the predicate: "
                + ", ".join(col.qualified for col in missing)
            )
            return outcome
        if not set(targets) <= set(pred.columns()):
            outcome.status = UNSUPPORTED
            outcome.detail = "target columns must be a subset of the predicate's"
            return outcome

        target_vars = [ctx.var_of_column[col] for col in targets]
        rng = random.Random(self.config.seed)
        sampler = Sampler(self.config, rng)

        # ---------------- Unsatisfaction region (Lemma 4) -------------
        with timings.track("generation"), tracer.span(
            "qe.unsat_region", phase="qe", counters=True
        ):
            try:
                region = unsat_region(formula, set(target_vars))
            except Exception as exc:  # DNF blowup or projection failure
                outcome.status = UNSUPPORTED
                outcome.detail = f"quantifier elimination failed: {exc}"
                return outcome
        outcome.optimal_exact = region.exact
        if region.formula is FALSE:
            outcome.status = TRIVIAL
            outcome.detail = "every restriction is feasible; only TRUE is valid"
            return outcome

        # ---------------- Initial samples (section 5.3) ---------------
        with timings.track("generation"), tracer.span(
            "cegis.generate_samples", phase="generate_samples", counters=True
        ) as gen_span:
            ts_set = sampler.sample(
                formula, target_vars, self.config.initial_true_samples
            )
            ts = ts_set.points
            if ts_set.exhausted:
                return self._finite_true_outcome(outcome, ctx, targets, formula, target_vars)
            fs_set = sampler.sample(
                region.formula, target_vars, self.config.initial_false_samples
            )
            fs = fs_set.points
            gen_span.set(true_samples=len(ts), false_samples=len(fs))
        if fs_set.exhausted:
            return self._finite_false_outcome(
                outcome, ctx, targets, region.formula, target_vars, fs
            )

        # ---------------- Counter-example guided loop -----------------
        p1 = ValidPredicate()
        iteration = 0
        status: str | None = None
        # Persistent FALSE counter-example enumerator: its constraint
        # set (region AND p1 AND NotOld) only ever grows, so one warm
        # CDCL instance serves the whole loop; the sampling box rides
        # in a retractable scope, so the unboxed fallback reuses the
        # same session instead of a second solver.
        counter_f_enum = IncrementalEnumerator(
            region.formula, target_vars, fs, self.config, with_box=True
        )
        # Warm Verify: T(p) asserted once, each candidate's NOT T(p1)
        # pushed under an activation literal (certified configs keep
        # the sealed fresh-solver path inside verify_implied).
        verifier = (
            PredicateVerifier(
                pred,
                ctx,
                bnb_budget=self.config.verify_budget,
                certify=self.config.certify_verify,
                float_filter=self.config.float_filter,
            )
            if self.config.warm_sessions
            else None
        )
        # Warm TRUE counter-example mining: the base formula p is fixed
        # across iterations, only NOT p2 varies, so one enumerator with
        # the candidate scoped serves the whole loop.  No permanent
        # blocking is needed: Learn guarantees every later candidate
        # accepts all of Ts, so an old counter-example can never
        # satisfy a later NOT p2 anyway.
        counter_t_enum: IncrementalEnumerator | None = None

        deadline = (
            _clock_now() + self.config.timeout_ms / 1000.0
            if self.config.timeout_ms is not None
            else None
        )
        while iteration < self.config.max_iterations:
            if deadline is not None and _clock_now() > deadline:
                status = VALID if not p1.is_trivial else FAILED
                outcome.detail = outcome.detail or "timeout (section 6.2)"
                outcome.timed_out = True
                break
            iteration += 1
            with tracer.span("cegis.iteration", index=iteration):
                with timings.track("learning"), tracer.span(
                    "cegis.learn", phase="learn"
                ):
                    p2 = learn(ts, fs, target_vars, self.config, rng)
                with timings.track("validation"), tracer.span(
                    "cegis.verify", phase="verify", counters=True
                ) as verify_span:
                    # The tighter verify budget keeps dense-coefficient
                    # integer feasibility checks from crawling; an unknown
                    # verdict is treated as invalid (sound, section 5.5).
                    if verifier is not None:
                        valid = verifier.verify(p2)
                    else:
                        valid = verify_implied(
                            pred,
                            p2,
                            ctx,
                            bnb_budget=self.config.verify_budget,
                            certify=self.config.certify_verify,
                            float_filter=self.config.float_filter,
                        )
                    verify_span.set(valid=valid)
                trace = IterationTrace(index=iteration, learned=str(p2), valid=valid)
                outcome.trace.append(trace)
                logger.debug(
                    "iteration %d: %s learned %s (|Ts|=%d |Fs|=%d)",
                    iteration,
                    "valid" if valid else "invalid",
                    p2,
                    len(ts),
                    len(fs),
                )

                if valid:
                    p1.parts.append(p2)
                    with timings.track("validation"), tracer.span(
                        "cegis.prune", phase="minimize"
                    ):
                        # Cheap per-iteration pass: the newest predicate most
                        # often subsumes its immediate predecessor.  A full
                        # pruning pass runs once at the end of the loop.
                        p1.prune_dominated(
                            witnesses=fs,
                            recent_only=True,
                            float_filter=self.config.float_filter,
                        )
                    counter_f_enum.add(p2.formula())
                    want = max(1, self.config.samples_per_iteration)
                    new_fs: list[Point] = []
                    with timings.track("generation"), tracer.span(
                        "cegis.counter_f", phase="counter_f", counters=True
                    ) as cf_span:
                        for _ in range(want):
                            point = counter_f_enum.next(fs + new_fs)
                            if point is None:
                                break
                            new_fs.append(point)
                        if not new_fs:
                            # The sampling box may be exhausted while
                            # unsatisfaction tuples remain outside it; try
                            # unboxed (same warm session, box scope
                            # disabled) before concluding anything.
                            for _ in range(want):
                                point = counter_f_enum.next(
                                    fs + new_fs, boxed=False
                                )
                                if point is None:
                                    break
                                new_fs.append(point)
                        cf_span.set(found=len(new_fs))
                    if not new_fs:
                        # No *new* witness.  Distinguish optimal from the
                        # stuck case with a probe WITHOUT NotOld: p1 may
                        # still accept unsatisfaction tuples that already
                        # sit in Fs (the SVM is not obliged to classify
                        # FALSE samples correctly), and NotOld masks
                        # exactly those witnesses (Lemma 4 needs none).
                        # Unknown (budget exhausted) counts as sub-optimal:
                        # never over-claim optimality.
                        with timings.track("validation"), tracer.span(
                            "cegis.optimality", phase="verify", counters=True
                        ):
                            sub_optimal = not _implication_holds(
                                conj([region.formula, p1.formula()]),
                                self.config.bnb_budget,
                                certify=self.config.certify_verify,
                                float_filter=self.config.float_filter,
                            )
                        if sub_optimal:
                            status = VALID
                            outcome.detail = (
                                "stuck: accepted unsatisfaction tuples already in Fs"
                            )
                        else:
                            status = OPTIMAL
                        break
                    if self.config.samples_per_iteration == 0:
                        # Single-shot variants (SIA_v1/v2) never iterate; a
                        # fresh witness just proves sub-optimality.
                        status = VALID
                        break
                    trace.new_false = new_fs
                    fs.extend(new_fs)
                else:
                    want = max(1, self.config.samples_per_iteration)
                    with timings.track("generation"), tracer.span(
                        "cegis.counter_t", phase="counter_t", counters=True
                    ) as ct_span:
                        # NotOld over the existing TRUE samples is
                        # redundant here: Learn guarantees p2 accepts every
                        # point of Ts, and counter-examples must violate
                        # p2, so they are distinct by construction.  Only
                        # the points found within this call need blocking.
                        if self.config.warm_sessions:
                            if counter_t_enum is None:
                                counter_t_enum = IncrementalEnumerator(
                                    formula,
                                    target_vars,
                                    [],
                                    self.config,
                                    with_box=True,
                                )
                            # Candidate AND within-call blocking ride in one
                            # retractable scope; nothing is blocked across
                            # iterations (redundant by the Learn argument
                            # above, and permanent NotOld atoms would bloat
                            # every later theory round).
                            scope = counter_t_enum.session.push(
                                negate(p2.formula()), label="counter-t"
                            )
                            new_ts: list[Point] = []
                            try:
                                for _ in range(want):
                                    point = counter_t_enum.next([])
                                    if point is None:
                                        point = counter_t_enum.next(
                                            [], boxed=False
                                        )
                                    if point is None:
                                        break
                                    new_ts.append(point)
                                    scope.add(
                                        not_old_formula([point], target_vars)
                                    )
                            finally:
                                scope.retract()
                        else:
                            counter_ts = sampler.sample(
                                conj([formula, negate(p2.formula())]),
                                target_vars,
                                want,
                                existing=None,
                                random_attempts=0,
                            )
                            new_ts = counter_ts.points
                        ct_span.set(found=len(new_ts))
                    if not new_ts:
                        # p implies p2 two-valuedly, yet 3VL verification
                        # failed: the NULL-semantics gap (see verify.py).
                        status = VALID if not p1.is_trivial else FAILED
                        outcome.detail = "no 2VL counter-example: NULL-semantics gap"
                        break
                    trace.new_true = new_ts
                    ts.extend(new_ts)

        # Teardown: retract the warm helpers' surviving scopes (the
        # sampling boxes and the warm verifier's probes) so abandoning
        # them does not leave scopes_opened permanently ahead of
        # scopes_retracted -- the counter gap the cold-path bench rows
        # used to show.
        counter_f_enum.close()
        if counter_t_enum is not None:
            counter_t_enum.close()
        if verifier is not None:
            verifier.close()

        with timings.track("validation"), tracer.span(
            "cegis.minimize", phase="minimize", counters=True
        ):
            p1.minimize(witnesses=fs, float_filter=self.config.float_filter)
        outcome.iterations = iteration
        outcome.true_samples = len(ts)
        outcome.false_samples = len(fs)
        if status is None:
            status = VALID if not p1.is_trivial else FAILED
            if status == FAILED and not outcome.detail:
                outcome.detail = "iteration budget exhausted without a valid predicate"
        outcome.status = status
        logger.debug(
            "synthesis finished: %s after %d iterations (%s)",
            status,
            iteration,
            ", ".join(col.qualified for col in targets),
        )
        if not p1.is_trivial:
            outcome.predicate = p1.to_pred(ctx)
        elif status == OPTIMAL:  # pragma: no cover - defensive
            outcome.status = TRIVIAL
        return outcome

    # ------------------------------------------------------------------
    # Finite-domain fallbacks (section 5.3)
    # ------------------------------------------------------------------
    def _finite_true_outcome(
        self,
        outcome: SynthesisOutcome,
        ctx: LinearizationContext,
        targets: list[Column],
        formula: Formula,
        target_vars: list[Var],
    ) -> SynthesisOutcome:
        with outcome.timings.track("generation"), get_tracer().span(
            "cegis.enumerate_true", phase="generate_samples", counters=True
        ):
            full = enumerate_all(
                formula,
                target_vars,
                self.config.enumeration_limit,
                bnb_budget=self.config.bnb_budget,
                float_filter=self.config.float_filter,
            )
        if not full.exhausted:
            outcome.status = FAILED
            outcome.detail = "finite TRUE enumeration exceeded the limit"
            return outcome
        outcome.true_samples = len(full.points)
        if not full.points:
            # The original predicate is unsatisfiable: FALSE is the
            # strongest (vacuously valid) reduction.
            outcome.status = OPTIMAL
            outcome.predicate = FALSE_PRED
            return outcome
        outcome.status = OPTIMAL
        outcome.predicate = por(
            [self._equality_pred(point, ctx, targets, target_vars) for point in full.points]
        )
        return outcome

    def _finite_false_outcome(
        self,
        outcome: SynthesisOutcome,
        ctx: LinearizationContext,
        targets: list[Column],
        region_formula: Formula,
        target_vars: list[Var],
        initial: list[Point],
    ) -> SynthesisOutcome:
        with outcome.timings.track("generation"), get_tracer().span(
            "cegis.enumerate_false", phase="generate_samples", counters=True
        ):
            full = enumerate_all(
                region_formula,
                target_vars,
                self.config.enumeration_limit,
                bnb_budget=self.config.bnb_budget,
                float_filter=self.config.float_filter,
            )
        if not full.exhausted:
            outcome.status = FAILED
            outcome.detail = "finite FALSE enumeration exceeded the limit"
            return outcome
        outcome.false_samples = len(full.points)
        if not full.points:
            outcome.status = TRIVIAL
            outcome.detail = "no unsatisfaction tuples; only TRUE is valid"
            return outcome
        outcome.status = OPTIMAL
        outcome.predicate = PNot(
            por(
                [
                    self._equality_pred(point, ctx, targets, target_vars)
                    for point in full.points
                ]
            )
        )
        return outcome

    def _equality_pred(
        self,
        point: Point,
        ctx: LinearizationContext,
        targets: list[Column],
        target_vars: list[Var],
    ) -> Pred:
        parts = []
        for col, var in zip(targets, target_vars):
            value = ctx.decode_value(point[var], col)
            parts.append(Comparison(Col(col), "=", _literal_for(col, value)))
        return pand(parts)


def _literal_for(column: Column, value) -> Lit:
    if column.ctype == "DATE":
        return Lit.date(value)
    if column.ctype == "TIMESTAMP":
        return Lit.timestamp(value)
    if column.ctype == DOUBLE:
        return Lit.double(value)
    return Lit.integer(value)


def synthesize(
    pred: Pred,
    target_columns: set[Column] | list[Column],
    config: SiaConfig = SIA_DEFAULT,
) -> SynthesisOutcome:
    """One-shot convenience wrapper around :class:`Synthesizer`."""
    return Synthesizer(config).synthesize(pred, target_columns)
