"""Syntax-driven baselines (section 2 "Prior Work" / Table 2).

* **Transitive closure** [Ioannidis & Ramakrishnan, VLDB'88]: derive
  implied inequalities by chaining aligned comparisons.  We implement
  the classic difference-bound-matrix closure: conjuncts of the shape
  ``x - y <= c`` (coefficient +-1, at most two columns) become weighted
  edges, constant bounds attach to a virtual zero node, and
  shortest-path closure yields every implied difference constraint.
  This is the strongest form of the syntactic rule -- and it still
  cannot reason about terms like ``a1 - 2*a2 + b1 < 10``, which is the
  paper's point.

* **Constant propagation** [Consens et al.]: substitute ``col = const``
  equalities into sibling conjuncts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from ..predicates import (
    Col,
    Column,
    Comparison,
    DOUBLE,
    Lit,
    Pred,
    pand,
)
from ..predicates.normalize import lower_predicate
from ..smt import LE, LT, Atom, Var
from ..smt.formula import And
from .synthesize import _literal_for

_INF = (Fraction(10**18), 0)  # (bound, strictness) lattice top


@dataclass(frozen=True)
class _Edge:
    """x - y <= c (strict if s) encoded as weight (c, s)."""

    bound: Fraction
    strict: bool


def _min_weight(a: tuple[Fraction, int], b: tuple[Fraction, int]) -> tuple[Fraction, int]:
    """Tighter of two (bound, strict) weights; strict counts as smaller."""
    return min(a, b, key=lambda w: (w[0], -w[1]))


def _add_weights(a: tuple[Fraction, int], b: tuple[Fraction, int]) -> tuple[Fraction, int]:
    return (a[0] + b[0], max(a[1], b[1]))


class TransitiveClosure:
    """Difference-bound transitive closure over a conjunctive predicate."""

    def __init__(self, pred: Pred) -> None:
        self.pred = pred
        self.formula, self.ctx = lower_predicate(pred)
        self._zero = Var("__zero__")
        self._matrix = self._build_matrix()

    # ------------------------------------------------------------------
    def _conjunct_atoms(self) -> list[Atom]:
        """Top-level conjunct atoms (only those participate in the
        syntactic rule; disjunctions are opaque to it)."""
        formula = self.formula
        if isinstance(formula, Atom):
            return [formula]
        if isinstance(formula, And):
            return [arg for arg in formula.args if isinstance(arg, Atom)]
        return []

    def _build_matrix(self) -> dict[tuple[Var, Var], tuple[Fraction, int]]:
        nodes = set()
        edges: dict[tuple[Var, Var], tuple[Fraction, int]] = {}

        def note(u: Var, v: Var, weight: tuple[Fraction, int]) -> None:
            nodes.update((u, v))
            key = (u, v)
            edges[key] = _min_weight(edges.get(key, _INF), weight)

        for atom in self._conjunct_atoms():
            ops = [(atom.op, atom.expr)]
            if atom.op == "=":
                # x - y = c splits into two difference edges.
                ops = [(LE, atom.expr), (LE, -atom.expr)]
            for op, expr in ops:
                if op not in (LE, LT):
                    continue
                coeffs = expr.coeffs
                strict = op == LT
                if len(coeffs) == 1:
                    ((var, coeff),) = coeffs.items()
                    if coeff == 1:  # x + c <= 0  ->  x - 0 <= -c
                        note(var, self._zero, (-expr.const, strict))
                    elif coeff == -1:  # -x + c <= 0  ->  0 - x <= -c
                        note(self._zero, var, (-expr.const, strict))
                elif len(coeffs) == 2:
                    items = sorted(coeffs.items(), key=lambda kv: kv[0].name)
                    (v1, c1), (v2, c2) = items
                    if c1 == 1 and c2 == -1:  # v1 - v2 + c <= 0
                        note(v1, v2, (-expr.const, strict))
                    elif c1 == -1 and c2 == 1:
                        note(v2, v1, (-expr.const, strict))
        # Floyd-Warshall closure.
        node_list = sorted(nodes, key=lambda v: v.name)
        for mid in node_list:
            for src in node_list:
                left = edges.get((src, mid))
                if left is None:
                    continue
                for dst in node_list:
                    right = edges.get((mid, dst))
                    if right is None or src == dst:
                        continue
                    combined = _add_weights(left, right)
                    key = (src, dst)
                    edges[key] = _min_weight(edges.get(key, _INF), combined)
        return edges

    # ------------------------------------------------------------------
    def derive(self, target_columns: set[Column] | list[Column]) -> Pred | None:
        """Implied predicate over exactly the target columns, or None.

        Returns a conjunction of derived comparisons in which every
        target column occurs; None when the closure yields nothing new
        over those columns.
        """
        targets = sorted(set(target_columns))
        if any(col not in self.ctx.var_of_column for col in targets):
            return None
        target_vars = {self.ctx.var_of_column[col]: col for col in targets}
        direct = self._direct_keys()

        parts = []
        used: set[Var] = set()
        for (src, dst), (bound, strict) in sorted(
            self._matrix.items(), key=lambda kv: (kv[0][0].name, kv[0][1].name)
        ):
            if (src, dst) in direct:
                continue  # already syntactically present
            involved = {v for v in (src, dst) if v is not self._zero}
            if not involved or not involved <= set(target_vars):
                continue
            parts.append(self._edge_pred(src, dst, bound, strict))
            used |= involved
        if not parts or used != set(target_vars):
            return None
        return pand(parts)

    def _direct_keys(self) -> set[tuple[Var, Var]]:
        keys = set()
        for atom in self._conjunct_atoms():
            coeffs = atom.expr.coeffs
            if len(coeffs) == 1:
                ((var, coeff),) = coeffs.items()
                keys.add((var, self._zero) if coeff == 1 else (self._zero, var))
            elif len(coeffs) == 2:
                items = sorted(coeffs.items(), key=lambda kv: kv[0].name)
                (v1, c1), (v2, c2) = items
                if c1 == 1 and c2 == -1:
                    keys.add((v1, v2))
                elif c1 == -1 and c2 == 1:
                    keys.add((v2, v1))
        return keys

    def _edge_pred(self, src: Var, dst: Var, bound: Fraction, strict: int) -> Pred:
        op = "<" if strict else "<="
        if dst is self._zero:
            col = self.ctx.column_of_var[src]
            value = self.ctx.decode_value(_floor_for(col, bound, strict), col)
            return Comparison(Col(col), op, _literal_for(col, value))
        if src is self._zero:
            col = self.ctx.column_of_var[dst]
            value = self.ctx.decode_value(_floor_for(col, -bound, strict), col)
            return Comparison(_literal_for(col, value), op, Col(col))
        col_src = self.ctx.column_of_var[src]
        col_dst = self.ctx.column_of_var[dst]
        diff = Col(col_src) - Col(col_dst)
        return Comparison(diff, op, Lit.integer(int(bound)))


def _floor_for(column: Column, bound: Fraction, strict: int) -> Fraction:
    if column.ctype == DOUBLE:
        return bound
    return Fraction(math.floor(bound))


def transitive_closure_predicate(
    pred: Pred, target_columns: set[Column] | list[Column]
) -> Pred | None:
    """One-shot helper: derived predicate over the targets, or None."""
    return TransitiveClosure(pred).derive(target_columns)


def ml_only_predicate(
    pred: Pred,
    target_columns: set[Column] | list[Column],
    *,
    num_samples: int = 110,
    seed: int = 0,
):
    """The unsound ML baseline the paper's introduction argues against.

    Samples TRUE/FALSE tuples exactly like Sia and trains the same
    learner -- but **skips verification entirely** and returns whatever
    the SVM produced (cf. probabilistic predicates [Lu et al.,
    SIGMOD'18]: acceptable in an ML pipeline, unsound for canonical
    SQL).  Returns ``(predicate, is_actually_valid)`` so callers can
    quantify how often the shortcut corrupts query semantics; the
    validity check is only diagnostic and uses Sia's verifier.
    """
    import random as _random

    from ..predicates.normalize import lower_predicate as _lower
    from ..smt.qe import unsat_region as _unsat_region
    from .config import SiaConfig
    from .learnloop import learn as _learn
    from .samples import Sampler as _Sampler
    from .verify import verify_implied as _verify

    config = SiaConfig(seed=seed)
    targets = sorted(set(target_columns))
    formula, ctx = _lower(pred)
    if any(col not in ctx.var_of_column for col in targets):
        return None, False
    target_vars = [ctx.var_of_column[col] for col in targets]
    region = _unsat_region(formula, set(target_vars))

    rng = _random.Random(seed)
    sampler = _Sampler(config, rng)
    ts = sampler.sample(formula, target_vars, num_samples).points
    fs = sampler.sample(region.formula, target_vars, num_samples).points
    if not ts or not fs:
        return None, False

    learned = _learn(ts, fs, target_vars, config, rng)
    is_valid = _verify(pred, learned, ctx)
    return learned.to_pred(ctx), is_valid


def constant_propagation(pred: Pred) -> Pred:
    """Propagate ``col = literal`` equalities into sibling conjuncts.

    Returns a predicate with the substitutions applied (semantics
    preserved); purely syntactic, like the rule the paper cites.
    """
    from ..predicates import Arith, Expr

    bindings: dict[Column, Lit] = {}
    for conjunct in pred.conjuncts():
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, Col)
            and isinstance(conjunct.right, Lit)
        ):
            bindings[conjunct.left.column] = conjunct.right
    if not bindings:
        return pred

    def subst_expr(expr: Expr, keep: Column | None) -> Expr:
        if isinstance(expr, Col) and expr.column in bindings and expr.column != keep:
            return bindings[expr.column]
        if isinstance(expr, Arith):
            return Arith(expr.op, subst_expr(expr.left, keep), subst_expr(expr.right, keep))
        return expr

    out = []
    for conjunct in pred.conjuncts():
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, Col)
            and isinstance(conjunct.right, Lit)
        ):
            out.append(conjunct)  # keep the defining equality itself
            continue
        if isinstance(conjunct, Comparison):
            out.append(
                Comparison(
                    subst_expr(conjunct.left, None),
                    conjunct.op,
                    subst_expr(conjunct.right, None),
                )
            )
        else:
            out.append(conjunct)
    return pand(out)
