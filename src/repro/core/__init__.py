"""Sia's core algorithm: counter-example guided predicate synthesis."""

from .baselines import (
    TransitiveClosure,
    constant_propagation,
    ml_only_predicate,
    transitive_closure_predicate,
)
from .config import RANDOM_BOX, SEQUENTIAL, SIA_DEFAULT, SIA_V1, SIA_V2, SiaConfig
from .learnloop import learn
from .result import (
    FAILED,
    OPTIMAL,
    TRIVIAL,
    UNSUPPORTED,
    VALID,
    IterationTrace,
    Point,
    SynthesisOutcome,
    Timings,
)
from .samples import SampleSet, Sampler, box_formula, enumerate_all, not_old_formula
from .synthesize import Synthesizer, ValidPredicate, synthesize
from .verify import learned_truth_formula, verify_implied

__all__ = [
    "FAILED",
    "IterationTrace",
    "OPTIMAL",
    "Point",
    "RANDOM_BOX",
    "SEQUENTIAL",
    "SIA_DEFAULT",
    "SIA_V1",
    "SIA_V2",
    "SampleSet",
    "Sampler",
    "SiaConfig",
    "SynthesisOutcome",
    "Synthesizer",
    "Timings",
    "TransitiveClosure",
    "TRIVIAL",
    "UNSUPPORTED",
    "VALID",
    "ValidPredicate",
    "box_formula",
    "constant_propagation",
    "enumerate_all",
    "learn",
    "learned_truth_formula",
    "ml_only_predicate",
    "not_old_formula",
    "synthesize",
    "transitive_closure_predicate",
    "verify_implied",
]
