"""Cost-based rewrite advice (section 6.2 / 6.6 integration story).

The paper observes that a synthesized predicate only pays off when it
is selective enough (Table 4: the slower rewritten queries carry
predicates with ~0.97 average selectivity), and that production
deployments would gate synthesis behind the plan cache and a timeout.
This module is that gate: estimate the synthesized predicate's
selectivity on a sample of the target table and advise whether to keep
the rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import Catalog
from ..predicates import eval_pred_numpy
from .rewriter import RewriteResult


@dataclass
class RewriteAdvice:
    """Verdict plus the evidence it is based on."""

    keep: bool
    selectivity: float
    sampled_rows: int
    reason: str


def advise(
    result: RewriteResult,
    catalog: Catalog,
    *,
    max_selectivity: float = 0.9,
    sample_rows: int = 10_000,
    seed: int = 0,
) -> RewriteAdvice:
    """Estimate benefit of a rewrite from a data sample.

    ``keep`` is False when the synthesized predicate filters out less
    than ``1 - max_selectivity`` of the sampled target-table rows --
    the regime where the paper's measurements show rewrites losing.
    """
    if not result.succeeded or result.outcome.predicate is None:
        return RewriteAdvice(False, 1.0, 0, "no rewrite to assess")

    table = catalog.get(result.target_table)
    relation = table.to_relation()
    total = relation.num_rows
    if total == 0:
        return RewriteAdvice(False, 1.0, 0, "target table is empty")

    if total > sample_rows:
        rng = np.random.default_rng(seed)
        indices = rng.choice(total, size=sample_rows, replace=False)
        relation = relation.take(np.sort(indices))

    truth, _ = eval_pred_numpy(
        result.outcome.predicate, relation.resolver(), relation.num_rows
    )
    selectivity = float(np.count_nonzero(truth)) / float(relation.num_rows)
    if selectivity <= max_selectivity:
        return RewriteAdvice(
            True,
            selectivity,
            relation.num_rows,
            f"predicate keeps {selectivity:.0%} of {result.target_table}; "
            "pushdown expected to pay off",
        )
    return RewriteAdvice(
        False,
        selectivity,
        relation.num_rows,
        f"predicate keeps {selectivity:.0%} of {result.target_table}; "
        "filter cost likely exceeds join savings",
    )


def advise_from_stats(
    result: RewriteResult,
    stats: "TableStats",
    *,
    max_selectivity: float = 0.9,
) -> RewriteAdvice:
    """Like :func:`advise`, but from pre-built histogram statistics.

    This is the shape a production integration takes: the optimizer
    consults its catalog statistics (see
    :mod:`repro.engine.statistics`) instead of scanning data at
    rewrite time.  Estimates carry the usual independence-assumption
    error; the paper's Table 4 threshold (~0.9) is far from the typical
    error bars.
    """
    from ..engine.statistics import TableStats, estimate_selectivity

    assert isinstance(stats, TableStats)
    if not result.succeeded or result.outcome.predicate is None:
        return RewriteAdvice(False, 1.0, 0, "no rewrite to assess")
    estimated = estimate_selectivity(result.outcome.predicate, stats)
    if estimated <= max_selectivity:
        return RewriteAdvice(
            True,
            estimated,
            stats.row_count,
            f"estimated to keep {estimated:.0%} of {result.target_table} "
            "(histogram statistics); pushdown expected to pay off",
        )
    return RewriteAdvice(
        False,
        estimated,
        stats.row_count,
        f"estimated to keep {estimated:.0%} of {result.target_table} "
        "(histogram statistics); filter cost likely exceeds join savings",
    )
