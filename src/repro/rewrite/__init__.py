"""Query rewriting with learned predicates."""

from .advisor import RewriteAdvice, advise, advise_from_stats
from .cache import CacheStats, RewriteCache
from .rewriter import COMBINED, FULL_SET, PER_COLUMN, RewriteResult, rewrite_query, rewrite_sql
from .rules import (
    is_syntax_based_prospective,
    pushdown_blocked_tables,
    synthesis_input,
    target_columns,
)

__all__ = [
    "COMBINED",
    "FULL_SET",
    "PER_COLUMN",
    "CacheStats",
    "RewriteAdvice",
    "RewriteCache",
    "RewriteResult",
    "advise",
    "advise_from_stats",
    "is_syntax_based_prospective",
    "pushdown_blocked_tables",
    "rewrite_query",
    "rewrite_sql",
    "synthesis_input",
    "target_columns",
]
