"""End-to-end query rewriting with synthesized predicates.

Given a bound query and a target table, extract the WHERE predicate,
synthesize a valid predicate over the target table's columns
(Algorithm 1), and conjoin it into the query.  The rewritten query is
semantically equivalent by construction (the synthesized predicate is
implied by the original one) and its single-table shape lets the
pushdown optimizer filter the target table below the join.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..core import SIA_DEFAULT, SiaConfig, Synthesizer, UNSUPPORTED
from ..core.result import SynthesisOutcome
from ..predicates import Pred, pand, simplify_conjunction
from ..sql.binder import BoundQuery, parse_query
from ..sql.printer import render_query
from .rules import synthesis_input, target_columns


@dataclass
class RewriteResult:
    """Outcome of a rewrite attempt."""

    original: BoundQuery
    outcome: SynthesisOutcome
    target_table: str
    rewritten: BoundQuery | None = None

    @property
    def succeeded(self) -> bool:
        return self.rewritten is not None

    @property
    def original_sql(self) -> str:
        return render_query(self.original)

    @property
    def rewritten_sql(self) -> str | None:
        if self.rewritten is None:
            return None
        return render_query(self.rewritten)

    @property
    def synthesized_predicate(self) -> Pred | None:
        return self.outcome.predicate


PER_COLUMN = "per_column"
FULL_SET = "full_set"
COMBINED = "combined"


def rewrite_query(
    query: BoundQuery,
    target_table: str,
    config: SiaConfig = SIA_DEFAULT,
    *,
    synthesizer: Synthesizer | None = None,
    strategy: str = PER_COLUMN,
) -> RewriteResult:
    """Rewrite ``query`` with synthesized predicates over
    ``target_table``'s columns (the paper's headline flow).

    ``strategy`` picks the column subsets to synthesize over:

    * ``per_column`` (default) -- one synthesis per single column.
      Cheap, usually optimal, and the results simplify to plain bounds
      (the paper's Q2 carries ``l_shipdate < '1993-06-20'`` style
      predicates) that are cheap for the engine to evaluate.
    * ``full_set`` -- one synthesis over all target columns at once
      (captures cross-column constraints like the paper's
      ``l_commitdate - l_shipdate < 29``, at a much higher synthesis
      and evaluation cost).
    * ``combined`` -- both; all valid results are conjoined (valid
      predicates are closed under conjunction, Lemma 2).
    """
    target_table = target_table.lower()
    predicate = synthesis_input(query)
    targets = target_columns(predicate, target_table)
    if not targets:
        outcome = SynthesisOutcome(
            status=UNSUPPORTED,
            detail=f"predicate uses no columns of {target_table!r}",
        )
        return RewriteResult(query, outcome, target_table)

    subsets: list[set] = []
    if strategy in (PER_COLUMN, COMBINED):
        subsets.extend({column} for column in sorted(targets))
    if strategy in (FULL_SET, COMBINED) and len(targets) > 1:
        subsets.append(set(targets))
    if not subsets:
        subsets.append(set(targets))

    synth = synthesizer or Synthesizer(config)
    outcomes = [synth.synthesize(predicate, subset) for subset in subsets]
    valid = [o for o in outcomes if o.is_valid and o.predicate is not None]
    combined = _merge_outcomes(outcomes, valid)
    result = RewriteResult(query, combined, target_table)
    if valid:
        result.rewritten = dataclasses.replace(
            query,
            where=pand([query.where] + [o.predicate for o in valid]),
        )
    return result


def _merge_outcomes(outcomes, valid) -> SynthesisOutcome:
    """Aggregate per-subset outcomes into one result record."""
    from ..core.result import OPTIMAL, Timings, VALID

    if not valid:
        # Report the most informative failure.
        return max(outcomes, key=lambda o: (o.iterations, len(o.detail)))
    merged = SynthesisOutcome(
        status=OPTIMAL if all(o.is_optimal for o in valid) else VALID,
        predicate=simplify_conjunction(pand([o.predicate for o in valid])),
        iterations=sum(o.iterations for o in outcomes),
        true_samples=sum(o.true_samples for o in outcomes),
        false_samples=sum(o.false_samples for o in outcomes),
        timings=Timings(
            generation_ms=sum(o.timings.generation_ms for o in outcomes),
            learning_ms=sum(o.timings.learning_ms for o in outcomes),
            validation_ms=sum(o.timings.validation_ms for o in outcomes),
        ),
        optimal_exact=all(o.optimal_exact for o in valid),
        target_columns=tuple(
            sorted({name for o in valid for name in o.target_columns})
        ),
    )
    return merged


def rewrite_sql(
    sql: str,
    schema: dict,
    target_table: str,
    config: SiaConfig = SIA_DEFAULT,
) -> RewriteResult:
    """Parse, bind and rewrite a SQL string in one step."""
    return rewrite_query(parse_query(sql, schema), target_table, config)
