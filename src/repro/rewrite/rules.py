"""Predicate-centric analysis rules used by the rewriter.

Includes the section 6.2 "syntax-based prospective" test: a query
qualifies when some predicate spans multiple tables and at least one of
those tables has no single-table predicate of its own -- that table
must then be fully scanned unless a predicate is synthesized for it.
"""

from __future__ import annotations

from ..engine.optimizer import split_where
from ..predicates import Column, Pred, TRUE_PRED, pand
from ..sql.binder import BoundQuery


def synthesis_input(query: BoundQuery) -> Pred:
    """The predicate Sia works on: WHERE minus the equi-join keys."""
    _, per_table, residual = split_where(query)
    parts = list(residual)
    for table_preds in per_table.values():
        parts.extend(table_preds)
    return pand(parts)


def target_columns(pred: Pred, table: str) -> set[Column]:
    """Columns of ``table`` occurring in the predicate."""
    return {column for column in pred.columns() if column.table == table}


def pushdown_blocked_tables(query: BoundQuery) -> list[str]:
    """Tables forced into a full scan (section 6.2).

    A table is blocked when a multi-table predicate references it but
    no single-table predicate exists for it: the optimizer has nothing
    to push below the join on that side.
    """
    _, per_table, residual = split_where(query)
    referenced: set[str] = set()
    for pred in residual:
        referenced |= {column.table for column in pred.columns()}
    return sorted(
        table
        for table in referenced
        if not per_table.get(table)
    )


def is_syntax_based_prospective(query: BoundQuery) -> bool:
    """Whether the query qualifies for the section 6.2 case study."""
    return bool(pushdown_blocked_tables(query)) and query.where is not TRUE_PRED
