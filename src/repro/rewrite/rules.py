"""Predicate-centric analysis rules used by the rewriter.

Includes the section 6.2 "syntax-based prospective" test: a query
qualifies when some predicate spans multiple tables and at least one of
those tables has no single-table predicate of its own -- that table
must then be fully scanned unless a predicate is synthesized for it.

Also hosts :data:`REWRITE_RULES`, the registry of predicate identities
the rewriting stack is allowed to rely on.  Each entry carries a
machine-checkable proof obligation under SQL three-valued logic which
``python -m repro analyze`` discharges through the repo's own SMT
solver (:mod:`repro.analysis.soundness`); a rule that is only sound
under two-valued logic must be registered with ``equivalence=False``
or it will fail CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..engine.optimizer import split_where
from ..predicates import (
    Col,
    Column,
    Comparison,
    DATE,
    DOUBLE,
    Expr,
    INTEGER,
    Lit,
    PNot,
    Pred,
    TRUE_PRED,
    pand,
    por,
)
from ..sql.binder import BoundQuery


def synthesis_input(query: BoundQuery) -> Pred:
    """The predicate Sia works on: WHERE minus the equi-join keys."""
    _, per_table, residual = split_where(query)
    parts = list(residual)
    for table_preds in per_table.values():
        parts.extend(table_preds)
    return pand(parts)


def target_columns(pred: Pred, table: str) -> set[Column]:
    """Columns of ``table`` occurring in the predicate."""
    return {column for column in pred.columns() if column.table == table}


def pushdown_blocked_tables(query: BoundQuery) -> list[str]:
    """Tables forced into a full scan (section 6.2).

    A table is blocked when a multi-table predicate references it but
    no single-table predicate exists for it: the optimizer has nothing
    to push below the join on that side.
    """
    _, per_table, residual = split_where(query)
    referenced: set[str] = set()
    for pred in residual:
        referenced |= {column.table for column in pred.columns()}
    return sorted(
        table
        for table in referenced
        if not per_table.get(table)
    )


def is_syntax_based_prospective(query: BoundQuery) -> bool:
    """Whether the query qualifies for the section 6.2 case study."""
    return bool(pushdown_blocked_tables(query)) and query.where is not TRUE_PRED


# ----------------------------------------------------------------------
# The rewrite-rule registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RewriteRule:
    """A predicate identity with a null-aware proof obligation.

    ``equivalence=True`` obliges ``T(lhs) <=> T(rhs)`` under the
    three-valued-logic lift of section 5.2; ``equivalence=False``
    obliges only ``T(lhs) => T(rhs)`` (a *weakening*, the direction
    Lemma 4 needs for synthesized predicates).  ``note`` documents why
    the rule holds -- or, for implication-only rules, why the reverse
    direction fails in SQL semantics.
    """

    name: str
    lhs: Pred
    rhs: Pred
    equivalence: bool = True
    note: str = ""


# Schematic columns for rule templates.  Linear-arithmetic identities
# are uniform in the column, so one concrete instance per shape is a
# faithful regression check of the identity the code applies.
_X = Col(Column("t", "x", INTEGER))
_Y = Col(Column("t", "y", INTEGER))
_D = Col(Column("t", "d", DOUBLE))
_SHIP = Col(Column("lineitem", "l_shipdate", DATE))


def _cmp(left: Expr, op: str, right: Expr) -> Pred:
    return Comparison(left, op, right)


REWRITE_RULES: tuple[RewriteRule, ...] = (
    # -- identities behind predicates.simplify.simplify_conjunction ----
    RewriteRule(
        name="and-tighten-upper",
        lhs=_cmp(_X, "<=", Lit.integer(3)) & _cmp(_X, "<=", Lit.integer(5)),
        rhs=_cmp(_X, "<=", Lit.integer(3)),
        note="same-column upper bounds merge to the tightest one",
    ),
    RewriteRule(
        name="and-tighten-strictness",
        lhs=_cmp(_X, "<", Lit.integer(5)) & _cmp(_X, "<=", Lit.integer(5)),
        rhs=_cmp(_X, "<", Lit.integer(5)),
        note="on an equal bound the strict comparison wins",
    ),
    RewriteRule(
        name="and-idempotent",
        lhs=_cmp(_X, "<", Lit.integer(5)) & _cmp(_X, "<", Lit.integer(5)),
        rhs=_cmp(_X, "<", Lit.integer(5)),
        note="duplicate conjuncts are dropped",
    ),
    RewriteRule(
        name="and-tighten-lower-double",
        lhs=_cmp(_D, ">=", Lit.double(Fraction(1, 2)))
        & _cmp(_D, ">", Lit.double(Fraction(1, 4))),
        rhs=_cmp(_D, ">=", Lit.double(Fraction(1, 2))),
        note="lower-bound merge over a real-sorted column",
    ),
    RewriteRule(
        name="and-tighten-upper-date",
        lhs=_cmp(_SHIP, "<", Lit.date("1995-01-01"))
        & _cmp(_SHIP, "<", Lit.date("1996-01-01")),
        rhs=_cmp(_SHIP, "<", Lit.date("1995-01-01")),
        note="bound merge survives the DATE -> day-offset encoding",
    ),
    # -- boolean-algebra identities, valid in Kleene logic -------------
    RewriteRule(
        name="not-not",
        lhs=PNot(PNot(_cmp(_X, "<", Lit.integer(5)))),
        rhs=_cmp(_X, "<", Lit.integer(5)),
        note="double negation is the identity in 3VL",
    ),
    RewriteRule(
        name="de-morgan-and",
        lhs=PNot(_cmp(_X, "<", Lit.integer(5)) & _cmp(_Y, "<", Lit.integer(5))),
        rhs=por(
            [
                PNot(_cmp(_X, "<", Lit.integer(5))),
                PNot(_cmp(_Y, "<", Lit.integer(5))),
            ]
        ),
        note="De Morgan holds in Kleene logic",
    ),
    RewriteRule(
        name="not-comparison-flip",
        lhs=PNot(_cmp(_X, "<", Lit.integer(5))),
        rhs=_cmp(_X, ">=", Lit.integer(5)),
        note="NOT(x < c) = x >= c: both sides are NULL exactly when x is",
    ),
    RewriteRule(
        name="or-absorption",
        lhs=por(
            [
                _cmp(_X, "<", Lit.integer(3)),
                _cmp(_X, "<", Lit.integer(3)) & _cmp(_Y, "<", Lit.integer(5)),
            ]
        ),
        rhs=_cmp(_X, "<", Lit.integer(3)),
        note="absorption holds in Kleene logic",
    ),
    # -- weakenings: lhs => rhs only (Lemma 4 direction) ---------------
    RewriteRule(
        name="and-weaken",
        lhs=_cmp(_X, "<", Lit.integer(5)) & _cmp(_Y, "<", Lit.integer(5)),
        rhs=_cmp(_X, "<", Lit.integer(5)),
        equivalence=False,
        note="dropping conjuncts is always a valid weakening",
    ),
    RewriteRule(
        name="or-widen",
        lhs=_cmp(_X, "<", Lit.integer(5)),
        rhs=por([_cmp(_X, "<", Lit.integer(5)), _cmp(_Y, "<", Lit.integer(5))]),
        equivalence=False,
        note="adding disjuncts is always a valid widening",
    ),
    RewriteRule(
        name="reflexive-equality-weaken",
        lhs=_cmp(_X, "=", _X),
        rhs=TRUE_PRED,
        equivalence=False,
        note="the classic 3VL trap: x = x is TRUE only for non-NULL x "
        "(NULL = NULL is NULL), so this is a weakening, not an "
        "equivalence -- registering it with equivalence=True fails "
        "the analyzer's reverse obligation",
    ),
    RewriteRule(
        name="excluded-middle-weaken",
        lhs=por([_cmp(_X, "<", Lit.integer(5)), _cmp(_X, ">=", Lit.integer(5))]),
        rhs=TRUE_PRED,
        equivalence=False,
        note="x < c OR x >= c is NULL (not TRUE) when x is NULL",
    ),
)

