"""Plan-cache-style rewrite caching (section 6.2 deployment story).

The paper notes that most expensive production queries are stored
procedures "optimized only once and their query execution plans are
stored in a plan cache" -- synthesis cost is paid once per query shape.
:class:`RewriteCache` is that integration point: rewrites are keyed by
the *rendered* query text (a canonical form -- binding and re-rendering
normalises whitespace, qualification and literal spelling), so repeated
submissions of the same query skip synthesis entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..core import SIA_DEFAULT, SiaConfig
from ..sql.binder import BoundQuery
from ..sql.printer import render_query
from .rewriter import PER_COLUMN, RewriteResult, rewrite_query


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0


@dataclass
class RewriteCache:
    """LRU cache of rewrite results keyed by canonical query text."""

    config: SiaConfig = SIA_DEFAULT
    strategy: str = PER_COLUMN
    capacity: int = 256
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: "OrderedDict[tuple[str, str], RewriteResult]" = field(
        default_factory=OrderedDict
    )

    def key_for(self, query: BoundQuery, target_table: str) -> tuple[str, str]:
        return (render_query(query), target_table.lower())

    def rewrite(self, query: BoundQuery, target_table: str) -> RewriteResult:
        """Cached rewrite: synthesis runs once per query shape."""
        key = self.key_for(query, target_table)
        cached = self._entries.get(key)
        if cached is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.stats.misses += 1
        result = rewrite_query(
            query, target_table, self.config, strategy=self.strategy
        )
        self._entries[key] = result
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return result

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
