"""repro: a full reproduction of "Sia: Optimizing Queries using Learned
Predicates" (SIGMOD 2021).

Subpackages
-----------
smt
    From-scratch SMT solver for linear integer/real arithmetic
    (CDCL + simplex + branch-and-bound + quantifier elimination).
sql
    Lexer/parser/printer for the SQL fragment the paper targets.
predicates
    Typed SQL predicate IR, date/NULL encodings, SMT lowering,
    vectorised evaluation.
learn
    Linear SVM (dual coordinate descent) and hyperplane-to-predicate
    construction.
core
    The Sia algorithm itself: sample generation, the counter-example
    guided learning loop, verification, baselines.
rewrite
    Query rewriting with synthesized predicates.
engine
    A columnar relational execution engine with a pushdown optimizer.
tpch
    TPC-H data generator and the paper's 200-query workload generator.
bench
    Shared experiment harness for the paper's tables and figures.

The lazily-imported top-level API re-exports the pieces a downstream
user needs for the paper's headline flow: parse a query, synthesize a
predicate over chosen columns, rewrite, and execute.
"""

from importlib import metadata as _metadata

try:  # pragma: no cover - depends on install mode
    __version__ = _metadata.version("repro")
except _metadata.PackageNotFoundError:  # pragma: no cover
    __version__ = "0.0.0.dev0"

_LAZY_EXPORTS = {
    "SiaConfig": "repro.core.config",
    "SIA_DEFAULT": "repro.core.config",
    "SIA_V1": "repro.core.config",
    "SIA_V2": "repro.core.config",
    "SynthesisOutcome": "repro.core.synthesize",
    "Synthesizer": "repro.core.synthesize",
    "synthesize": "repro.core.synthesize",
    "RewriteResult": "repro.rewrite.rewriter",
    "rewrite_query": "repro.rewrite.rewriter",
}

__all__ = sorted(_LAZY_EXPORTS) + ["__version__"]


def __getattr__(name):
    """Lazy re-exports so `import repro.smt` works before core exists."""
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target)
    value = getattr(module, name)
    globals()[name] = value
    return value
