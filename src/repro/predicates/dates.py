"""Date and timestamp <-> integer conversions.

Section 3.2/5.2 of the paper: DATE columns are converted to INTEGER by
choosing an *origin* date (zero) and encoding every other date as the
signed number of days from the origin; TIMESTAMP uses seconds.  The
execution engine uses a fixed global epoch (1970-01-01) for its int64
column storage, while the SMT lowering picks the smallest date literal
of the predicate as origin so that sample magnitudes stay small (this
matches the paper, which uses 1993-06-01 for its running example).
"""

from __future__ import annotations

import datetime as _dt

EPOCH_DATE = _dt.date(1970, 1, 1)
EPOCH_TS = _dt.datetime(1970, 1, 1)


def date_to_days(value: _dt.date, origin: _dt.date = EPOCH_DATE) -> int:
    """Signed day count from ``origin`` to ``value``."""
    return (value - origin).days


def days_to_date(days: int, origin: _dt.date = EPOCH_DATE) -> _dt.date:
    """Inverse of :func:`date_to_days`."""
    return origin + _dt.timedelta(days=days)


def timestamp_to_seconds(value: _dt.datetime, origin: _dt.datetime = EPOCH_TS) -> int:
    """Signed second count from ``origin`` to ``value``."""
    return int((value - origin).total_seconds())


def seconds_to_timestamp(seconds: int, origin: _dt.datetime = EPOCH_TS) -> _dt.datetime:
    """Inverse of :func:`timestamp_to_seconds`."""
    return origin + _dt.timedelta(seconds=seconds)
