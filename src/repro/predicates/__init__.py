"""Typed SQL predicate IR, encodings and evaluators.

See DESIGN.md section 3.  The IR (:mod:`repro.predicates.expr`) is
shared by the parser, the synthesizer, the rewriter and the engine.
"""

from .dates import (
    EPOCH_DATE,
    EPOCH_TS,
    date_to_days,
    days_to_date,
    seconds_to_timestamp,
    timestamp_to_seconds,
)
from .encode import falsity_formula, truth_formula
from .eval import (
    eval_expr_numpy,
    eval_expr_py,
    eval_pred_numpy,
    eval_pred_py,
    selectivity,
)
from .expr import (
    COLUMN_TYPES,
    DATE,
    DOUBLE,
    FALSE_PRED,
    INTEGER,
    TIMESTAMP,
    TRUE_PRED,
    Arith,
    Col,
    Column,
    Comparison,
    Expr,
    IsNull,
    Lit,
    PAnd,
    PNot,
    POr,
    Pred,
    pand,
    por,
    walk_comparisons,
)
from .normalize import LinearizationContext, linearize_expr, lower_predicate
from .simplify import simplify_conjunction

__all__ = [
    "Arith",
    "Col",
    "Column",
    "COLUMN_TYPES",
    "Comparison",
    "DATE",
    "DOUBLE",
    "EPOCH_DATE",
    "EPOCH_TS",
    "Expr",
    "FALSE_PRED",
    "INTEGER",
    "IsNull",
    "LinearizationContext",
    "Lit",
    "PAnd",
    "PNot",
    "POr",
    "Pred",
    "TIMESTAMP",
    "TRUE_PRED",
    "date_to_days",
    "days_to_date",
    "eval_expr_numpy",
    "eval_expr_py",
    "eval_pred_numpy",
    "eval_pred_py",
    "falsity_formula",
    "linearize_expr",
    "lower_predicate",
    "pand",
    "por",
    "seconds_to_timestamp",
    "selectivity",
    "simplify_conjunction",
    "timestamp_to_seconds",
    "truth_formula",
    "walk_comparisons",
]
