"""Predicate evaluation: exact scalar (3VL) and vectorised numpy.

Two evaluators share the IR:

* :func:`eval_pred_py` -- exact three-valued evaluation of one tuple,
  using Fractions and real ``datetime.date`` objects.  Used by tests
  and the selectivity measurements (Table 4), where exactness matters.

* :func:`eval_pred_numpy` -- vectorised evaluation over whole columns
  for the execution engine.  DATE columns are int64 day counts since
  the global epoch and TIMESTAMP columns int64 seconds; NULLs travel in
  boolean masks alongside the data (Kleene truth/null pairs).
"""

from __future__ import annotations

import datetime as _dt
from fractions import Fraction
from typing import Callable, Mapping

import numpy as np

from ..errors import UnsupportedPredicateError
from . import dates
from .expr import (
    DATE,
    TIMESTAMP,
    Arith,
    Col,
    Column,
    Comparison,
    Expr,
    FALSE_PRED,
    IsNull,
    Lit,
    PAnd,
    PNot,
    POr,
    Pred,
    TRUE_PRED,
)

# ----------------------------------------------------------------------
# Scalar, exact, three-valued
# ----------------------------------------------------------------------
ScalarValue = Fraction | int | _dt.date | _dt.datetime | None


def eval_expr_py(expr: Expr, row: Mapping[Column, ScalarValue]) -> ScalarValue:
    """Exact evaluation of an expression for one tuple (None = NULL)."""
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Col):
        return row[expr.column]
    if isinstance(expr, Arith):
        left = eval_expr_py(expr.left, row)
        right = eval_expr_py(expr.right, row)
        if left is None or right is None:
            return None
        return _apply_scalar(expr.op, left, right)
    raise UnsupportedPredicateError(f"cannot evaluate {expr!r}")


def _apply_scalar(op: str, left: ScalarValue, right: ScalarValue):
    l_temporal = isinstance(left, (_dt.date, _dt.datetime))
    r_temporal = isinstance(right, (_dt.date, _dt.datetime))
    if l_temporal or r_temporal:
        return _apply_temporal(op, left, right)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if right == 0:
        return None  # SQL would error; we treat x/0 as NULL (documented)
    return Fraction(left) / Fraction(right)


def _apply_temporal(op: str, left, right):
    l_temporal = isinstance(left, (_dt.date, _dt.datetime))
    r_temporal = isinstance(right, (_dt.date, _dt.datetime))
    if l_temporal and r_temporal:
        if op != "-":
            raise UnsupportedPredicateError(f"{op!r} on two temporal values")
        delta = left - right
        if isinstance(left, _dt.datetime):
            return int(delta.total_seconds())
        return delta.days
    if l_temporal:
        shift = _as_shift(left, right)
        if op == "+":
            return left + shift
        if op == "-":
            return left - shift
    elif op == "+":
        return right + _as_shift(right, left)
    raise UnsupportedPredicateError(f"{op!r} between temporal and numeric")


def _as_shift(temporal, amount) -> _dt.timedelta:
    amount = int(amount)
    if isinstance(temporal, _dt.datetime):
        return _dt.timedelta(seconds=amount)
    return _dt.timedelta(days=amount)


def eval_pred_py(pred: Pred, row: Mapping[Column, ScalarValue]) -> bool | None:
    """Three-valued evaluation of one tuple: True, False, or None."""
    if pred is TRUE_PRED:
        return True
    if pred is FALSE_PRED:
        return False
    if isinstance(pred, Comparison):
        left = eval_expr_py(pred.left, row)
        right = eval_expr_py(pred.right, row)
        if left is None or right is None:
            return None
        return _compare_scalar(pred.op, left, right)
    if isinstance(pred, PAnd):
        saw_null = False
        for arg in pred.args:
            value = eval_pred_py(arg, row)
            if value is False:
                return False
            if value is None:
                saw_null = True
        return None if saw_null else True
    if isinstance(pred, POr):
        saw_null = False
        for arg in pred.args:
            value = eval_pred_py(arg, row)
            if value is True:
                return True
            if value is None:
                saw_null = True
        return None if saw_null else False
    if isinstance(pred, PNot):
        value = eval_pred_py(pred.arg, row)
        return None if value is None else not value
    if isinstance(pred, IsNull):
        value = eval_expr_py(pred.expr, row)
        result = value is None
        return not result if pred.negated else result
    raise UnsupportedPredicateError(f"cannot evaluate {pred!r}")


def _compare_scalar(op: str, left, right) -> bool:
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "=":
        return left == right
    return left != right


# ----------------------------------------------------------------------
# Vectorised numpy evaluation
# ----------------------------------------------------------------------
# resolve(column) -> (values ndarray, null mask ndarray or None)
Resolver = Callable[[Column], tuple[np.ndarray, np.ndarray | None]]

# Internally, expression values may be numpy arrays OR python scalars
# (literals broadcast for free), and null masks may be None (no NULLs).
_Values = "np.ndarray | int | float"
_Nulls = "np.ndarray | None"


def _or_nulls(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return a | b


def eval_expr_numpy(expr: Expr, resolve: Resolver, length: int):
    """Vectorised expression evaluation -> (values, null mask or None).

    Temporal values are int64 offsets from the global epoch.  Literals
    stay python scalars (numpy broadcasting makes materialising
    constant arrays pointless), and a ``None`` mask means "no NULLs".
    """
    if isinstance(expr, Lit):
        return _encode_literal_epoch(expr), None
    if isinstance(expr, Col):
        return resolve(expr.column)
    if isinstance(expr, Arith):
        left, left_null = eval_expr_numpy(expr.left, resolve, length)
        right, right_null = eval_expr_numpy(expr.right, resolve, length)
        nulls = _or_nulls(left_null, right_null)
        if expr.op == "+":
            return left + right, nulls
        if expr.op == "-":
            return left - right, nulls
        if expr.op == "*":
            return left * right, nulls
        with np.errstate(divide="ignore", invalid="ignore"):
            values = np.true_divide(left, right)
        bad = ~np.isfinite(values)
        if isinstance(bad, np.ndarray):
            # Division by zero yields SQL NULL; the 0.0 placeholder is
            # masked by the null flags and never reaches the solver.
            values = np.where(bad, 0.0, values)  # sia: allow-float
            nulls = _or_nulls(nulls, bad)
        elif bad:  # scalar division by zero
            values = 0.0  # sia: allow-float -- masked by nulls below
            nulls = np.ones(length, dtype=bool)
        return values, nulls
    raise UnsupportedPredicateError(f"cannot evaluate {expr!r}")


def _encode_literal_epoch(lit: Lit):
    if lit.ltype == DATE:
        return dates.date_to_days(lit.value)
    if lit.ltype == TIMESTAMP:
        return dates.timestamp_to_seconds(lit.value)
    value = lit.value
    if isinstance(value, Fraction):
        # sia: allow-float -- vectorised engine evaluation boundary:
        # numpy execution is float-native; the exact pipeline never
        # reads these values back.
        return int(value) if value.denominator == 1 else float(value)
    return value


def eval_pred_numpy(
    pred: Pred, resolve: Resolver, length: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised 3VL evaluation -> (truth mask, null mask).

    A tuple passes a WHERE filter iff ``truth & ~null`` -- by
    construction ``truth`` is already False wherever ``null`` is True.
    """
    if pred is TRUE_PRED:
        return np.ones(length, dtype=bool), np.zeros(length, dtype=bool)
    if pred is FALSE_PRED:
        return np.zeros(length, dtype=bool), np.zeros(length, dtype=bool)
    if isinstance(pred, Comparison):
        left, left_null = eval_expr_numpy(pred.left, resolve, length)
        right, right_null = eval_expr_numpy(pred.right, resolve, length)
        nulls = _or_nulls(left_null, right_null)
        truth = _compare_numpy(pred.op, left, right)
        if not isinstance(truth, np.ndarray):  # both sides constant
            truth = np.full(length, bool(truth))
        if nulls is None:
            return truth, np.zeros(length, dtype=bool)
        return truth & ~nulls, nulls
    if isinstance(pred, PAnd):
        truth = np.ones(length, dtype=bool)
        false = np.zeros(length, dtype=bool)
        for arg in pred.args:
            t, n = eval_pred_numpy(arg, resolve, length)
            false |= ~t & ~n
            truth &= t
        nulls = ~truth & ~false
        return truth, nulls
    if isinstance(pred, POr):
        truth = np.zeros(length, dtype=bool)
        false = np.ones(length, dtype=bool)
        for arg in pred.args:
            t, n = eval_pred_numpy(arg, resolve, length)
            truth |= t
            false &= ~t & ~n
        nulls = ~truth & ~false
        return truth, nulls
    if isinstance(pred, PNot):
        t, n = eval_pred_numpy(pred.arg, resolve, length)
        return ~t & ~n, n
    if isinstance(pred, IsNull):
        _, nulls = eval_expr_numpy(pred.expr, resolve, length)
        if nulls is None:
            nulls = np.zeros(length, dtype=bool)
        truth = ~nulls if pred.negated else nulls
        return truth, np.zeros(length, dtype=bool)
    raise UnsupportedPredicateError(f"cannot evaluate {pred!r}")


def _compare_numpy(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "=":
        return left == right
    return left != right


def selectivity(pred: Pred, resolve: Resolver, length: int) -> float:
    """Fraction of tuples a predicate accepts (TRUE under 3VL)."""
    if length == 0:
        return 1.0  # sia: allow-float -- statistics output, not solver input
    truth, _ = eval_pred_numpy(pred, resolve, length)
    # sia: allow-float -- selectivity is a statistic consumed by the
    # optimizer, outside the exact verification path
    return float(np.count_nonzero(truth)) / float(length)
