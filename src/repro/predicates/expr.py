"""Typed SQL expression and predicate IR.

This is the surface the synthesizer, the rewriter and the execution
engine all share.  It mirrors the grammar of section 4.1:

.. code-block:: text

    P := E CP E | P L P | NOT P
    E := Column | Const | E OP E
    CP := > | < | = | <= | >= | <>
    OP := + | - | * | /
    L := AND | OR

Types follow section 4.1/5.2: INTEGER, DOUBLE, DATE and TIMESTAMP are
supported; TEXT is not.  DATE/TIMESTAMP arithmetic follows SQL
conventions: ``DATE - DATE`` is an INTEGER day count, ``DATE +/-
INTEGER`` shifts by days, and similarly for TIMESTAMP with seconds.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Union

from ..errors import TypeCheckError

# ----------------------------------------------------------------------
# Column types
# ----------------------------------------------------------------------
INTEGER = "INTEGER"
DOUBLE = "DOUBLE"
DATE = "DATE"
TIMESTAMP = "TIMESTAMP"

COLUMN_TYPES = (INTEGER, DOUBLE, DATE, TIMESTAMP)
_TEMPORAL = (DATE, TIMESTAMP)
_NUMERIC = (INTEGER, DOUBLE)

PyValue = Union[int, float, Fraction, _dt.date, _dt.datetime]


@dataclass(frozen=True, order=True)
class Column:
    """A fully-qualified column reference."""

    table: str
    name: str
    ctype: str = INTEGER

    def __post_init__(self) -> None:
        if self.ctype not in COLUMN_TYPES:
            raise TypeCheckError(
                f"unsupported column type {self.ctype!r} for {self.table}.{self.name}"
            )

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}"

    def __repr__(self) -> str:
        return self.qualified


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class of arithmetic expressions."""

    __slots__ = ()

    @property
    def etype(self) -> str:
        raise NotImplementedError

    def columns(self) -> set[Column]:
        out: set[Column] = set()
        _collect_expr_columns(self, out)
        return out

    def __add__(self, other: "Expr") -> "Arith":
        return Arith("+", self, other)

    def __sub__(self, other: "Expr") -> "Arith":
        return Arith("-", self, other)

    def __mul__(self, other: "Expr") -> "Arith":
        return Arith("*", self, other)

    def __truediv__(self, other: "Expr") -> "Arith":
        return Arith("/", self, other)


@dataclass(frozen=True)
class Col(Expr):
    """A column occurrence in an expression."""

    column: Column

    @property
    def etype(self) -> str:
        return self.column.ctype

    def __repr__(self) -> str:
        return self.column.qualified


@dataclass(frozen=True)
class Lit(Expr):
    """A literal constant.

    ``value`` is an ``int`` or :class:`~fractions.Fraction` for numeric
    types, a :class:`datetime.date` for DATE, or a
    :class:`datetime.datetime` for TIMESTAMP.  Floats are converted to
    exact fractions at construction time so the SMT pipeline stays
    exact.
    """

    value: PyValue
    ltype: str

    def __post_init__(self) -> None:
        if self.ltype not in COLUMN_TYPES:
            raise TypeCheckError(f"unsupported literal type {self.ltype!r}")
        if isinstance(self.value, float):
            object.__setattr__(self, "value", Fraction(self.value).limit_denominator(10**9))

    @property
    def etype(self) -> str:
        return self.ltype

    def __repr__(self) -> str:
        return f"{self.value}"

    # Convenience constructors ----------------------------------------
    @staticmethod
    def integer(value: int) -> "Lit":
        return Lit(int(value), INTEGER)

    @staticmethod
    def double(value: float | Fraction) -> "Lit":
        return Lit(value, DOUBLE)

    @staticmethod
    def date(value: _dt.date | str) -> "Lit":
        if isinstance(value, str):
            value = _dt.date.fromisoformat(value)
        return Lit(value, DATE)

    @staticmethod
    def timestamp(value: _dt.datetime | str) -> "Lit":
        if isinstance(value, str):
            value = _dt.datetime.fromisoformat(value)
        return Lit(value, TIMESTAMP)


_ARITH_OPS = ("+", "-", "*", "/")


@dataclass(frozen=True)
class Arith(Expr):
    """A binary arithmetic expression with SQL date-aware typing."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise TypeCheckError(f"unknown arithmetic operator {self.op!r}")
        self.etype  # force the type check at construction

    @property
    def etype(self) -> str:
        lt, rt = self.left.etype, self.right.etype
        if lt in _NUMERIC and rt in _NUMERIC:
            return DOUBLE if DOUBLE in (lt, rt) else INTEGER
        if lt in _TEMPORAL or rt in _TEMPORAL:
            return _temporal_type(self.op, lt, rt)
        raise TypeCheckError(f"cannot apply {self.op!r} to {lt} and {rt}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


def _temporal_type(op: str, lt: str, rt: str) -> str:
    """SQL-style typing for date/timestamp arithmetic."""
    for temporal in _TEMPORAL:
        if lt == temporal and rt == temporal:
            if op == "-":
                return INTEGER  # day / second difference
            raise TypeCheckError(f"cannot apply {op!r} to two {temporal} values")
        if lt == temporal and rt == INTEGER:
            if op in ("+", "-"):
                return temporal
            raise TypeCheckError(f"cannot apply {op!r} to {temporal} and INTEGER")
        if lt == INTEGER and rt == temporal:
            if op == "+":
                return temporal
            raise TypeCheckError(f"cannot apply {op!r} to INTEGER and {temporal}")
    raise TypeCheckError(f"cannot apply {op!r} to {lt} and {rt}")


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
_COMPARE_OPS = ("<", "<=", ">", ">=", "=", "!=", "<>")


class Pred:
    """Base class of predicates."""

    __slots__ = ()

    def columns(self) -> set[Column]:
        out: set[Column] = set()
        _collect_pred_columns(self, out)
        return out

    def conjuncts(self) -> Iterator["Pred"]:
        """Top-level conjuncts (self if not a conjunction)."""
        if isinstance(self, PAnd):
            for arg in self.args:
                yield from arg.conjuncts()
        else:
            yield self

    def __and__(self, other: "Pred") -> "Pred":
        return pand([self, other])

    def __or__(self, other: "Pred") -> "Pred":
        return por([self, other])

    def __invert__(self) -> "Pred":
        return PNot(self)


class _PConst(Pred):
    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        object.__setattr__(self, "value", value)

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE_PRED = _PConst(True)
FALSE_PRED = _PConst(False)


@dataclass(frozen=True)
class Comparison(Pred):
    """``left op right`` with op in ``< <= > >= = != <>``."""

    left: Expr
    op: str
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARE_OPS:
            raise TypeCheckError(f"unknown comparison operator {self.op!r}")
        if self.op == "<>":
            object.__setattr__(self, "op", "!=")
        lt, rt = self.left.etype, self.right.etype
        comparable = (lt in _NUMERIC and rt in _NUMERIC) or lt == rt
        if not comparable:
            raise TypeCheckError(f"cannot compare {lt} with {rt}")

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


class _PNAry(Pred):
    __slots__ = ("args",)

    def __init__(self, args: tuple[Pred, ...]) -> None:
        object.__setattr__(self, "args", tuple(args))

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.args == other.args

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.args))


class PAnd(_PNAry):
    """Conjunction of predicates."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.args)) + ")"


class POr(_PNAry):
    """Disjunction of predicates."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class PNot(Pred):
    arg: Pred

    def __repr__(self) -> str:
        return f"NOT ({self.arg!r})"


@dataclass(frozen=True)
class IsNull(Pred):
    """``expr IS [NOT] NULL`` -- used by the engine, not by synthesis."""

    expr: Expr
    negated: bool = False

    def __repr__(self) -> str:
        return f"{self.expr!r} IS {'NOT ' if self.negated else ''}NULL"


def pand(args: list[Pred]) -> Pred:
    """Conjunction with flattening/folding."""
    flat: list[Pred] = []
    for arg in args:
        if arg is TRUE_PRED:
            continue
        if arg is FALSE_PRED:
            return FALSE_PRED
        if isinstance(arg, PAnd):
            flat.extend(arg.args)
        else:
            flat.append(arg)
    if not flat:
        return TRUE_PRED
    if len(flat) == 1:
        return flat[0]
    return PAnd(tuple(flat))


def por(args: list[Pred]) -> Pred:
    """Disjunction with flattening/folding."""
    flat: list[Pred] = []
    for arg in args:
        if arg is FALSE_PRED:
            continue
        if arg is TRUE_PRED:
            return TRUE_PRED
        if isinstance(arg, POr):
            flat.extend(arg.args)
        else:
            flat.append(arg)
    if not flat:
        return FALSE_PRED
    if len(flat) == 1:
        return flat[0]
    return POr(tuple(flat))


# ----------------------------------------------------------------------
# Traversals
# ----------------------------------------------------------------------
def _collect_expr_columns(expr: Expr, out: set[Column]) -> None:
    if isinstance(expr, Col):
        out.add(expr.column)
    elif isinstance(expr, Arith):
        _collect_expr_columns(expr.left, out)
        _collect_expr_columns(expr.right, out)


def _collect_pred_columns(pred: Pred, out: set[Column]) -> None:
    if isinstance(pred, Comparison):
        _collect_expr_columns(pred.left, out)
        _collect_expr_columns(pred.right, out)
    elif isinstance(pred, (PAnd, POr)):
        for arg in pred.args:
            _collect_pred_columns(arg, out)
    elif isinstance(pred, PNot):
        _collect_pred_columns(pred.arg, out)
    elif isinstance(pred, IsNull):
        _collect_expr_columns(pred.expr, out)


def literal_for_column(column: Column, value: PyValue) -> Lit:
    """A literal typed to match ``column`` (dates stay dates, etc.)."""
    if column.ctype == DATE:
        assert isinstance(value, _dt.date)
        return Lit(value, DATE)
    if column.ctype == TIMESTAMP:
        assert isinstance(value, _dt.datetime)
        return Lit(value, TIMESTAMP)
    if column.ctype == DOUBLE:
        return Lit(value, DOUBLE)
    return Lit(int(value), INTEGER)


def walk_comparisons(pred: Pred) -> Iterator[Comparison]:
    """All comparison leaves of a predicate tree."""
    if isinstance(pred, Comparison):
        yield pred
    elif isinstance(pred, (PAnd, POr)):
        for arg in pred.args:
            yield from walk_comparisons(arg)
    elif isinstance(pred, PNot):
        yield from walk_comparisons(pred.arg)
