"""Syntactic predicate simplification.

Used by the rewriter to tidy synthesized conjunctions before they are
re-inserted into SQL: duplicate conjuncts are dropped and single-column
bounds on the same column are merged to the tightest one.  Purely
syntactic and semantics-preserving; the heavy lifting (implication
pruning) already happened in exact arithmetic inside the synthesizer.
"""

from __future__ import annotations

import datetime as _dt
from fractions import Fraction

from .expr import (
    Col,
    Column,
    Comparison,
    Lit,
    PAnd,
    Pred,
    TRUE_PRED,
    pand,
)

_UPPER_OPS = ("<", "<=")
_LOWER_OPS = (">", ">=")


def _bound_key(value) -> Fraction:
    """Comparable key for literal values (dates become ordinals)."""
    if isinstance(value, _dt.datetime):
        return Fraction(int(value.timestamp()))
    if isinstance(value, _dt.date):
        return Fraction(value.toordinal())
    return Fraction(value)


def _is_simple_bound(pred: Pred) -> tuple[Column, str, Lit] | None:
    """Matches ``col OP literal`` with OP in < <= > >=."""
    if (
        isinstance(pred, Comparison)
        and isinstance(pred.left, Col)
        and isinstance(pred.right, Lit)
        and pred.op in _UPPER_OPS + _LOWER_OPS
    ):
        return pred.left.column, pred.op, pred.right
    return None


def simplify_conjunction(pred: Pred) -> Pred:
    """Drop duplicate conjuncts and merge same-column bounds.

    ``x <= 5 AND x <= 3`` becomes ``x <= 3``; ``x < 5 AND x <= 5``
    becomes ``x < 5``.  Conjuncts that are not simple bounds pass
    through untouched (deduplicated by structural equality).
    """
    if not isinstance(pred, PAnd):
        return pred

    passthrough: list[Pred] = []
    # (column, side) -> (key, strict, literal)
    bounds: dict[tuple[Column, str], tuple[Fraction, bool, Lit]] = {}
    seen: set = set()

    for conjunct in pred.conjuncts():
        if conjunct is TRUE_PRED:
            continue
        match = _is_simple_bound(conjunct)
        if match is None:
            if conjunct not in seen:
                seen.add(conjunct)
                passthrough.append(conjunct)
            continue
        column, op, lit = match
        side = "upper" if op in _UPPER_OPS else "lower"
        key = _bound_key(lit.value)
        strict = op in ("<", ">")
        current = bounds.get((column, side))
        if current is None or _tighter(side, (key, strict), current[:2]):
            bounds[(column, side)] = (key, strict, lit)

    merged: list[Pred] = []
    for (column, side), (_, strict, lit) in sorted(
        bounds.items(), key=lambda item: (item[0][0], item[0][1])
    ):
        if side == "upper":
            op = "<" if strict else "<="
        else:
            op = ">" if strict else ">="
        merged.append(Comparison(Col(column), op, lit))
    return pand(merged + passthrough)


def _tighter(side: str, new: tuple[Fraction, bool], old: tuple[Fraction, bool]) -> bool:
    new_key, new_strict = new
    old_key, old_strict = old
    if side == "upper":
        if new_key != old_key:
            return new_key < old_key
    else:
        if new_key != old_key:
            return new_key > old_key
    return new_strict and not old_strict
