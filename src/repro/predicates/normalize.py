"""Lowering of SQL predicates to SMT formulas (section 5.2).

Three concerns from the paper are handled here:

* **Type conversion** -- DATE/TIMESTAMP columns and literals become
  integer day/second offsets from an origin chosen per predicate (the
  smallest temporal literal, falling back to the global epoch).
  INTEGER columns map to int-sorted SMT variables, DOUBLE to
  real-sorted ones.

* **Non-linear arithmetic** -- a product or quotient of two
  column-bearing expressions is *packed* into a single fresh variable,
  which is sound only when the packed columns do not occur elsewhere in
  the predicate; otherwise :class:`UnsupportedPredicateError` is
  raised (mirroring Sia's partial workaround for undecidability of
  non-linear integer arithmetic).

* **Variable naming** -- each column gets a stable SMT variable so the
  learned hyperplane can be mapped back to SQL.
"""

from __future__ import annotations

import datetime as _dt
from fractions import Fraction

from ..errors import UnsupportedPredicateError
from ..smt import INT, REAL, BVar, Formula, LinExpr, Var, compare, conj, disj, negate
from ..smt.formula import FALSE, TRUE
from . import dates
from .expr import (
    DATE,
    DOUBLE,
    INTEGER,
    TIMESTAMP,
    Arith,
    Col,
    Column,
    Comparison,
    Expr,
    FALSE_PRED,
    IsNull,
    Lit,
    PAnd,
    PNot,
    POr,
    Pred,
    TRUE_PRED,
)


def _column_sort(ctype: str) -> str:
    return REAL if ctype == DOUBLE else INT


class LinearizationContext:
    """Maps columns (and packed non-linear terms) to SMT variables."""

    def __init__(
        self,
        *,
        date_origin: _dt.date | None = None,
        ts_origin: _dt.datetime | None = None,
    ) -> None:
        self.date_origin = date_origin or dates.EPOCH_DATE
        self.ts_origin = ts_origin or dates.EPOCH_TS
        self.var_of_column: dict[Column, Var] = {}
        self.column_of_var: dict[Var, Column] = {}
        self.null_flag_of_column: dict[Column, BVar] = {}
        self._packed: dict[str, Var] = {}
        self.packed_expr_of_var: dict[Var, Arith] = {}
        self._direct_columns: set[Column] = set()
        self._packed_columns: dict[Var, set[Column]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def for_predicate(cls, pred: Pred) -> "LinearizationContext":
        """Context with the origin set to the predicate's earliest
        temporal literal (keeps sample magnitudes small, section 3.2)."""
        date_origin: _dt.date | None = None
        ts_origin: _dt.datetime | None = None
        for lit in _walk_literals(pred):
            if lit.ltype == DATE:
                value = lit.value
                assert isinstance(value, _dt.date)
                if date_origin is None or value < date_origin:
                    date_origin = value
            elif lit.ltype == TIMESTAMP:
                value = lit.value
                assert isinstance(value, _dt.datetime)
                if ts_origin is None or value < ts_origin:
                    ts_origin = value
        return cls(date_origin=date_origin, ts_origin=ts_origin)

    # ------------------------------------------------------------------
    def var(self, column: Column) -> Var:
        existing = self.var_of_column.get(column)
        if existing is not None:
            return existing
        var = Var(column.qualified, _column_sort(column.ctype))
        self.var_of_column[column] = var
        self.column_of_var[var] = column
        return var

    def null_flag(self, column: Column) -> BVar:
        flag = self.null_flag_of_column.get(column)
        if flag is None:
            flag = BVar(f"{column.qualified}#null")
            self.null_flag_of_column[column] = flag
        return flag

    def encode_literal(self, lit: Lit) -> Fraction:
        if lit.ltype == DATE:
            assert isinstance(lit.value, _dt.date)
            return Fraction(dates.date_to_days(lit.value, self.date_origin))
        if lit.ltype == TIMESTAMP:
            assert isinstance(lit.value, _dt.datetime)
            return Fraction(dates.timestamp_to_seconds(lit.value, self.ts_origin))
        value = lit.value
        assert isinstance(value, (int, Fraction))
        return Fraction(value)

    def decode_value(self, value: Fraction, column: Column):
        """Inverse of the column encoding, for rendering models/samples."""
        if column.ctype == DATE:
            return dates.days_to_date(int(value), self.date_origin)
        if column.ctype == TIMESTAMP:
            return dates.seconds_to_timestamp(int(value), self.ts_origin)
        if column.ctype == INTEGER:
            return int(value)
        return value

    # ------------------------------------------------------------------
    # Non-linear packing
    # ------------------------------------------------------------------
    def packed_var(self, node: Arith) -> Var:
        key = repr(node)
        var = self._packed.get(key)
        if var is None:
            var = Var(f"__packed{len(self._packed)}::{key}", _column_sort(node.etype))
            self._packed[key] = var
            self.packed_expr_of_var[var] = node
            self._packed_columns[var] = node.columns()
        return var

    def note_direct_columns(self, columns: set[Column]) -> None:
        self._direct_columns |= columns

    def validate_packing(self) -> None:
        """Section 5.2: packing is only sound when the packed columns do
        not occur elsewhere in the predicate."""
        for var, cols in self._packed_columns.items():
            overlap = cols & self._direct_columns
            if overlap:
                raise UnsupportedPredicateError(
                    "non-linear term "
                    f"{self.packed_expr_of_var[var]!r} shares columns "
                    f"{sorted(c.qualified for c in overlap)} with the rest "
                    "of the predicate; Sia cannot encode this"
                )
            for other_var, other_cols in self._packed_columns.items():
                if other_var is not var and cols & other_cols:
                    raise UnsupportedPredicateError(
                        "two non-linear terms share columns; Sia cannot encode this"
                    )


# ----------------------------------------------------------------------
# Expression lowering
# ----------------------------------------------------------------------
def linearize_expr(expr: Expr, ctx: LinearizationContext) -> LinExpr:
    """Lower an expression to a linear term over SMT variables."""
    if isinstance(expr, Lit):
        return LinExpr.const_expr(ctx.encode_literal(expr))
    if isinstance(expr, Col):
        ctx.note_direct_columns({expr.column})
        return LinExpr.var(ctx.var(expr.column))
    if isinstance(expr, Arith):
        if expr.op in ("+", "-"):
            left = linearize_expr(expr.left, ctx)
            right = linearize_expr(expr.right, ctx)
            return left + right if expr.op == "+" else left - right
        return _linearize_mul_div(expr, ctx)
    raise UnsupportedPredicateError(f"cannot lower expression {expr!r}")


def _linearize_mul_div(expr: Arith, ctx: LinearizationContext) -> LinExpr:
    left_cols = expr.left.columns()
    right_cols = expr.right.columns()
    if expr.op == "*":
        if not left_cols:
            scalar = linearize_expr(expr.left, ctx)
            if not scalar.is_constant:
                raise UnsupportedPredicateError(f"non-constant scale in {expr!r}")
            return linearize_expr(expr.right, ctx) * scalar.const
        if not right_cols:
            scalar = linearize_expr(expr.right, ctx)
            if not scalar.is_constant:
                raise UnsupportedPredicateError(f"non-constant scale in {expr!r}")
            return linearize_expr(expr.left, ctx) * scalar.const
    else:  # division
        if not right_cols:
            scalar = linearize_expr(expr.right, ctx)
            if not scalar.is_constant or scalar.const == 0:
                raise UnsupportedPredicateError(f"bad divisor in {expr!r}")
            return linearize_expr(expr.left, ctx) / scalar.const
        if not left_cols:
            # constant / column-expression: non-linear, pack below.
            pass
    # Both sides involve columns: pack the whole node into one variable
    # (section 5.2's workaround for non-linear integer arithmetic).
    return LinExpr.var(ctx.packed_var(expr))


# ----------------------------------------------------------------------
# Predicate lowering (two-valued; the 3VL lift lives in encode.py)
# ----------------------------------------------------------------------
def lower_predicate(
    pred: Pred,
    ctx: LinearizationContext | None = None,
) -> tuple[Formula, LinearizationContext]:
    """Two-valued SMT formula for a predicate.

    Used for sample generation and counter-example mining, where the
    paper's single-variable (non-NULL) encoding applies.
    """
    if ctx is None:
        ctx = LinearizationContext.for_predicate(pred)
    formula = _lower(pred, ctx)
    ctx.validate_packing()
    return formula, ctx


def _lower(pred: Pred, ctx: LinearizationContext) -> Formula:
    if pred is TRUE_PRED:
        return TRUE
    if pred is FALSE_PRED:
        return FALSE
    if isinstance(pred, Comparison):
        return compare(
            linearize_expr(pred.left, ctx), pred.op, linearize_expr(pred.right, ctx)
        )
    if isinstance(pred, PAnd):
        return conj([_lower(arg, ctx) for arg in pred.args])
    if isinstance(pred, POr):
        return disj([_lower(arg, ctx) for arg in pred.args])
    if isinstance(pred, PNot):
        return negate(_lower(pred.arg, ctx))
    if isinstance(pred, IsNull):
        raise UnsupportedPredicateError(
            "IS NULL predicates have no two-valued lowering; "
            "they are only supported by the engine evaluator"
        )
    raise UnsupportedPredicateError(f"cannot lower predicate {pred!r}")


def _walk_literals(pred: Pred):
    if isinstance(pred, Comparison):
        yield from _walk_expr_literals(pred.left)
        yield from _walk_expr_literals(pred.right)
    elif isinstance(pred, (PAnd, POr)):
        for arg in pred.args:
            yield from _walk_literals(arg)
    elif isinstance(pred, PNot):
        yield from _walk_literals(pred.arg)
    elif isinstance(pred, IsNull):
        yield from _walk_expr_literals(pred.expr)


def _walk_expr_literals(expr: Expr):
    if isinstance(expr, Lit):
        yield expr
    elif isinstance(expr, Arith):
        yield from _walk_expr_literals(expr.left)
        yield from _walk_expr_literals(expr.right)
