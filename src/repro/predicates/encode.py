"""Three-valued-logic encoding of predicates (section 5.2).

SQL predicates evaluate to TRUE, FALSE or NULL.  A tuple passes a
filter only when the predicate evaluates to TRUE, so validity of a
synthesized predicate must be checked under the 3VL lift:

* ``T(p)`` -- the formula that holds exactly when p evaluates to TRUE,
* ``F(p)`` -- exactly when p evaluates to FALSE.

Each column is represented by a pair of symbolic variables (the paper
cites the encoding of Zhou et al., PVLDB'19): the value variable from
:class:`~repro.predicates.normalize.LinearizationContext` plus a
boolean NULL flag.  An atom is TRUE/FALSE only when every column it
touches is non-NULL; logical connectives follow Kleene logic.

``Verify`` checks ``T(p) and not T(p1)``: note the outer negation, not
``F(p1)`` -- a tuple where ``p1`` evaluates to NULL is still filtered
out, so it must be covered by the validity check.
"""

from __future__ import annotations

from ..errors import UnsupportedPredicateError
from ..smt import Formula, Not, compare, conj, disj
from ..smt.formula import FALSE, TRUE
from .expr import (
    Comparison,
    FALSE_PRED,
    IsNull,
    PAnd,
    PNot,
    POr,
    Pred,
    TRUE_PRED,
)
from .normalize import LinearizationContext, linearize_expr


def truth_formula(pred: Pred, ctx: LinearizationContext) -> Formula:
    """Formula holding iff ``pred`` evaluates to TRUE under 3VL."""
    return _lift(pred, ctx, want_true=True)


def falsity_formula(pred: Pred, ctx: LinearizationContext) -> Formula:
    """Formula holding iff ``pred`` evaluates to FALSE under 3VL."""
    return _lift(pred, ctx, want_true=False)


def _lift(pred: Pred, ctx: LinearizationContext, *, want_true: bool) -> Formula:
    if pred is TRUE_PRED:
        return TRUE if want_true else FALSE
    if pred is FALSE_PRED:
        return FALSE if want_true else TRUE
    if isinstance(pred, Comparison):
        atom = compare(
            linearize_expr(pred.left, ctx), pred.op, linearize_expr(pred.right, ctx)
        )
        non_null = conj(
            [Not(ctx.null_flag(col)) for col in sorted(pred.columns())]
        )
        from ..smt import negate

        body = atom if want_true else negate(atom)
        return conj([non_null, body])
    if isinstance(pred, PAnd):
        parts = [_lift(arg, ctx, want_true=want_true) for arg in pred.args]
        # TRUE needs all conjuncts TRUE; FALSE needs any conjunct FALSE.
        return conj(parts) if want_true else disj(parts)
    if isinstance(pred, POr):
        parts = [_lift(arg, ctx, want_true=want_true) for arg in pred.args]
        return disj(parts) if want_true else conj(parts)
    if isinstance(pred, PNot):
        return _lift(pred.arg, ctx, want_true=not want_true)
    if isinstance(pred, IsNull):
        flags = [ctx.null_flag(col) for col in sorted(pred.columns())]
        any_null = disj(flags)
        from ..smt import negate

        is_null_true = any_null if not pred.negated else negate(any_null)
        # IS NULL never evaluates to NULL itself.
        return is_null_true if want_true else negate(is_null_true)
    raise UnsupportedPredicateError(f"cannot lift predicate {pred!r}")
