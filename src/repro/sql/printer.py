"""Rendering of the typed IR back to SQL text.

Used by the rewriter to emit the rewritten query (original predicate
plus the synthesized one) and by the examples/benchmarks for display.
"""

from __future__ import annotations

import datetime as _dt
from fractions import Fraction

from ..errors import TypeCheckError
from ..predicates import (
    DATE,
    FALSE_PRED,
    TIMESTAMP,
    TRUE_PRED,
    Arith,
    Col,
    Comparison,
    Expr,
    IsNull,
    Lit,
    PAnd,
    PNot,
    POr,
    Pred,
)
from .binder import BoundQuery

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}


def render_expr(expr: Expr, *, parent_prec: int = 0) -> str:
    """SQL text of an expression (minimal parenthesisation)."""
    if isinstance(expr, Col):
        return expr.column.qualified
    if isinstance(expr, Lit):
        return render_literal(expr)
    if isinstance(expr, Arith):
        prec = _PRECEDENCE[expr.op]
        left = render_expr(expr.left, parent_prec=prec)
        # Right side of - and / needs the tighter context.
        right = render_expr(
            expr.right, parent_prec=prec + (1 if expr.op in ("-", "/") else 0)
        )
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeCheckError(f"cannot render expression {expr!r}")


def render_literal(lit: Lit) -> str:
    """SQL literal text (dates as ``DATE '...'`` etc.)."""
    if lit.ltype == DATE:
        assert isinstance(lit.value, _dt.date)
        return f"DATE '{lit.value.isoformat()}'"
    if lit.ltype == TIMESTAMP:
        assert isinstance(lit.value, _dt.datetime)
        return f"TIMESTAMP '{lit.value.isoformat(sep=' ')}'"
    value = lit.value
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return repr(float(value))
    return str(value)


def render_pred(pred: Pred, *, parent: str = "") -> str:
    """SQL text of a predicate."""
    if pred is TRUE_PRED:
        return "TRUE"
    if pred is FALSE_PRED:
        return "FALSE"
    if isinstance(pred, Comparison):
        op = "<>" if pred.op == "!=" else pred.op
        return f"{render_expr(pred.left)} {op} {render_expr(pred.right)}"
    if isinstance(pred, PAnd):
        text = " AND ".join(render_pred(arg, parent="AND") for arg in pred.args)
        return f"({text})" if parent == "OR" or parent == "NOT" else text
    if isinstance(pred, POr):
        text = " OR ".join(render_pred(arg, parent="OR") for arg in pred.args)
        return f"({text})" if parent in ("AND", "NOT") else text
    if isinstance(pred, PNot):
        return f"NOT ({render_pred(pred.arg)})"
    if isinstance(pred, IsNull):
        middle = "IS NOT NULL" if pred.negated else "IS NULL"
        return f"{render_expr(pred.expr)} {middle}"
    raise TypeCheckError(f"cannot render predicate {pred!r}")


def render_query(query: BoundQuery) -> str:
    """Canonical SQL text of a bound query."""
    items: list[str] = []
    if query.projections is None and not query.aggregates:
        items.append("*")
    else:
        items.extend(col.qualified for col in (query.projections or []))
        for func, column in query.aggregates:
            arg = "*" if column is None else column.qualified
            items.append(f"{func}({arg})")
    sql = f"SELECT {', '.join(items)} FROM {', '.join(query.tables)}"
    if query.where is not TRUE_PRED:
        sql += f" WHERE {render_pred(query.where)}"
    if query.group_by:
        sql += " GROUP BY " + ", ".join(col.qualified for col in query.group_by)
    if query.order_by:
        sql += " ORDER BY " + ", ".join(
            f"{col.qualified}{'' if asc else ' DESC'}" for col, asc in query.order_by
        )
    if query.limit is not None:
        sql += f" LIMIT {query.limit}"
    return sql
