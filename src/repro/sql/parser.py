"""Recursive-descent parser for the SELECT-FROM-WHERE fragment.

Grammar (precedence from loosest to tightest)::

    select     := SELECT (STAR | name (, name)*) FROM table_ref (, table_ref)*
                  (JOIN table_ref ON or_expr)* (WHERE or_expr)?
                  (GROUP BY name (, name)*)? (;)?
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | bool_prim
    bool_prim  := additive (cmp additive | IS [NOT] NULL |
                  [NOT] BETWEEN additive AND additive)?
                | TRUE | FALSE
    additive   := multiplicative ((+|-) multiplicative)*
    multiplicative := unary ((*|/) unary)*
    unary      := - unary | primary
    primary    := literal | name | ( or_expr )

Parenthesised boolean expressions are supported by backtracking: a
``(`` may open either an arithmetic group or a boolean group.
"""

from __future__ import annotations

from ..errors import ParseError
from . import ast
from .lexer import EOF, IDENT, KEYWORD, NUMBER, OP, PUNCT, STRING, Token, tokenize

_COMPARE_OPS = ("<=", ">=", "<>", "!=", "=", "<", ">")


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, sql: str) -> None:
        self.tokens = tokenize(sql)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        token = self.advance()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word}, found {token.text!r}", token.pos)
        return token

    def expect_punct(self, text: str) -> Token:
        token = self.advance()
        if token.kind != PUNCT or token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.pos)
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def accept_punct(self, text: str) -> bool:
        token = self.peek()
        if token.kind == PUNCT and token.text == text:
            self.advance()
            return True
        return False

    def accept_op(self, *ops: str) -> str | None:
        token = self.peek()
        if token.kind == OP and token.text in ops:
            self.advance()
            return token.text
        return None

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_select(self) -> ast.SelectStmt:
        self.expect_keyword("SELECT")
        projections: tuple[ast.Name | ast.FuncCall, ...] | None
        if self.accept_op("*"):
            projections = None
        else:
            items = [self._parse_select_item()]
            while self.accept_punct(","):
                items.append(self._parse_select_item())
            projections = tuple(items)
        self.expect_keyword("FROM")
        tables = [self._parse_table_ref()]
        join_conditions: list[ast.Node] = []
        while True:
            if self.accept_punct(","):
                tables.append(self._parse_table_ref())
            elif self.peek().is_keyword("JOIN") or self.peek().is_keyword("INNER"):
                self.accept_keyword("INNER")
                self.expect_keyword("JOIN")
                tables.append(self._parse_table_ref())
                self.expect_keyword("ON")
                join_conditions.append(self.parse_or_expr())
            else:
                break
        where: ast.Node | None = None
        if self.accept_keyword("WHERE"):
            where = self.parse_or_expr()
        group_by: tuple[ast.Name, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            names = [self._parse_name()]
            while self.accept_punct(","):
                names.append(self._parse_name())
            group_by = tuple(names)
        order_by: tuple[ast.OrderItem, ...] = ()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            items = [self._parse_order_item()]
            while self.accept_punct(","):
                items.append(self._parse_order_item())
            order_by = tuple(items)
        limit: int | None = None
        if self.accept_keyword("LIMIT"):
            token = self.advance()
            if token.kind != NUMBER or "." in token.text:
                raise ParseError("expected an integer after LIMIT", token.pos)
            limit = int(token.text)
        self.accept_punct(";")
        token = self.peek()
        if token.kind != EOF:
            raise ParseError(f"unexpected trailing input {token.text!r}", token.pos)
        if join_conditions:
            parts = list(join_conditions)
            if where is not None:
                parts.append(where)
            where = ast.AndExpr(tuple(parts)) if len(parts) > 1 else parts[0]
        return ast.SelectStmt(
            tables=tuple(tables),
            projections=projections,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
        )

    _AGG_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    def _parse_select_item(self) -> "ast.Name | ast.FuncCall":
        token = self.peek()
        if token.kind == KEYWORD and token.text in self._AGG_FUNCS:
            self.advance()
            self.expect_punct("(")
            if token.text == "COUNT" and self.accept_op("*"):
                self.expect_punct(")")
                return ast.FuncCall("COUNT", None)
            arg = self._parse_name()
            self.expect_punct(")")
            return ast.FuncCall(token.text, arg)
        return self._parse_name()

    def _parse_order_item(self) -> ast.OrderItem:
        name = self._parse_name()
        if self.accept_keyword("DESC"):
            return ast.OrderItem(name, ascending=False)
        self.accept_keyword("ASC")
        return ast.OrderItem(name, ascending=True)

    def _parse_table_ref(self) -> ast.TableRef:
        token = self.advance()
        if token.kind != IDENT:
            raise ParseError(f"expected table name, found {token.text!r}", token.pos)
        alias: str | None = None
        if self.accept_keyword("AS"):
            alias_token = self.advance()
            if alias_token.kind != IDENT:
                raise ParseError("expected alias name", alias_token.pos)
            alias = alias_token.text
        elif self.peek().kind == IDENT:
            alias = self.advance().text
        return ast.TableRef(token.text, alias)

    def _parse_name(self) -> ast.Name:
        token = self.advance()
        if token.kind != IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.pos)
        parts = [token.text]
        while self.accept_punct("."):
            part = self.advance()
            if part.kind != IDENT:
                raise ParseError("expected identifier after '.'", part.pos)
            parts.append(part.text)
        return ast.Name(tuple(parts))

    # ------------------------------------------------------------------
    # Boolean expressions
    # ------------------------------------------------------------------
    def parse_or_expr(self) -> ast.Node:
        args = [self.parse_and_expr()]
        while self.accept_keyword("OR"):
            args.append(self.parse_and_expr())
        return args[0] if len(args) == 1 else ast.OrExpr(tuple(args))

    def parse_and_expr(self) -> ast.Node:
        args = [self.parse_not_expr()]
        while self.accept_keyword("AND"):
            args.append(self.parse_not_expr())
        return args[0] if len(args) == 1 else ast.AndExpr(tuple(args))

    def parse_not_expr(self) -> ast.Node:
        if self.accept_keyword("NOT"):
            return ast.NotExpr(self.parse_not_expr())
        return self.parse_bool_primary()

    def parse_bool_primary(self) -> ast.Node:
        if self.peek().is_keyword("TRUE"):
            self.advance()
            return ast.BoolLit(True)
        if self.peek().is_keyword("FALSE"):
            self.advance()
            return ast.BoolLit(False)
        # A '(' could open a boolean group: try that first, fall back to
        # arithmetic on failure.
        if self.peek().kind == PUNCT and self.peek().text == "(":
            saved = self.pos
            try:
                self.advance()
                inner = self.parse_or_expr()
                self.expect_punct(")")
                if self._looks_boolean(inner) and not self._arith_continues():
                    return inner
            except ParseError:
                pass
            self.pos = saved
        left = self.parse_additive()
        token = self.peek()
        if token.kind == OP and token.text in _COMPARE_OPS:
            self.advance()
            right = self.parse_additive()
            return ast.CompareExpr(left, token.text, right)
        if token.is_keyword("IS"):
            self.advance()
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNullExpr(left, negated)
        if token.is_keyword("BETWEEN") or (
            token.is_keyword("NOT") and self.peek(1).is_keyword("BETWEEN")
        ):
            negated = self.accept_keyword("NOT")
            self.expect_keyword("BETWEEN")
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return ast.BetweenExpr(left, low, high, negated)
        raise ParseError(
            f"expected comparison after expression, found {token.text!r}", token.pos
        )

    @staticmethod
    def _looks_boolean(node: ast.Node) -> bool:
        return isinstance(
            node,
            (
                ast.CompareExpr,
                ast.AndExpr,
                ast.OrExpr,
                ast.NotExpr,
                ast.IsNullExpr,
                ast.BetweenExpr,
                ast.BoolLit,
            ),
        )

    def _arith_continues(self) -> bool:
        """After a closing ')', does an arithmetic operator follow?"""
        token = self.peek()
        return token.kind == OP and token.text in ("+", "-", "*", "/")

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def parse_additive(self) -> ast.Node:
        node = self.parse_multiplicative()
        while True:
            op = self.accept_op("+", "-")
            if op is None:
                return node
            node = ast.BinOp(op, node, self.parse_multiplicative())

    def parse_multiplicative(self) -> ast.Node:
        node = self.parse_unary()
        while True:
            op = self.accept_op("*", "/")
            if op is None:
                return node
            node = ast.BinOp(op, node, self.parse_unary())

    def parse_unary(self) -> ast.Node:
        if self.accept_op("-"):
            return ast.Neg(self.parse_unary())
        if self.accept_op("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> ast.Node:
        token = self.peek()
        if token.kind == NUMBER:
            self.advance()
            return ast.NumberLit(token.text)
        if token.kind == STRING:
            self.advance()
            return ast.StringLit(token.text)
        if token.is_keyword("DATE"):
            self.advance()
            value = self.advance()
            if value.kind != STRING:
                raise ParseError("expected string after DATE", value.pos)
            return ast.DateLit(value.text)
        if token.is_keyword("TIMESTAMP"):
            self.advance()
            value = self.advance()
            if value.kind != STRING:
                raise ParseError("expected string after TIMESTAMP", value.pos)
            return ast.TimestampLit(value.text)
        if token.is_keyword("INTERVAL"):
            self.advance()
            amount_token = self.advance()
            if amount_token.kind not in (STRING, NUMBER):
                raise ParseError("expected amount after INTERVAL", amount_token.pos)
            unit_token = self.advance()
            unit = unit_token.text.rstrip("S") if unit_token.kind == KEYWORD else ""
            if unit not in ("DAY", "SECOND"):
                raise ParseError("expected DAY or SECOND unit", unit_token.pos)
            try:
                amount = int(amount_token.text)
            except ValueError as exc:
                raise ParseError(
                    f"bad interval amount {amount_token.text!r}", amount_token.pos
                ) from exc
            return ast.IntervalLit(amount, unit)
        if token.kind == IDENT:
            return self._parse_name()
        if self.accept_punct("("):
            inner = self.parse_additive()
            self.expect_punct(")")
            return inner
        raise ParseError(f"unexpected token {token.text!r}", token.pos)


def parse_select(sql: str) -> ast.SelectStmt:
    """Parse a single SELECT statement."""
    return Parser(sql).parse_select()


def parse_predicate(sql: str) -> ast.Node:
    """Parse a standalone boolean expression (e.g. a WHERE body)."""
    parser = Parser(sql)
    node = parser.parse_or_expr()
    parser.accept_punct(";")
    token = parser.peek()
    if token.kind != EOF:
        raise ParseError(f"unexpected trailing input {token.text!r}", token.pos)
    return node
