"""Tokenizer for the SQL fragment Sia targets.

Keywords are case-insensitive; identifiers keep their original case but
compare case-insensitively downstream.  String literals use single
quotes with ``''`` escaping.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParseError

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "AS",
    "IS",
    "NULL",
    "DATE",
    "TIMESTAMP",
    "INTERVAL",
    "DAY",
    "DAYS",
    "SECOND",
    "SECONDS",
    "JOIN",
    "INNER",
    "ON",
    "GROUP",
    "ORDER",
    "BY",
    "LIMIT",
    "BETWEEN",
    "TRUE",
    "FALSE",
    "ASC",
    "DESC",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
}

# Token kinds
IDENT = "IDENT"
KEYWORD = "KEYWORD"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
PUNCT = "PUNCT"
EOF = "EOF"

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCTUATION = ("(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    pos: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == KEYWORD and self.text == word

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text}"


def tokenize(sql: str) -> list[Token]:
    """Split SQL text into tokens; raises ParseError on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, start))
            else:
                tokens.append(Token(IDENT, word, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            saw_dot = False
            while i < n and (sql[i].isdigit() or (sql[i] == "." and not saw_dot)):
                if sql[i] == ".":
                    # A dot not followed by a digit is a qualifier dot.
                    if i + 1 >= n or not sql[i + 1].isdigit():
                        break
                    saw_dot = True
                i += 1
            tokens.append(Token(NUMBER, sql[start:i], start))
            continue
        if ch == "'":
            start = i
            i += 1
            chunks: list[str] = []
            while True:
                if i >= n:
                    raise ParseError("unterminated string literal", start)
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":
                        chunks.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                chunks.append(sql[i])
                i += 1
            tokens.append(Token(STRING, "".join(chunks), start))
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(OP, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(PUNCT, ch, i))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(EOF, "", n))
    return tokens
