"""SQL frontend: lexer, parser, binder and printer.

Replaces the Calcite frontend of the original system (DESIGN.md,
substitution table): Sia only needs the WHERE predicate and table
metadata of a SELECT-FROM-WHERE query, which this fragment covers.
"""

from .ast import SelectStmt
from .binder import (
    Binder,
    BoundQuery,
    Schema,
    bind_select,
    parse_bound_predicate,
    parse_query,
)
from .lexer import Token, tokenize
from .parser import Parser, parse_predicate, parse_select
from .printer import render_expr, render_literal, render_pred, render_query

__all__ = [
    "Binder",
    "BoundQuery",
    "Parser",
    "Schema",
    "SelectStmt",
    "Token",
    "bind_select",
    "parse_bound_predicate",
    "parse_predicate",
    "parse_query",
    "parse_select",
    "render_expr",
    "render_literal",
    "render_pred",
    "render_query",
    "tokenize",
]
