"""Name resolution and typing: raw AST -> typed predicate IR.

The binder needs a schema: ``{table: {column: ctype}}`` with the types
of :mod:`repro.predicates.expr`.  String literals are typed from
context (a string compared against a DATE column becomes a DATE
literal), matching how the paper's TPC-H queries write dates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..errors import CatalogError, TypeCheckError
from ..predicates import (
    DATE,
    DOUBLE,
    FALSE_PRED,
    INTEGER,
    TIMESTAMP,
    TRUE_PRED,
    Arith,
    Col,
    Column,
    Comparison,
    Expr,
    IsNull,
    Lit,
    Pred,
    pand,
    por,
)
from . import ast

Schema = dict[str, dict[str, str]]


@dataclass
class BoundQuery:
    """A typed SELECT: resolved tables, projections, WHERE and the
    optional aggregation/ordering clauses."""

    tables: list[str]
    where: Pred
    projections: list[Column] | None = None  # None = SELECT *
    group_by: list[Column] = field(default_factory=list)
    # Aggregates from the SELECT list: (func, column or None for COUNT(*)).
    aggregates: list[tuple[str, Column | None]] = field(default_factory=list)
    order_by: list[tuple[Column, bool]] = field(default_factory=list)  # (col, asc)
    limit: int | None = None

    def columns_of(self, table: str) -> set[Column]:
        return {col for col in self.where.columns() if col.table == table}


@dataclass(frozen=True)
class _PendingString:
    """A string literal whose type is not yet known."""

    value: str


class Binder:
    """Resolves and types a raw AST against a schema."""

    def __init__(self, schema: Schema) -> None:
        self.schema = {
            table.lower(): {col.lower(): ctype for col, ctype in cols.items()}
            for table, cols in schema.items()
        }

    # ------------------------------------------------------------------
    def bind_select(self, stmt: ast.SelectStmt) -> BoundQuery:
        scope: dict[str, str] = {}  # alias/table -> table
        tables: list[str] = []
        for ref in stmt.tables:
            table = ref.name.lower()
            if table not in self.schema:
                raise CatalogError(f"unknown table {ref.name!r}")
            tables.append(table)
            scope[table] = table
            if ref.alias:
                scope[ref.alias.lower()] = table
        where = TRUE_PRED if stmt.where is None else self.bind_predicate(stmt.where, scope)
        projections: list[Column] | None = None
        aggregates: list[tuple[str, Column | None]] = []
        if stmt.projections is not None:
            projections = []
            for item in stmt.projections:
                if isinstance(item, ast.FuncCall):
                    arg = (
                        None
                        if item.arg is None
                        else self._resolve_column(item.arg, scope)
                    )
                    aggregates.append((item.func, arg))
                else:
                    projections.append(self._resolve_column(item, scope))
        group_by = [self._resolve_column(name, scope) for name in stmt.group_by]
        if aggregates and projections:
            stray = [col for col in projections if col not in group_by]
            if stray:
                raise TypeCheckError(
                    "non-aggregated columns must appear in GROUP BY: "
                    + ", ".join(col.qualified for col in stray)
                )
        order_by = [
            (self._resolve_column(item.name, scope), item.ascending)
            for item in stmt.order_by
        ]
        return BoundQuery(
            tables=tables,
            where=where,
            projections=projections,
            group_by=group_by,
            aggregates=aggregates,
            order_by=order_by,
            limit=stmt.limit,
        )

    # ------------------------------------------------------------------
    def bind_predicate(self, node: ast.Node, scope: dict[str, str]) -> Pred:
        if isinstance(node, ast.BoolLit):
            return TRUE_PRED if node.value else FALSE_PRED
        if isinstance(node, ast.AndExpr):
            return pand([self.bind_predicate(arg, scope) for arg in node.args])
        if isinstance(node, ast.OrExpr):
            return por([self.bind_predicate(arg, scope) for arg in node.args])
        if isinstance(node, ast.NotExpr):
            inner = self.bind_predicate(node.arg, scope)
            if isinstance(inner, IsNull):
                return IsNull(inner.expr, negated=not inner.negated)
            from ..predicates import PNot

            return PNot(inner)
        if isinstance(node, ast.CompareExpr):
            left = self._bind_expr(node.left, scope)
            right = self._bind_expr(node.right, scope)
            left, right = self._coerce_pair(left, right)
            return Comparison(left, node.op, right)
        if isinstance(node, ast.BetweenExpr):
            subject = self._bind_expr(node.subject, scope)
            low = self._bind_expr(node.low, scope)
            high = self._bind_expr(node.high, scope)
            s1, low = self._coerce_pair(subject, low)
            s2, high = self._coerce_pair(subject, high)
            both = pand([Comparison(s1, ">=", low), Comparison(s2, "<=", high)])
            if node.negated:
                from ..predicates import PNot

                return PNot(both)
            return both
        if isinstance(node, ast.IsNullExpr):
            expr = self._bind_expr(node.arg, scope)
            if isinstance(expr, _PendingString):
                raise TypeCheckError("IS NULL on a bare string literal")
            return IsNull(expr, node.negated)
        raise TypeCheckError(f"expected a boolean expression, got {node!r}")

    # ------------------------------------------------------------------
    def _bind_expr(self, node: ast.Node, scope: dict[str, str]):
        if isinstance(node, ast.Name):
            return Col(self._resolve_column(node, scope))
        if isinstance(node, ast.NumberLit):
            if "." in node.text:
                return Lit(Fraction(node.text), DOUBLE)
            return Lit.integer(int(node.text))
        if isinstance(node, ast.StringLit):
            return _PendingString(node.value)
        if isinstance(node, ast.DateLit):
            return Lit.date(node.value)
        if isinstance(node, ast.TimestampLit):
            return Lit.timestamp(node.value.replace(" ", "T"))
        if isinstance(node, ast.IntervalLit):
            return Lit.integer(node.amount)
        if isinstance(node, ast.Neg):
            inner = self._bind_expr(node.arg, scope)
            if isinstance(inner, Lit) and inner.ltype in (INTEGER, DOUBLE):
                return Lit(-inner.value, inner.ltype)
            if isinstance(inner, _PendingString):
                raise TypeCheckError("cannot negate a string literal")
            return Arith("-", Lit.integer(0), inner)
        if isinstance(node, ast.BinOp):
            left = self._bind_expr(node.left, scope)
            right = self._bind_expr(node.right, scope)
            left, right = self._coerce_pair(left, right)
            return Arith(node.op, left, right)
        raise TypeCheckError(f"expected an arithmetic expression, got {node!r}")

    def _coerce_pair(self, left, right) -> tuple[Expr, Expr]:
        """Resolve pending string literals against the other side's type."""
        if isinstance(left, _PendingString) and isinstance(right, _PendingString):
            raise TypeCheckError("cannot type a comparison of two string literals")
        if isinstance(left, _PendingString):
            return self._coerce_string(left, right.etype), right
        if isinstance(right, _PendingString):
            return left, self._coerce_string(right, left.etype)
        return left, right

    @staticmethod
    def _coerce_string(pending: _PendingString, target: str) -> Lit:
        if target == DATE:
            return Lit.date(pending.value)
        if target == TIMESTAMP:
            return Lit.timestamp(pending.value.replace(" ", "T"))
        raise TypeCheckError(
            f"string literal {pending.value!r} used where {target} is required "
            "(TEXT columns are unsupported)"
        )

    def _resolve_column(self, name: ast.Name, scope: dict[str, str]) -> Column:
        parts = tuple(part.lower() for part in name.parts)
        if len(parts) == 2:
            qualifier, col = parts
            table = scope.get(qualifier)
            if table is None:
                raise CatalogError(f"unknown table or alias {qualifier!r}")
            ctype = self.schema[table].get(col)
            if ctype is None:
                raise CatalogError(f"unknown column {qualifier}.{col}")
            return Column(table, col, ctype)
        if len(parts) == 1:
            col = parts[0]
            matches = [
                table
                for table in dict.fromkeys(scope.values())
                if col in self.schema[table]
            ]
            if not matches:
                raise CatalogError(f"unknown column {col!r}")
            if len(matches) > 1:
                raise CatalogError(f"ambiguous column {col!r}: in {matches}")
            return Column(matches[0], col, self.schema[matches[0]][col])
        raise CatalogError(f"cannot resolve name {'.'.join(name.parts)!r}")


def bind_select(stmt: ast.SelectStmt, schema: Schema) -> BoundQuery:
    """Bind a parsed SELECT against ``schema``."""
    return Binder(schema).bind_select(stmt)


def parse_query(sql: str, schema: Schema) -> BoundQuery:
    """Parse + bind in one step (the usual entry point)."""
    from .parser import parse_select

    return bind_select(parse_select(sql), schema)


def parse_bound_predicate(sql: str, schema: Schema, tables: list[str]) -> Pred:
    """Parse a standalone predicate against the given tables' scope."""
    from .parser import parse_predicate

    binder = Binder(schema)
    scope = {}
    for table in tables:
        lowered = table.lower()
        if lowered not in binder.schema:
            raise CatalogError(f"unknown table {table!r}")
        scope[lowered] = lowered
    return binder.bind_predicate(parse_predicate(sql), scope)
