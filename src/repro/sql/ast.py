"""Raw (unbound) SQL AST produced by the parser.

Names are unresolved: the binder (:mod:`repro.sql.binder`) turns this
into the typed predicate IR of :mod:`repro.predicates` with the help of
a schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Node:
    """Base class of raw AST nodes."""

    __slots__ = ()


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Name(Node):
    """A possibly-qualified column reference (``t.c`` or ``c``)."""

    parts: tuple[str, ...]

    def __repr__(self) -> str:
        return ".".join(self.parts)


@dataclass(frozen=True)
class NumberLit(Node):
    text: str  # preserved verbatim; the binder decides int vs decimal


@dataclass(frozen=True)
class StringLit(Node):
    value: str


@dataclass(frozen=True)
class DateLit(Node):
    """``DATE 'YYYY-MM-DD'``."""

    value: str


@dataclass(frozen=True)
class TimestampLit(Node):
    """``TIMESTAMP 'YYYY-MM-DD HH:MM:SS'``."""

    value: str


@dataclass(frozen=True)
class IntervalLit(Node):
    """``INTERVAL 'n' DAY`` (days) or ``... SECOND`` (seconds)."""

    amount: int
    unit: str  # "DAY" or "SECOND"


@dataclass(frozen=True)
class BinOp(Node):
    op: str  # + - * /
    left: Node
    right: Node


@dataclass(frozen=True)
class Neg(Node):
    arg: Node


# ----------------------------------------------------------------------
# Boolean expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompareExpr(Node):
    left: Node
    op: str
    right: Node


@dataclass(frozen=True)
class BetweenExpr(Node):
    subject: Node
    low: Node
    high: Node
    negated: bool = False


@dataclass(frozen=True)
class AndExpr(Node):
    args: tuple[Node, ...]


@dataclass(frozen=True)
class OrExpr(Node):
    args: tuple[Node, ...]


@dataclass(frozen=True)
class NotExpr(Node):
    arg: Node


@dataclass(frozen=True)
class IsNullExpr(Node):
    arg: Node
    negated: bool = False


@dataclass(frozen=True)
class BoolLit(Node):
    value: bool


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TableRef(Node):
    name: str
    alias: str | None = None


@dataclass(frozen=True)
class FuncCall(Node):
    """An aggregate in the SELECT list: COUNT(*) / SUM(col) / ..."""

    func: str  # COUNT, SUM, AVG, MIN, MAX
    arg: Name | None = None  # None for COUNT(*)


@dataclass(frozen=True)
class OrderItem(Node):
    name: Name
    ascending: bool = True


@dataclass(frozen=True)
class SelectStmt(Node):
    """``SELECT items FROM tables [JOIN ...] WHERE where`` plus
    optional GROUP BY / ORDER BY / LIMIT.

    ``projections`` is None for ``SELECT *``; items may be plain column
    names or aggregate calls.  Explicit joins are folded into
    ``tables`` with their ON conditions appended to ``where`` by the
    parser (the paper's queries use comma joins).
    """

    tables: tuple[TableRef, ...]
    projections: tuple["Name | FuncCall", ...] | None = None
    where: Node | None = None
    group_by: tuple[Name, ...] = field(default=())
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: int | None = None
