"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParseError(ReproError):
    """Malformed SQL input."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class TypeCheckError(ReproError):
    """A predicate or expression violates the type rules of section 4.1."""


class UnsupportedPredicateError(ReproError):
    """The predicate falls outside the fragment Sia supports.

    Examples: TEXT-typed comparisons, or a non-linear product of
    columns that also occur elsewhere in the predicate (section 5.2's
    packing trick does not apply there).
    """


class SynthesisError(ReproError):
    """The synthesis pipeline failed in an unexpected way."""


class CatalogError(ReproError):
    """Unknown table or column, or a schema mismatch in the engine."""


class PlanError(ReproError):
    """A logical plan is malformed or cannot be executed."""
