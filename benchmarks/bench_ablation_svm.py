"""Ablation: hyperplane coefficient resolution (max_denominator).

The learned float hyperplane is snapped to an integer grid before
verification (DESIGN.md #3).  Too coarse a grid (8) distorts learned
directions; too fine a grid (512) inflates coefficients and slows the
integer theory reasoning.  The default (64) balances both.
"""

from dataclasses import replace
from statistics import mean
from time import perf_counter

from repro.bench import emit, format_table
from repro.core import SIA_DEFAULT, Synthesizer
from repro.tpch import generate_workload


def run_resolution(max_denominator: int, queries):
    config = replace(SIA_DEFAULT, max_denominator=max_denominator)
    synthesizer = Synthesizer(config)
    outcomes = []
    start = perf_counter()
    for wq in queries:
        lineitem_cols = sorted(
            c for c in wq.predicate.columns() if c.table == "lineitem"
        )
        for column in lineitem_cols:
            outcomes.append(synthesizer.synthesize(wq.predicate, {column}))
    return outcomes, (perf_counter() - start) * 1000.0


def test_ablation_svm_resolution(benchmark, once):
    queries = generate_workload(6, seed=3)

    def run():
        return {d: run_resolution(d, queries) for d in (8, 64, 512)}

    results = once(benchmark, run)
    rows = []
    for denominator, (outcomes, elapsed_ms) in results.items():
        valid = [o for o in outcomes if o.is_valid]
        optimal = [o for o in outcomes if o.is_optimal]
        iters = mean(o.iterations for o in valid) if valid else 0.0
        rows.append(
            [denominator, len(outcomes), len(valid), len(optimal), iters, elapsed_ms]
        )
    emit(
        "ablation_svm",
        format_table(
            ["max_denominator", "runs", "valid", "optimal", "avg iters", "total ms"],
            rows,
            title="Ablation: hyperplane coefficient resolution (DESIGN.md #3)",
        ),
    )
    by = {row[0]: row for row in rows}
    # The default resolution must synthesize at least as many valid
    # predicates as the coarse grid.
    assert by[64][2] >= by[8][2]
