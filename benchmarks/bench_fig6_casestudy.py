"""Figure 6: MaxCompute-style case study (synthetic substitution).

The production log is proprietary (DESIGN.md substitution table): we
regenerate the Figure 6 distributions over a synthetic population whose
structure matches the paper's classification -- syntax-based
prospective queries vs the symbolically relevant subset -- and report
execution time, CPU proxy (tuples) and memory proxy (peak bytes) per
class.  The paper's headline: most prospective queries are expensive
enough (74.63% over 10 s on production data) to justify synthesis time.
"""

from repro.bench import case_study_records, emit, fig6_rows, format_table


def test_fig6_case_study(benchmark, once):
    records = once(benchmark, case_study_records)
    rows, labels = fig6_rows(records)
    headers = ["class", "count", "avg ms", "avg tuples", "avg MB"] + labels
    prospective = [r for r in records if r.prospective]
    relevant = [r for r in records if r.symbolically_relevant]
    emit(
        "fig6",
        format_table(
            headers,
            rows,
            title="Figure 6: case-study metric distributions (synthetic "
            "population standing in for the MaxCompute log)",
        )
        + f"\n\nprospective: {len(prospective)}/{len(records)}; "
        f"symbolically relevant: {len(relevant)}/{len(prospective) or 1} "
        "(paper: 26,104 / 204,287)",
    )

    # Shape: the symbolically relevant class is a subset of the
    # prospective class, and both are non-empty.
    assert relevant and prospective
    assert len(relevant) <= len(prospective)
    assert all(r.prospective for r in relevant)
