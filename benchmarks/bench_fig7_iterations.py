"""Figure 7: learning-loop efficiency -- iterations to reach the
optimal predicate, by column-subset size.

Paper reference: 109 of 182 one-column predicates converge within 10
iterations; two/three-column subsets usually fail to reach optimality
within the 41-iteration budget.
"""

from repro.bench import bench_queries, efficacy_records, emit, fig7_rows, format_table


def test_fig7_iterations(benchmark, once):
    records = once(benchmark, efficacy_records)
    rows, labels = fig7_rows(records)
    headers = ["cols", "# optimal", "avg iters"] + labels
    emit(
        "fig7",
        format_table(
            headers,
            rows,
            title=f"Figure 7: iterations to optimal ({bench_queries()} queries)",
        ),
    )

    # Shape: one-column subsets converge in few iterations when they
    # converge at all.
    one_col = [
        r.iterations
        for r in records
        if r.technique == "SIA" and r.n_cols == 1 and r.optimal
    ]
    if one_col:
        within_10 = sum(1 for i in one_col if i <= 10)
        assert within_10 / len(one_col) >= 0.5
