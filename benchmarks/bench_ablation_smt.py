"""Ablation: bound-ordering lemmas in the lazy DPLL(T) loop.

The ``NotOld`` constraint splits into hundreds of interval atoms over
the same column; without static ordering lemmas every pairwise
interaction surfaces as a separate theory conflict (DESIGN.md #1).
This ablation times repeated model enumeration with and without the
lemmas.
"""

from time import perf_counter

from repro.bench import emit, format_table
from repro.smt import NE, SAT, Atom, LinExpr, Solver, Var, compare, conj, disj


def enumerate_models(num_models: int, *, ordering_lemmas: bool) -> float:
    """Time to enumerate distinct models of a small interval system."""
    x = Var("x")
    y = Var("y")
    ex, ey = LinExpr.var(x), LinExpr.var(y)
    solver = Solver(ordering_lemmas=ordering_lemmas)
    solver.add(
        conj(
            [
                compare(ex - ey, "<", LinExpr.const_expr(20)),
                compare(ex, ">=", LinExpr.const_expr(-300)),
                compare(ey, ">=", LinExpr.const_expr(-300)),
                compare(ex, "<=", LinExpr.const_expr(300)),
                compare(ey, "<=", LinExpr.const_expr(300)),
            ]
        )
    )
    start = perf_counter()
    for _ in range(num_models):
        assert solver.check() == SAT
        model = solver.model()
        solver.add(
            disj(
                [
                    Atom(LinExpr.var(x) - model.value(x), NE),
                    Atom(LinExpr.var(y) - model.value(y), NE),
                ]
            )
        )
    return (perf_counter() - start) * 1000.0


def test_ablation_ordering_lemmas(benchmark, once):
    def run():
        return {
            "with lemmas": enumerate_models(120, ordering_lemmas=True),
            "without lemmas": enumerate_models(120, ordering_lemmas=False),
        }

    results = once(benchmark, run)
    rows = [[label, f"{ms:.0f}"] for label, ms in results.items()]
    emit(
        "ablation_smt",
        format_table(
            ["configuration", "time ms (120 models)"],
            rows,
            title="Ablation: bound-ordering lemmas in the lazy SMT loop "
            "(DESIGN.md #1)",
        ),
    )
    # The lemmas must not make enumeration slower by more than noise.
    assert results["with lemmas"] <= results["without lemmas"] * 1.5
