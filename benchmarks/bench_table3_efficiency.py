"""Table 3: efficiency -- average generation / learning / validation
time per synthesis, by column-subset size.

Paper reference values (ms)::

    cols   SIA gen/learn/val     SIA_v1 gen/learn/val   SIA_v2 gen/learn/val
    one    893 / 1.8 / 98        2625 / 0.5 / 1         9304 / 1.9 / 11
    two    2933 / 14.6 / 281     2739 / 1.0 / 7         10159 / 3.2 / 12
    three  4154 / 38.9 / 328     3801 / 1.0 / 8         11859 / 5.0 / 12

Expected shape: generation time dominates everywhere; SIA_v2 (2x the
samples) is the slowest overall; SIA's validation cost exceeds the
single-shot variants' because it verifies once per iteration.
"""

from statistics import mean

from repro.bench import bench_queries, efficacy_records, emit, format_table, table3_rows


def test_table3_efficiency(benchmark, once):
    records = once(benchmark, efficacy_records)
    rows = table3_rows(records)
    headers = ["cols"]
    for technique in ("SIA", "SIA_v1", "SIA_v2"):
        headers += [f"{technique} gen", f"{technique} learn", f"{technique} val"]
    emit(
        "table3",
        format_table(
            headers,
            rows,
            title=f"Table 3: per-synthesis stage times in ms "
            f"({bench_queries()} queries)",
        ),
    )

    # Shape assertion: generation dominates learning for SIA_v2 (big
    # initial sample set, single iteration).
    v2 = [
        r
        for r in records
        if r.technique == "SIA_v2" and r.possible and r.generation_ms > 0
    ]
    if v2:
        assert mean(r.generation_ms for r in v2) > mean(r.learning_ms for r in v2)
