"""Microbenchmarks of the SMT substrate.

Not a paper artefact -- these track the performance of the solver
components that every experiment sits on (sample generation is >70% of
Sia's total time in Table 3, and it is pure solver work).
"""

import random

from repro.smt import (
    NE,
    SAT,
    Atom,
    LinExpr,
    Solver,
    Var,
    compare,
    conj,
    disj,
    is_satisfiable,
)
from repro.smt.qe import unsat_region
from repro.smt.sat import SatSolver

X = Var("x")
Y = Var("y")
B = Var("b")
ex, ey, eb = LinExpr.var(X), LinExpr.var(Y), LinExpr.var(B)
c = LinExpr.const_expr


def test_sat_random_3sat(benchmark):
    rng = random.Random(7)
    clauses = []
    for _ in range(400):
        clauses.append(
            [rng.choice([-1, 1]) * rng.randint(1, 60) for _ in range(3)]
        )

    def solve():
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(list(clause))
        return solver.solve()

    benchmark(solve)


def test_smt_conjunction_check(benchmark):
    formula = conj(
        [
            compare(ex + ey, "<", c(100)),
            compare(ex - ey, ">", c(-50)),
            compare(ex, ">=", c(0)),
            compare(ey, ">=", c(0)),
            compare(ex * 3 + ey * 2, "<=", c(240)),
        ]
    )
    benchmark(lambda: is_satisfiable(formula))


def test_model_enumeration_50(benchmark):
    base = conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(1000))])

    def enumerate_models():
        solver = Solver()
        solver.add(base)
        for _ in range(50):
            assert solver.check() == SAT
            value = solver.model().value(X)
            solver.add(Atom(LinExpr.var(X) - value, NE))

    benchmark(enumerate_models)


def test_quantifier_elimination(benchmark):
    pred = conj(
        [
            compare(ex - eb, "<", c(20)),
            compare(ey - ex, "<", ex - eb + 10),
            compare(eb, "<", c(0)),
        ]
    )
    benchmark(lambda: unsat_region(pred, {X, Y}))


def test_disjunctive_formula_check(benchmark):
    branches = [
        conj([compare(ex, ">=", c(i * 10)), compare(ex, "<", c(i * 10 + 5))])
        for i in range(12)
    ]
    formula = conj([disj(branches), compare(ex, ">", c(57))])
    benchmark(lambda: is_satisfiable(formula))


# ----------------------------------------------------------------------
# Proof logging / core minimization
# ----------------------------------------------------------------------
def unsat_disjunctive_formula():
    """UNSAT formula with redundant side constraints: without core
    minimization, theory conflicts can drag the wide bounds into the
    blocking clauses."""
    branches = [
        conj([compare(ex, ">=", c(i * 10 + 6)), compare(ex, "<", c(i * 10 + 9))])
        for i in range(8)
    ]
    return conj(
        [
            disj(branches),
            compare(ex, ">=", c(-10_000)),
            compare(ex, "<=", c(10_000)),
            disj([compare(ex * 10, "=", c(5)), compare(ex * 10, "=", c(15))]),
        ]
    )


def blocking_clause_sizes(minimize: bool) -> list[int]:
    solver = Solver(proof=True, minimize_cores=minimize)
    solver.add(unsat_disjunctive_formula())
    solver.check()
    assert solver.proof_log is not None
    return [len(s.lits) for s in solver.proof_log.theory_steps()]


def test_unsat_with_proof_logging(benchmark):
    """Overhead of proof logging on an UNSAT disjunctive formula."""
    formula = unsat_disjunctive_formula()

    def solve():
        solver = Solver(proof=True)
        solver.add(formula)
        return solver.check()

    benchmark(solve)


def test_unsat_with_core_minimization(benchmark):
    """Cost of deletion-based core minimization; reports the blocking-
    clause size delta against the unminimized run."""
    formula = unsat_disjunctive_formula()

    def solve():
        solver = Solver(proof=True, minimize_cores=True)
        solver.add(formula)
        return solver.check()

    benchmark(solve)

    plain = blocking_clause_sizes(minimize=False)
    minimized = blocking_clause_sizes(minimize=True)
    if plain and minimized:
        benchmark.extra_info["blocking_clause_lits_plain"] = sum(plain)
        benchmark.extra_info["blocking_clause_lits_minimized"] = sum(minimized)
        benchmark.extra_info["clause_size_delta"] = sum(plain) - sum(minimized)
        assert sum(minimized) <= sum(plain)
