"""Microbenchmarks of the SMT substrate.

Not a paper artefact -- these track the performance of the solver
components that every experiment sits on (sample generation is >70% of
Sia's total time in Table 3, and it is pure solver work).

Two entry points share the workload bodies below:

* ``pytest benchmarks/bench_smt_micro.py`` runs them under
  pytest-benchmark for interactive comparison;
* ``python benchmarks/bench_smt_micro.py`` times them standalone and
  writes ``BENCH_smt_micro.json`` at the repo root (median/p95 per
  benchmark plus the :data:`repro.smt.stats.GLOBAL_COUNTERS` delta),
  including a warm-vs-cold CEGIS comparison that measures how many
  solver constructions :class:`repro.smt.SmtSession` saves per
  synthesized query.
"""

import argparse
import random

from repro.obs.clock import now
from repro.smt import (
    NE,
    SAT,
    Atom,
    LinExpr,
    SmtSession,
    Solver,
    Var,
    compare,
    conj,
    disj,
    is_satisfiable,
)
from repro.smt.qe import unsat_region
from repro.smt.sat import SatSolver
from repro.smt.stats import GLOBAL_COUNTERS

X = Var("x")
Y = Var("y")
B = Var("b")
ex, ey, eb = LinExpr.var(X), LinExpr.var(Y), LinExpr.var(B)
c = LinExpr.const_expr


def _random_3sat_clauses() -> list[list[int]]:
    rng = random.Random(7)
    return [
        [rng.choice([-1, 1]) * rng.randint(1, 60) for _ in range(3)]
        for _ in range(400)
    ]


_CLAUSES_3SAT = _random_3sat_clauses()


def run_sat_random_3sat():
    solver = SatSolver()
    for clause in _CLAUSES_3SAT:
        solver.add_clause(list(clause))
    return solver.solve()


def test_sat_random_3sat(benchmark):
    benchmark(run_sat_random_3sat)


_CONJUNCTION = conj(
    [
        compare(ex + ey, "<", c(100)),
        compare(ex - ey, ">", c(-50)),
        compare(ex, ">=", c(0)),
        compare(ey, ">=", c(0)),
        compare(ex * 3 + ey * 2, "<=", c(240)),
    ]
)


def run_smt_conjunction_check():
    return is_satisfiable(_CONJUNCTION)


def test_smt_conjunction_check(benchmark):
    benchmark(run_smt_conjunction_check)


def run_model_enumeration_50():
    base = conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(1000))])
    solver = Solver()
    solver.add(base)
    for _ in range(50):
        assert solver.check() == SAT
        value = solver.model().value(X)
        solver.add(Atom(LinExpr.var(X) - value, NE))


def test_model_enumeration_50(benchmark):
    benchmark(run_model_enumeration_50)


def run_quantifier_elimination():
    pred = conj(
        [
            compare(ex - eb, "<", c(20)),
            compare(ey - ex, "<", ex - eb + 10),
            compare(eb, "<", c(0)),
        ]
    )
    return unsat_region(pred, {X, Y})


def test_quantifier_elimination(benchmark):
    benchmark(run_quantifier_elimination)


def run_disjunctive_formula_check():
    branches = [
        conj([compare(ex, ">=", c(i * 10)), compare(ex, "<", c(i * 10 + 5))])
        for i in range(12)
    ]
    return is_satisfiable(conj([disj(branches), compare(ex, ">", c(57))]))


def test_disjunctive_formula_check(benchmark):
    benchmark(run_disjunctive_formula_check)


# ----------------------------------------------------------------------
# Warm session vs. fresh solvers
# ----------------------------------------------------------------------
_PROBE_POINTS = [random.Random(11).randint(0, 90) for _ in range(40)]


def run_session_scoped_probes():
    """One warm session; each probe is a pushed/retracted scope."""
    session = SmtSession()
    session.assert_base(_CONJUNCTION)
    sat = 0
    for point in _PROBE_POINTS:
        scope = session.push(compare(ex, "=", c(point)), label="probe")
        if session.check() == SAT:
            sat += 1
        scope.retract()
    return sat


def run_fresh_solver_probes():
    """The historical pattern: a cold solver per probe."""
    sat = 0
    for point in _PROBE_POINTS:
        solver = Solver()
        solver.add(_CONJUNCTION, compare(ex, "=", c(point)))
        if solver.check() == SAT:
            sat += 1
    return sat


def test_session_scoped_probes(benchmark):
    benchmark(run_session_scoped_probes)


def test_fresh_solver_probes(benchmark):
    benchmark(run_fresh_solver_probes)


def test_session_and_fresh_probes_agree():
    assert run_session_scoped_probes() == run_fresh_solver_probes()


# ----------------------------------------------------------------------
# Proof logging / core minimization
# ----------------------------------------------------------------------
def unsat_disjunctive_formula():
    """UNSAT formula with redundant side constraints: without core
    minimization, theory conflicts can drag the wide bounds into the
    blocking clauses."""
    branches = [
        conj([compare(ex, ">=", c(i * 10 + 6)), compare(ex, "<", c(i * 10 + 9))])
        for i in range(8)
    ]
    return conj(
        [
            disj(branches),
            compare(ex, ">=", c(-10_000)),
            compare(ex, "<=", c(10_000)),
            disj([compare(ex * 10, "=", c(5)), compare(ex * 10, "=", c(15))]),
        ]
    )


def blocking_clause_sizes(minimize: bool) -> list[int]:
    solver = Solver(proof=True, minimize_cores=minimize)
    solver.add(unsat_disjunctive_formula())
    solver.check()
    assert solver.proof_log is not None
    return [len(s.lits) for s in solver.proof_log.theory_steps()]


def run_unsat_with_proof_logging():
    solver = Solver(proof=True)
    solver.add(unsat_disjunctive_formula())
    return solver.check()


def test_unsat_with_proof_logging(benchmark):
    """Overhead of proof logging on an UNSAT disjunctive formula."""
    benchmark(run_unsat_with_proof_logging)


def run_unsat_with_core_minimization():
    solver = Solver(proof=True, minimize_cores=True)
    solver.add(unsat_disjunctive_formula())
    return solver.check()


def test_unsat_with_core_minimization(benchmark):
    """Cost of deletion-based core minimization; reports the blocking-
    clause size delta against the unminimized run."""
    benchmark(run_unsat_with_core_minimization)

    plain = blocking_clause_sizes(minimize=False)
    minimized = blocking_clause_sizes(minimize=True)
    if plain and minimized:
        benchmark.extra_info["blocking_clause_lits_plain"] = sum(plain)
        benchmark.extra_info["blocking_clause_lits_minimized"] = sum(minimized)
        benchmark.extra_info["clause_size_delta"] = sum(plain) - sum(minimized)
        assert sum(minimized) <= sum(plain)


# ----------------------------------------------------------------------
# Standalone driver: BENCH_smt_micro.json
# ----------------------------------------------------------------------
MICRO_RUNNERS = {
    "sat_random_3sat": run_sat_random_3sat,
    "smt_conjunction_check": run_smt_conjunction_check,
    "model_enumeration_50": run_model_enumeration_50,
    "quantifier_elimination": run_quantifier_elimination,
    "disjunctive_formula_check": run_disjunctive_formula_check,
    "session_scoped_probes": run_session_scoped_probes,
    "fresh_solver_probes": run_fresh_solver_probes,
    "unsat_with_proof_logging": run_unsat_with_proof_logging,
    "unsat_with_core_minimization": run_unsat_with_core_minimization,
}


def _timed_entry(fn, runs: int, name: str = "") -> dict:
    from repro.bench.perflog import summarize_times
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    before = GLOBAL_COUNTERS.snapshot()
    times_ms = []
    for _ in range(runs):
        start = now()
        with tracer.span(f"micro.{name}" if name else "micro.run",
                         phase=name or "micro", counters=True):
            fn()
        times_ms.append((now() - start) * 1000.0)
    entry = summarize_times(times_ms)
    entry["counters"] = GLOBAL_COUNTERS.delta_since(before)
    return entry


def _cegis_cells(num_queries: int, seed: int):
    """(predicate, subset) synthesis cells over date-column pairs.

    Two-column subsets drive multi-iteration CEGIS loops (single
    columns mostly converge in one round, where a warm session has
    nothing to amortize).
    """
    import itertools

    from repro.tpch import LINEITEM_DATES, generate_workload

    cells = []
    for wq in generate_workload(num_queries, seed=seed):
        for pair in itertools.combinations(LINEITEM_DATES, 2):
            if set(pair) <= wq.predicate.columns():
                cells.append((wq.predicate, frozenset(pair)))
    return cells


def _run_cegis(
    cells,
    *,
    warm: bool,
    float_filter: str | None = None,
    pooled: bool = False,
) -> dict:
    from contextlib import nullcontext
    from dataclasses import replace

    from repro.bench.perflog import summarize_times
    from repro.core import SIA_DEFAULT, Synthesizer
    from repro.smt import session_pool

    config = replace(SIA_DEFAULT, warm_sessions=warm)
    if float_filter is not None:
        config = replace(config, float_filter=float_filter)
    before = GLOBAL_COUNTERS.snapshot()
    times_ms = []
    with session_pool() if pooled else nullcontext():
        for predicate, subset in cells:
            start = now()
            Synthesizer(config).synthesize(predicate, set(subset))
            times_ms.append((now() - start) * 1000.0)
    entry = summarize_times(times_ms)
    entry["counters"] = GLOBAL_COUNTERS.delta_since(before)
    entry["solver_constructions_per_query"] = round(
        entry["counters"]["solvers_constructed"] / max(len(cells), 1), 3
    )
    counters = entry["counters"]
    entry["session_pool_hit_rate"] = round(
        counters.get("sessions_reused", 0)
        / max(
            counters.get("sessions_created", 0)
            + counters.get("sessions_reused", 0),
            1,
        ),
        3,
    )
    return entry


def cegis_warm_vs_cold(num_queries: int, seed: int) -> dict[str, dict]:
    """Warm-session vs. fresh-solver CEGIS over a small workload.

    The acceptance bar for the warm-session work: at least 2x fewer
    solver constructions per synthesized query, and a lower median
    wall-clock, both recorded in the JSON trajectory.
    """
    cells = _cegis_cells(num_queries, seed)
    warm = _run_cegis(cells, warm=True)
    cold = _run_cegis(cells, warm=False)
    # The sharded driver's worker configuration: warm sessions plus a
    # process-lifetime session pool, so leases over a recurring base
    # formula (every iteration's TRUE sampler) resume a warm session.
    pooled = _run_cegis(cells, warm=True, pooled=True)
    ratio = cold["solver_constructions_per_query"] / max(
        warm["solver_constructions_per_query"], 1e-9
    )
    comparison = {
        "queries": len(cells),
        "construction_ratio_cold_over_warm": round(ratio, 2),
        "median_speedup": round(
            cold["median_ms"] / max(warm["median_ms"], 1e-9), 3
        ),
        "p95_speedup": round(cold["p95_ms"] / max(warm["p95_ms"], 1e-9), 3),
        "pooled_median_speedup_over_warm": round(
            warm["median_ms"] / max(pooled["median_ms"], 1e-9), 3
        ),
        "pooled_hit_rate": pooled["session_pool_hit_rate"],
    }
    return {
        "cegis/warm": warm,
        "cegis/cold": cold,
        "cegis/pooled": pooled,
        "cegis/warm_vs_cold": comparison,
    }


def cegis_tail(num_queries: int, seed: int) -> dict[str, dict]:
    """Two-tier float filter vs. exact-only CEGIS over the same cells.

    The float tier targets the latency *tail*: the expensive checks
    are the ones whose Fraction denominators blow up mid-pivot, and
    those are exactly the checks a float pass can pre-filter.  So the
    headline number here is ``p95_speedup``, with ``median_speedup``
    alongside, plus the per-tier counters (float vs. exact pivots,
    disagreements, fallbacks) that show how often the advisory verdict
    held up.
    """
    from repro.smt.backend import FLOAT_OFF, FLOAT_TRUST_SAT

    cells = _cegis_cells(num_queries, seed)
    on = _run_cegis(cells, warm=True, float_filter=FLOAT_TRUST_SAT)
    off = _run_cegis(cells, warm=True, float_filter=FLOAT_OFF)
    on_counters = on["counters"]
    comparison = {
        "queries": len(cells),
        "median_speedup": round(
            off["median_ms"] / max(on["median_ms"], 1e-9), 3
        ),
        "p95_speedup": round(off["p95_ms"] / max(on["p95_ms"], 1e-9), 3),
        "float_pivots": on_counters.get("float_pivots", 0),
        "exact_pivots": on_counters.get("pivots", 0),
        "float_checks": on_counters.get("float_checks", 0),
        "float_sat_confirmed": on_counters.get("float_sat_confirmed", 0),
        "float_unsat_confirmed": on_counters.get("float_unsat_confirmed", 0),
        "tier_disagreements": on_counters.get("tier_disagreements", 0),
        "fallbacks": on_counters.get("tier_fallbacks", 0),
    }
    return {
        "cegis/tail_filter_on": on,
        "cegis/tail_filter_off": off,
        "cegis/tail": comparison,
    }


def parallel_driver_bench(num_queries: int, seed: int, runs: int) -> dict[str, dict]:
    """Wall-clock of the process-pool workload driver vs. one process.

    Uses the solver-free TC technique so the entry times the driver
    itself (fan-out, per-worker counter capture, ordered merge) rather
    than CEGIS; the merged record stream is identical either way, which
    tests/bench/test_parallel.py asserts.
    """
    from repro.bench.parallel import default_workers, parallel_efficacy_records
    from repro.bench.perflog import summarize_times

    out: dict[str, dict] = {}
    workers = max(2, default_workers())
    for label, n in (("sequential", 1), ("workers", workers)):
        before = GLOBAL_COUNTERS.snapshot()
        times_ms = []
        records = 0
        for _ in range(runs):
            start = now()
            result = parallel_efficacy_records(
                num_queries=num_queries,
                seed=seed,
                techniques=("TC",),
                workers=n,
            )
            times_ms.append((now() - start) * 1000.0)
            records = len(result.records)
        entry = summarize_times(times_ms)
        entry["counters"] = GLOBAL_COUNTERS.delta_since(before)
        entry["workers"] = n
        entry["records"] = records
        entry["pool"] = result.pool
        out[f"parallel/tc_{label}"] = entry
    return out


def main(argv=None) -> int:
    from repro.bench.perflog import DEFAULT_PATH, update_bench_json

    parser = argparse.ArgumentParser(
        description="SMT micro-benchmarks -> BENCH_smt_micro.json"
    )
    parser.add_argument(
        "--runs", type=int, default=5, help="timed runs per benchmark"
    )
    parser.add_argument(
        "--cegis-queries", type=int, default=4,
        help="workload queries for the warm-vs-cold CEGIS comparison",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--output", default=str(DEFAULT_PATH))
    parser.add_argument(
        "--skip-cegis", action="store_true",
        help="micro-benchmarks only (fast smoke mode)",
    )
    parser.add_argument(
        "--skip-tail", action="store_true",
        help="skip the two-tier float-filter tail comparison",
    )
    parser.add_argument(
        "--tail-queries", type=int, default=None,
        help="workload queries for the float-filter tail comparison "
        "(defaults to --cegis-queries)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL span trace (with per-check smt spans) of "
        "the whole run; replay with 'repro trace PATH'",
    )
    args = parser.parse_args(argv)

    from contextlib import nullcontext

    from repro.bench.perflog import stamp_trace_id
    from repro.obs import install_file_tracer

    tracing = (
        install_file_tracer(args.trace, smt_spans=True)
        if args.trace
        else nullcontext(None)
    )
    entries: dict[str, dict] = {}
    with tracing as tracer:
        for name, fn in MICRO_RUNNERS.items():
            entries[f"micro/{name}"] = _timed_entry(fn, args.runs, name)
            print(
                f"micro/{name}: median {entries[f'micro/{name}']['median_ms']} ms"
            )
        entries.update(
            parallel_driver_bench(args.cegis_queries, args.seed, args.runs)
        )
        for name in ("parallel/tc_sequential", "parallel/tc_workers"):
            print(
                f"{name}: median {entries[name]['median_ms']} ms "
                f"({entries[name]['workers']} workers)"
            )
        if not args.skip_cegis:
            entries.update(cegis_warm_vs_cold(args.cegis_queries, args.seed))
            comparison = entries["cegis/warm_vs_cold"]
            print(
                "cegis: warm constructs "
                f"{entries['cegis/warm']['solver_constructions_per_query']} "
                "solvers/query vs cold "
                f"{entries['cegis/cold']['solver_constructions_per_query']} "
                f"({comparison['construction_ratio_cold_over_warm']}x fewer), "
                f"median speedup {comparison['median_speedup']}x"
            )
            print(
                "cegis pooled: session-pool hit rate "
                f"{comparison['pooled_hit_rate']}, median "
                f"{comparison['pooled_median_speedup_over_warm']}x vs warm"
            )
        if not args.skip_tail:
            entries.update(
                cegis_tail(args.tail_queries or args.cegis_queries, args.seed)
            )
            tail = entries["cegis/tail"]
            print(
                f"cegis tail: p95 speedup {tail['p95_speedup']}x, median "
                f"{tail['median_speedup']}x ({tail['float_pivots']} float / "
                f"{tail['exact_pivots']} exact pivots, "
                f"{tail['tier_disagreements']} disagreements, "
                f"{tail['fallbacks']} fallbacks)"
            )
        stamp_trace_id(entries, tracer.trace_id if tracer is not None else None)
    if args.trace:
        print(f"trace written to {args.trace}")
    path = update_bench_json(entries, args.output)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
