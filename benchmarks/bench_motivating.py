"""Section 2 / Figure 1: the motivating example.

Q1 (three cross-table date predicates) is rewritten by Sia with
lineitem-only predicates; the rewritten query Q2 pushes them below the
join.  The paper reports a 2x wall-clock win on Postgres at SF 10; we
check the *shape*: the rewritten plan filters lineitem below the join
and the join input shrinks accordingly.
"""

import pytest

from repro.bench import catalog_for, emit, format_table, sf_large
from repro.engine import build_plan, execute
from repro.rewrite import rewrite_query
from repro.sql.binder import parse_query

MOTIVATING_SQL = (
    "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
    "AND l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01' "
    "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10"
)


@pytest.fixture(scope="module")
def setup():
    catalog = catalog_for(sf_large())
    query = parse_query(MOTIVATING_SQL, catalog.schema())
    result = rewrite_query(query, "lineitem")
    assert result.succeeded, result.outcome.detail
    return catalog, query, result


def test_original_q1_execution(benchmark, setup):
    catalog, query, _ = setup
    plan = build_plan(query)
    relation, _ = benchmark(lambda: execute(plan, catalog))
    assert relation.num_rows > 0


def test_rewritten_q2_execution(benchmark, setup):
    catalog, _, result = setup
    plan = build_plan(result.rewritten)
    relation, _ = benchmark(lambda: execute(plan, catalog))
    assert relation.num_rows > 0


def test_motivating_report(benchmark, once, setup):
    catalog, query, result = setup

    def run():
        rel_orig, stats_orig = execute(build_plan(query), catalog)
        rel_rew, stats_rew = execute(build_plan(result.rewritten), catalog)
        return rel_orig, rel_rew, stats_orig, stats_rew

    rel_orig, rel_rew, stats_orig, stats_rew = once(benchmark, run)
    assert rel_orig.num_rows == rel_rew.num_rows

    rows = [
        [
            "Q1 (original)",
            f"{stats_orig.elapsed_ms:.1f}",
            stats_orig.tuples_processed,
            stats_orig.join_input_tuples,
        ],
        [
            "Q2 (rewritten)",
            f"{stats_rew.elapsed_ms:.1f}",
            stats_rew.tuples_processed,
            stats_rew.join_input_tuples,
        ],
    ]
    emit(
        "motivating",
        format_table(
            ["plan", "time_ms", "tuples", "join_input"],
            rows,
            title=(
                "Section 2 motivating example (paper: Q2 about 2x faster on "
                "Postgres SF10; shape check: join input shrinks)"
            ),
        )
        + "\n\nsynthesized: "
        + str(result.synthesized_predicate),
    )
    # The rewritten plan must feed fewer tuples into the join.
    assert stats_rew.join_input_tuples <= stats_orig.join_input_tuples
