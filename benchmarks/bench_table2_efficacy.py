"""Table 2: efficacy -- # valid / # optimal synthesized predicates per
column-subset size, for SIA vs transitive closure vs SIA_v1 vs SIA_v2.

Paper reference values (200 queries)::

    cols  possible  SIA          TC     SIA_v1      SIA_v2
    one   233       182 / 158    18     158 / 75    166 / 98
    two   160       102 / 20     4      11 / 3      17 / 4
    three 30        20 / 0       0      2 / 0       1 / 0

Expected shape: SIA synthesizes the most valid predicates in every
band and dominates the single-shot variants heavily on 2/3-column
subsets; transitive closure trails far behind everywhere.
"""

from repro.bench import (
    TECHNIQUES,
    bench_queries,
    efficacy_records,
    emit,
    format_table,
    table2_rows,
)


def test_table2_efficacy(benchmark, once):
    records = once(benchmark, efficacy_records)
    rows = table2_rows(records)
    headers = ["cols", "possible"]
    for technique in TECHNIQUES:
        headers += [f"{technique} valid", f"{technique} optimal"]
    emit(
        "table2",
        format_table(
            headers,
            rows,
            title=f"Table 2: efficacy over {bench_queries()} queries "
            "(paper: 200; set REPRO_BENCH_QUERIES=200 for full scale)",
        ),
    )

    # Shape assertions (Table 2's qualitative claims).
    by_cols = {row[0]: row for row in rows}
    sia_valid = {label: by_cols[label][2] for label in ("one", "two", "three")}
    v1_valid = {label: by_cols[label][6] for label in ("one", "two", "three")}
    v2_valid = {label: by_cols[label][8] for label in ("one", "two", "three")}
    tc_valid = {label: by_cols[label][4] for label in ("one", "two", "three")}
    for label in ("one", "two", "three"):
        assert sia_valid[label] >= v1_valid[label]
        assert sia_valid[label] >= v2_valid[label]
        assert sia_valid[label] >= tc_valid[label]
