"""Shared configuration for the benchmark suite.

Scale knobs are environment variables (see repro.bench.harness):
``REPRO_BENCH_QUERIES`` (default 8; the paper uses 200),
``REPRO_BENCH_SF_SMALL`` / ``REPRO_BENCH_SF_LARGE`` (engine scale
factors standing in for the paper's SF 1 / SF 10).
"""

import pytest


@pytest.fixture(scope="session")
def once():
    """Run an expensive experiment exactly once per session."""

    def runner(benchmark, fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
