"""Table 4: selectivity of the synthesized predicates per performance
class.

Paper reference: predicates of faster rewritten queries average
selectivity ~0.76 (SF1) / 0.78 (SF10); slower ones average ~0.97 /
0.96.  Expected shape: winners carry more selective (smaller) synthesized
predicates than losers.
"""

from repro.bench import (
    bench_queries,
    emit,
    format_table,
    runtime_records,
    sf_large,
    sf_small,
    table4_rows,
)


def test_table4_selectivity(benchmark, once):
    def run():
        return (
            runtime_records(scale_factor=sf_small()),
            runtime_records(scale_factor=sf_large()),
        )

    small, large = once(benchmark, run)
    rows = []
    for label, records in ((f"SF {sf_small()}", small), (f"SF {sf_large()}", large)):
        for row in table4_rows(records):
            rows.append([label] + row)
    emit(
        "table4",
        format_table(
            ["scale", "class", "count", "avg selectivity"],
            rows,
            title=f"Table 4: synthesized-predicate selectivity "
            f"({bench_queries()} queries)",
        ),
    )

    # Shape: when both classes are populated, faster queries carry the
    # more selective predicates.
    for records in (small, large):
        done = [r for r in records if r.rewritten]
        faster = [r.selectivity for r in done if r.time_speedup > 1.0]
        slower = [r.selectivity for r in done if r.time_speedup < 1.0]
        if faster and slower:
            assert sum(faster) / len(faster) <= sum(slower) / len(slower) + 0.15
