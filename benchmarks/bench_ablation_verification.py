"""Ablation: why verification matters (paper section 1 motivation).

The introduction argues that ML-learned predicates without a
verification step have "no guarantee that the trained classifier is
weaker than the original predicate" -- the rewritten query may silently
drop rows.  This ablation runs the same learner with and without the
CEGIS/verification machinery and counts (a) how often the ML-only
predicate is invalid and (b) how many result rows each invalid one
loses on real data.
"""

from repro.bench import catalog_for, emit, format_table
from repro.core import SiaConfig, Synthesizer, ml_only_predicate
from repro.engine import build_plan, execute
from repro.predicates import pand
from repro.rewrite.rules import synthesis_input, target_columns
from repro.tpch import generate_workload

import dataclasses


def run_comparison(num_queries: int = 8, seed: int = 31):
    catalog = catalog_for(0.005)
    synthesizer = Synthesizer(SiaConfig(max_iterations=10, seed=seed))
    rows = []
    invalid_ml = 0
    sia_emitted = 0
    total = 0
    for wq in generate_workload(num_queries, seed=seed):
        predicate = synthesis_input(wq.query)
        targets = sorted(target_columns(predicate, "lineitem"))
        # Single columns plus the multi-column subsets where single-shot
        # learning usually fails (cf. SIA_v1's Table 2 numbers).
        subsets = [{column} for column in targets]
        if len(targets) > 1:
            subsets.append(set(targets))
        for subset in subsets:
            ml_pred, ml_valid = ml_only_predicate(predicate, subset, seed=seed)
            if ml_pred is None:
                continue  # no non-trivial predicate exists for this subset
            total += 1
            sia_out = synthesizer.synthesize(predicate, subset)
            if sia_out.is_valid:
                sia_emitted += 1
            lost = 0
            if not ml_valid:
                invalid_ml += 1
                lost = _rows_lost(wq, ml_pred, catalog)
            label = "+".join(sorted(c.name[2:] for c in subset))
            rows.append(
                [
                    f"q{wq.index}.{label}",
                    "yes" if ml_valid else "NO",
                    lost,
                    sia_out.status,
                ]
            )
    return rows, invalid_ml, sia_emitted, total


def _rows_lost(wq, ml_pred, catalog) -> int:
    original = wq.query
    rewritten = dataclasses.replace(
        original, where=pand([original.where, ml_pred])
    )
    rel_orig, _ = execute(build_plan(original), catalog)
    rel_rew, _ = execute(build_plan(rewritten), catalog)
    return rel_orig.num_rows - rel_rew.num_rows


def test_ablation_verification(benchmark, once):
    rows, invalid_ml, sia_emitted, total = once(benchmark, run_comparison)
    emit(
        "ablation_verification",
        format_table(
            ["case", "ML valid?", "rows lost", "SIA status"],
            rows,
            title="Ablation: learning without verification (section 1 "
            "motivation) -- invalid ML predicates silently drop rows; "
            "every SIA-emitted predicate is verified",
        )
        + f"\n\nML-only invalid: {invalid_ml}/{total}; "
        f"SIA emitted (all verified valid): {sia_emitted}/{total}",
    )
    # SIA's contract: everything it emits passed verification -- by
    # construction -- while the ML-only baseline has no such guarantee.
    # (Exact counts vary with the workload; the report shows them.)
    assert total > 0
