"""Figure 8: distribution of TRUE/FALSE training-sample counts at the
final iteration of SIA's learning loop.

Paper reference: most successful one-column predicates need fewer than
50 TRUE samples (178/182) and fewer than 100 FALSE samples (118/158);
multi-column subsets consume more samples without converging.
"""

from repro.bench import bench_queries, efficacy_records, emit, fig8_rows, format_table


def test_fig8_sample_distribution(benchmark, once):
    records = once(benchmark, efficacy_records)
    rows, labels = fig8_rows(records)
    headers = ["kind", "cols"] + labels
    emit(
        "fig8",
        format_table(
            headers,
            rows,
            title=f"Figure 8: final sample counts ({bench_queries()} queries)",
        ),
    )

    # Shape: valid one-column syntheses rarely need more than 50 TRUE
    # samples.
    one_col = [
        r.true_samples
        for r in records
        if r.technique == "SIA" and r.n_cols == 1 and r.valid
    ]
    if one_col:
        small = sum(1 for v in one_col if v <= 50)
        assert small / len(one_col) >= 0.5
