"""Ablation: randomised-region sampling vs plain model enumeration.

Section 5.3's "additional heuristics" motivate diversified sampling;
this ablation quantifies it.  Plain enumeration returns adjacent models
(x, x+1, ...), which cluster the initial training set and starve the
SVM of informative geometry -- the paper makes the same argument when
comparing against SIA_v1/v2's random clusters.
"""

from dataclasses import replace
from statistics import mean

from repro.bench import emit, format_table
from repro.core import RANDOM_BOX, SEQUENTIAL, SIA_DEFAULT, Synthesizer
from repro.tpch import generate_workload


def run_strategy(strategy: str, queries):
    config = replace(SIA_DEFAULT, sampling_strategy=strategy)
    synthesizer = Synthesizer(config)
    outcomes = []
    for wq in queries:
        lineitem_cols = {
            c for c in wq.predicate.columns() if c.table == "lineitem"
        }
        for column in sorted(lineitem_cols):
            outcomes.append(synthesizer.synthesize(wq.predicate, {column}))
    return outcomes


def test_ablation_sampling_strategy(benchmark, once):
    queries = generate_workload(6, seed=3)

    def run():
        return {
            strategy: run_strategy(strategy, queries)
            for strategy in (RANDOM_BOX, SEQUENTIAL)
        }

    results = once(benchmark, run)
    rows = []
    for strategy, outcomes in results.items():
        valid = [o for o in outcomes if o.is_valid]
        optimal = [o for o in outcomes if o.is_optimal]
        iters = mean(o.iterations for o in valid) if valid else 0.0
        rows.append([strategy, len(outcomes), len(valid), len(optimal), iters])
    emit(
        "ablation_sampling",
        format_table(
            ["strategy", "runs", "valid", "optimal", "avg iters (valid)"],
            rows,
            title="Ablation: initial-sample diversification (DESIGN.md #2)",
        ),
    )
    by = {row[0]: row for row in rows}
    # Diversified sampling must not synthesize fewer valid predicates.
    assert by[RANDOM_BOX][2] >= by[SEQUENTIAL][2]
