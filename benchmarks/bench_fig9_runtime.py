"""Figure 9: impact on runtime performance -- original vs rewritten
execution at two scale factors.

Paper reference (200 queries, 114 rewritten): at SF 1, 85 faster / 36
at least 2x faster / 29 slower; at SF 10, 95 faster / 66 at least 2x
faster / 19 slower.  Expected shape: a majority of rewritten queries
win, and the win rate does not degrade at the larger scale factor.
Both wall-clock and the engine's tuple-flow cost proxy are reported
(the latter is hardware-independent).
"""

from repro.bench import (
    bench_queries,
    emit,
    fig9_summary,
    format_table,
    runtime_records,
    sf_large,
    sf_small,
)


def _rows_for(scale_factor):
    records = runtime_records(scale_factor=scale_factor)
    summary = fig9_summary(records)
    return records, summary


def test_fig9_runtime(benchmark, once):
    def run():
        small = _rows_for(sf_small())
        large = _rows_for(sf_large())
        return small, large

    (small_records, small_summary), (large_records, large_summary) = once(
        benchmark, run
    )

    headers = [
        "scale",
        "rewritten",
        "faster",
        ">=2x faster",
        "slower",
        ">=2x slower",
        "cost faster",
        "cost >=2x",
    ]
    rows = []
    for label, summary in (
        (f"SF {sf_small()}", small_summary),
        (f"SF {sf_large()}", large_summary),
    ):
        rows.append(
            [
                label,
                summary["rewritten"],
                summary["faster"],
                summary["faster_2x"],
                summary["slower"],
                summary["slower_2x"],
                summary["cost_faster"],
                summary["cost_faster_2x"],
            ]
        )
    scatter = ["query  orig_ms  rew_ms  speedup  selectivity"]
    for record in large_records:
        if record.rewritten:
            scatter.append(
                f"q{record.query_index:<4d} {record.original_ms:8.2f} "
                f"{record.rewritten_ms:7.2f} {record.time_speedup:7.2f}x "
                f"{record.selectivity:6.2f}"
            )
    emit(
        "fig9",
        format_table(
            headers,
            rows,
            title=f"Figure 9: runtime impact ({bench_queries()} queries)",
        )
        + "\n\nScatter (large SF):\n"
        + "\n".join(scatter),
    )

    # Shape: by the hardware-independent cost proxy, a majority of the
    # rewritten queries must improve at the larger scale factor.
    done = [r for r in large_records if r.rewritten]
    if done:
        winners = sum(1 for r in done if r.tuple_speedup > 1.0)
        assert winners >= len(done) / 2
