"""The paper's section 2 motivating example, end to end.

Q1 joins lineitem and orders with three predicates that all reference
orders.o_orderdate, so the optimizer cannot push anything down to
lineitem (Figure 1a).  Sia infers lineitem-only predicates -- the same
ones the paper's Q2 carries:

    l_shipdate   < DATE '1993-06-20'   (we emit <= '1993-06-19')
    l_commitdate < DATE '1993-07-18'   (we emit <= '1993-07-17')

which let the optimizer filter lineitem below the join (Figure 1b).

Run:  python examples/motivating_example.py
"""

from repro.engine import build_plan, execute
from repro.rewrite import rewrite_query
from repro.sql import parse_query, render_pred
from repro.tpch import generate_catalog

Q1 = (
    "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
    "AND l_shipdate - o_orderdate < 20 "
    "AND o_orderdate < DATE '1993-06-01' "
    "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10"
)


def main() -> None:
    catalog = generate_catalog(scale_factor=0.02, seed=0)
    query = parse_query(Q1, catalog.schema())

    result = rewrite_query(query, "lineitem")
    print("synthesized predicates (compare with the paper's Q2):")
    for conjunct in result.synthesized_predicate.conjuncts():
        print("   ", render_pred(conjunct))

    print("\nplan P1 (original, Figure 1a):")
    plan_p1 = build_plan(query)
    print(plan_p1.describe())

    print("\nplan P2 (rewritten, Figure 1b):")
    plan_p2 = build_plan(result.rewritten)
    print(plan_p2.describe())

    def best_of(plan, runs=7):
        best = None
        relation = None
        for _ in range(runs):
            relation, stats = execute(plan, catalog)
            if best is None or stats.elapsed_ms < best.elapsed_ms:
                best = stats
        return relation, best

    rel1, stats1 = best_of(plan_p1)
    rel2, stats2 = best_of(plan_p2)
    assert rel1.num_rows == rel2.num_rows
    print(f"\nboth plans return {rel1.num_rows} rows (best of 7 runs)")
    print(
        f"P1: {stats1.elapsed_ms:6.1f} ms, {stats1.join_input_tuples} tuples into the join"
    )
    print(
        f"P2: {stats2.elapsed_ms:6.1f} ms, {stats2.join_input_tuples} tuples into the join"
    )
    print(
        f"speedup {stats1.elapsed_ms / stats2.elapsed_ms:.2f}x, "
        f"join input cut {stats1.join_input_tuples / stats2.join_input_tuples:.1f}x "
        "(paper: ~2x wall clock on Postgres at SF 10)"
    )


if __name__ == "__main__":
    main()
