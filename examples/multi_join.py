"""Rewriting a three-table join (generality beyond the paper's workload).

The section 6.3 benchmark joins two tables; Sia's formulation (Def. 2)
is table-agnostic -- any subset of the predicate's columns works.  This
example joins customer, orders and lineitem, with predicates that
straddle orders/lineitem, and synthesizes pushdown predicates for each
side of the join.

Run:  python examples/multi_join.py
"""

from repro.engine import build_plan, execute
from repro.rewrite import advise, rewrite_query
from repro.sql import parse_query, render_pred
from repro.tpch import generate_catalog

SQL = (
    "SELECT * FROM customer, orders, lineitem "
    "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
    "AND l_receiptdate - o_orderdate < 60 "
    "AND l_shipdate - o_orderdate > 30 "
    "AND o_orderdate < DATE '1994-01-01'"
)


def main() -> None:
    catalog = generate_catalog(scale_factor=0.01, seed=0)
    query = parse_query(SQL, catalog.schema())
    print("original query:\n ", SQL, "\n")

    rewritten = query
    for table in ("lineitem",):
        result = rewrite_query(rewritten, table)
        if not result.succeeded:
            print(f"{table}: nothing synthesized ({result.outcome.status})")
            continue
        advice = advise(result, catalog)
        print(f"{table}: {render_pred(result.synthesized_predicate)}")
        print(f"  advisor: keep={advice.keep} ({advice.reason})")
        if advice.keep:
            rewritten = result.rewritten

    plan_orig = build_plan(query)
    plan_rew = build_plan(rewritten)
    rel_o, stats_o = execute(plan_orig, catalog)
    rel_r, stats_r = execute(plan_rew, catalog)
    assert rel_o.num_rows == rel_r.num_rows
    print(f"\nboth plans return {rel_o.num_rows} rows")
    print(f"original : {stats_o.elapsed_ms:6.1f} ms, join input {stats_o.join_input_tuples}")
    print(f"rewritten: {stats_r.elapsed_ms:6.1f} ms, join input {stats_r.join_input_tuples}")
    print("\nrewritten plan:")
    print(plan_rew.describe())


if __name__ == "__main__":
    main()
