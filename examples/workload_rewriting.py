"""Batch rewriting over the paper's TPC-H workload (section 6.3/6.6).

Generates queries from the random-predicate grammar, rewrites each one
with a synthesized lineitem predicate, and executes both versions --
the miniature version of the paper's Figure 9 experiment.

Run:  python examples/workload_rewriting.py [num_queries]
"""

import sys

from repro.engine import build_plan, execute
from repro.rewrite import rewrite_query
from repro.sql import render_pred
from repro.tpch import generate_catalog, generate_workload


def main(num_queries: int = 8) -> None:
    catalog = generate_catalog(scale_factor=0.02, seed=0)
    queries = generate_workload(num_queries, seed=42)
    faster = slower = skipped = 0

    for wq in queries:
        print(f"\n=== query {wq.index} ===")
        print(wq.sql[:120] + ("..." if len(wq.sql) > 120 else ""))
        result = rewrite_query(wq.query, "lineitem")
        if not result.succeeded:
            print(f"  -> not rewritten ({result.outcome.status}: "
                  f"{result.outcome.detail or 'no useful predicate'})")
            skipped += 1
            continue
        print("  synthesized:", render_pred(result.synthesized_predicate))

        def best_of(plan, runs=5):
            best = relation = None
            for _ in range(runs):
                relation, stats = execute(plan, catalog)
                if best is None or stats.elapsed_ms < best.elapsed_ms:
                    best = stats
            return relation, best

        rel_o, stats_o = best_of(build_plan(wq.query))
        rel_r, stats_r = best_of(build_plan(result.rewritten))
        assert rel_o.num_rows == rel_r.num_rows
        speedup = stats_o.elapsed_ms / max(stats_r.elapsed_ms, 1e-9)
        arrow = "faster" if speedup > 1 else "slower"
        if speedup > 1:
            faster += 1
        else:
            slower += 1
        print(
            f"  original {stats_o.elapsed_ms:6.1f} ms | rewritten "
            f"{stats_r.elapsed_ms:6.1f} ms | {speedup:4.2f}x {arrow} | "
            f"join input {stats_o.join_input_tuples} -> {stats_r.join_input_tuples}"
        )

    print(
        f"\nsummary: {faster} faster, {slower} slower, {skipped} not rewritten "
        f"out of {num_queries} (paper at SF10: 95 faster / 19 slower of 114)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
