"""Figure 4: watching the counter-example guided learning loop.

This traces Sia's iterations on the section 3.2 predicate

    a2 - b1 < 20  AND  a1 - a2 < a2 - b1 + 10  AND  b1 < 0

with target columns {a1, a2} (a1 = l_commitdate, a2 = l_shipdate,
b1 = o_orderdate as integer day offsets).  Each iteration either
learns an invalid predicate and receives TRUE counter-examples, or a
valid one and receives FALSE counter-examples, exactly the ping-pong
of Figure 3/4.

Note on the paper's concrete numbers: section 3.2's sample coordinates
are mirrored relative to its own stated predicate (its final predicate
``a1 - a2 + 29 > 0`` has the opposite sign of what the constraints
imply); the true feasible region over (a1, a2) is
``a1 - a2 <= 28 AND a2 <= 18``, which is what this trace converges
toward.

Run:  python examples/learning_trace.py
"""

from repro.core import synthesize
from repro.predicates import Col, Column, Comparison, INTEGER, Lit, pand
from repro.sql import render_pred

A1 = Column("t", "a1", INTEGER)  # l_commitdate
A2 = Column("t", "a2", INTEGER)  # l_shipdate
B1 = Column("t", "b1", INTEGER)  # o_orderdate


def main() -> None:
    predicate = pand(
        [
            Comparison(Col(A2) - Col(B1), "<", Lit.integer(20)),
            Comparison(
                Col(A1) - Col(A2), "<", (Col(A2) - Col(B1)) + Lit.integer(10)
            ),
            Comparison(Col(B1), "<", Lit.integer(0)),
        ]
    )
    print("original predicate:", render_pred(predicate))
    print("target columns: a1, a2\n")

    outcome = synthesize(predicate, {A1, A2})
    for trace in outcome.trace:
        verdict = "VALID  " if trace.valid else "INVALID"
        print(f"iteration {trace.index:2d}: {verdict} learned {trace.learned}")
        if trace.new_true:
            pts = ", ".join(
                f"({int(list(p.values())[0])},{int(list(p.values())[1])})"
                for p in trace.new_true[:5]
            )
            print(f"    + TRUE counter-examples: {pts}")
        if trace.new_false:
            pts = ", ".join(
                f"({int(list(p.values())[0])},{int(list(p.values())[1])})"
                for p in trace.new_false[:5]
            )
            print(f"    + FALSE counter-examples: {pts}")

    print(f"\nfinal status: {outcome.status} after {outcome.iterations} iterations")
    print(f"samples used: {outcome.true_samples} TRUE, {outcome.false_samples} FALSE")
    if outcome.predicate is not None:
        print("synthesized predicate:", render_pred(outcome.predicate))


if __name__ == "__main__":
    main()
