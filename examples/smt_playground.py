"""Tour of the SMT substrate (the layer standing in for Z3).

Sia's machinery is general: the solver, optimizer and quantifier
elimination are usable on their own.  This walkthrough solves a small
scheduling puzzle, optimizes an objective, enumerates models, and
computes an unsatisfaction region -- the exact primitive behind Sia's
FALSE training samples.

Run:  python examples/smt_playground.py
"""

from repro.smt import (
    LinExpr,
    SAT,
    Solver,
    Var,
    compare,
    conj,
    disj,
    maximize,
    unsat_region,
)


def main() -> None:
    x, y, z = Var("x"), Var("y"), Var("z")
    ex, ey, ez = LinExpr.var(x), LinExpr.var(y), LinExpr.var(z)
    c = LinExpr.const_expr

    print("== 1. satisfiability and models ==")
    constraints = conj(
        [
            compare(ex + ey + ez, "=", c(30)),
            compare(ex, "<", ey),
            compare(ey, "<", ez),
            compare(ex, ">=", c(1)),
        ]
    )
    solver = Solver()
    solver.add(constraints)
    assert solver.check() == SAT
    model = solver.model()
    print(f"x={model.int_value(x)} y={model.int_value(y)} z={model.int_value(z)}")

    print("\n== 2. optimization ==")
    result = maximize(constraints, ex)
    assert result is not None
    best_model, best = result
    print(f"max x subject to the constraints: {best} "
          f"(y={best_model.int_value(y)}, z={best_model.int_value(z)})")

    print("\n== 3. model enumeration with blocking (NotOld) ==")
    from repro.smt import NE, Atom

    box = conj([compare(ex, ">=", c(0)), compare(ex, "<=", c(4))])
    enum_solver = Solver()
    enum_solver.add(box)
    values = []
    while enum_solver.check() == SAT:
        value = enum_solver.model().int_value(x)
        values.append(value)
        enum_solver.add(Atom(LinExpr.var(x) - value, NE))
    print("models of 0 <= x <= 4:", sorted(values))

    print("\n== 4. quantifier elimination (Sia's FALSE-sample region) ==")
    # p: x - b < 20 and b < 0.  For which x does NO b exist?
    b = Var("b")
    eb = LinExpr.var(b)
    p = conj([compare(ex - eb, "<", c(20)), compare(eb, "<", c(0))])
    region = unsat_region(p, {x})
    print("p:", p)
    print("unsatisfaction region over {x}:", region.formula,
          f"(exact={region.exact})")
    # x - b < 20 with b <= -1 means x <= b + 19 <= 18.
    print("=> any x >= 19 is an unsatisfaction tuple: these become "
          "Sia's FALSE training samples.")

    print("\n== 5. disjunctive reasoning ==")
    split = conj(
        [
            disj([compare(ex, "<", c(0)), compare(ex, ">", c(100))]),
            compare(ex * 3, "=", c(309)),
        ]
    )
    branch_solver = Solver()
    branch_solver.add(split)
    assert branch_solver.check() == SAT
    print("x =", branch_solver.model().int_value(x), "(took the x > 100 branch)")


if __name__ == "__main__":
    main()
