"""Quickstart: synthesize a predicate, rewrite a query, run it.

This walks the headline flow of the paper in five steps:

1. generate a small TPC-H database with the bundled dbgen,
2. parse a SQL query whose predicates all span both tables,
3. ask Sia for a valid predicate over the lineitem columns,
4. conjoin it into the query (the rewrite is semantically equivalent),
5. execute both plans and compare the work done.

Run:  python examples/quickstart.py
"""

from repro.engine import build_plan, execute
from repro.rewrite import rewrite_query
from repro.sql import parse_query, render_pred
from repro.tpch import generate_catalog


def main() -> None:
    print("== 1. data ==")
    catalog = generate_catalog(scale_factor=0.01, seed=0)
    print(f"lineitem: {catalog.get('lineitem').num_rows} rows, "
          f"orders: {catalog.get('orders').num_rows} rows")

    print("\n== 2. query ==")
    sql = (
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
        "AND l_shipdate - o_orderdate < 20 "
        "AND o_orderdate < DATE '1993-06-01' "
        "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10"
    )
    print(sql)
    query = parse_query(sql, catalog.schema())

    print("\n== 3. synthesis ==")
    result = rewrite_query(query, "lineitem")
    print(f"status: {result.outcome.status} "
          f"({result.outcome.iterations} iterations, "
          f"{result.outcome.timings.total_ms:.0f} ms)")
    print("learned predicate:", render_pred(result.synthesized_predicate))

    print("\n== 4. rewritten query ==")
    print(result.rewritten_sql)

    print("\n== 5. execution ==")
    rel_orig, stats_orig = execute(build_plan(query), catalog)
    rel_rew, stats_rew = execute(build_plan(result.rewritten), catalog)
    assert rel_orig.num_rows == rel_rew.num_rows, "rewrite changed semantics!"
    print(f"original:  {rel_orig.num_rows} rows, "
          f"{stats_orig.join_input_tuples} tuples into the join, "
          f"{stats_orig.elapsed_ms:.1f} ms")
    print(f"rewritten: {rel_rew.num_rows} rows, "
          f"{stats_rew.join_input_tuples} tuples into the join, "
          f"{stats_rew.elapsed_ms:.1f} ms")
    saved = 1 - stats_rew.join_input_tuples / stats_orig.join_input_tuples
    print(f"join input reduced by {saved:.0%} -- same answer, less work.")


if __name__ == "__main__":
    main()
