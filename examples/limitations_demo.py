"""Section 6.7: the non-linearly-separable limitation.

The paper's own example:

    a > b AND a < b + 50 AND b > 0 AND b < 150

Over the target column {a}, the feasible restrictions form the integer
interval [2, 198] (a >= b + 1 >= 2 and a <= b + 49 <= 198), so the
FALSE samples (unsatisfaction tuples) lie on *both sides* of the TRUE
samples -- no single hyperplane separates them.  The paper reports that
Sia "either returns a disjunction of predicates that is not optimal, or
returns an invalid predicate [discarded during verification]".

This reproduction's loop does better in this instance: each valid
iteration contributes one face (first ``a >= 2``, then ``a <= 198``)
and the conjunction converges to the exact optimum -- but the general
contract demonstrated here is the paper's: *an invalid predicate is
never emitted*, whatever the sample geometry.

Run:  python examples/limitations_demo.py
"""

from repro.core import synthesize
from repro.predicates import (
    Col,
    Column,
    Comparison,
    INTEGER,
    Lit,
    eval_pred_py,
    pand,
)
from repro.sql import render_pred

A = Column("t", "a", INTEGER)
B = Column("t", "b", INTEGER)


def main() -> None:
    predicate = pand(
        [
            Comparison(Col(A), ">", Col(B)),
            Comparison(Col(A), "<", Col(B) + Lit.integer(50)),
            Comparison(Col(B), ">", Lit.integer(0)),
            Comparison(Col(B), "<", Lit.integer(150)),
        ]
    )
    print("original predicate:", render_pred(predicate))
    print("ground truth: a is feasible iff 2 <= a <= 198 "
          "(FALSE samples on both sides of TRUE)\n")

    outcome = synthesize(predicate, {A})
    print(f"status: {outcome.status} after {outcome.iterations} iterations")
    if outcome.predicate is None:
        print("Sia declined to synthesize a predicate (safe failure).")
        return

    print("synthesized:", render_pred(outcome.predicate))

    # The validity contract: every feasible value of `a` is accepted.
    violations = [
        a
        for a in range(2, 199)
        if eval_pred_py(outcome.predicate, {A: a}) is not True
    ]
    print(f"validity check over a in [2, 198]: {len(violations)} violations")
    assert not violations, "Sia emitted an invalid predicate!"

    # Optimality: count the unsatisfaction tuples it accepts.
    accepted_outside = sum(
        1
        for a in list(range(-200, 2)) + list(range(199, 400))
        if eval_pred_py(outcome.predicate, {A: a}) is True
    )
    verdict = "optimal" if not accepted_outside else "sub-optimal (section 6.7)"
    print(f"unsatisfaction tuples accepted in [-200, 400]: "
          f"{accepted_outside} -- {verdict}")


if __name__ == "__main__":
    main()
