"""End-to-end integration tests across all subsystems."""

import numpy as np
import pytest

from repro.core import SiaConfig
from repro.engine import Catalog, Table, build_plan, execute
from repro.predicates import Column, INTEGER
from repro.rewrite import rewrite_query
from repro.sql import parse_query
from repro.tpch import generate_catalog, generate_workload

FAST = SiaConfig(max_iterations=6, seed=0)


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(0.004, seed=9)


def run_both(query, rewritten, catalog):
    rel_o, stats_o = execute(build_plan(query), catalog)
    rel_r, stats_r = execute(build_plan(rewritten), catalog)
    return rel_o, rel_r, stats_o, stats_r


def row_signature(relation):
    key = Column("lineitem", "l_orderkey", INTEGER)
    line = Column("lineitem", "l_linenumber", INTEGER)
    pairs = np.stack([relation.column(key), relation.column(line)], axis=1)
    return sorted(map(tuple, pairs.tolist()))


def test_workload_rewrites_preserve_semantics(catalog):
    """Every rewritable workload query returns identical rows."""
    for wq in generate_workload(4, seed=21):
        result = rewrite_query(wq.query, "lineitem", FAST)
        if not result.succeeded:
            continue
        rel_o, rel_r, _, _ = run_both(wq.query, result.rewritten, catalog)
        assert rel_o.num_rows == rel_r.num_rows, wq.sql
        assert row_signature(rel_o) == row_signature(rel_r), wq.sql


def test_rewrite_with_nulls_in_target_columns(catalog):
    """3VL correctness end to end: NULLs in lineitem dates must not
    change the rewritten query's answer."""
    lineitem = catalog.get("lineitem")
    rng = np.random.default_rng(3)
    null_mask = rng.random(lineitem.num_rows) < 0.1
    noisy = Table(
        "lineitem",
        lineitem.schema,
        dict(lineitem.columns),
        {"l_commitdate": null_mask},
    )
    noisy_catalog = Catalog(dict(catalog.tables))
    noisy_catalog.register(noisy)

    sql = (
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
        "AND l_commitdate - o_orderdate < 40 "
        "AND o_orderdate < DATE '1994-01-01'"
    )
    query = parse_query(sql, noisy_catalog.schema())
    result = rewrite_query(query, "lineitem", FAST)
    assert result.succeeded
    rel_o, rel_r, _, _ = run_both(query, result.rewritten, noisy_catalog)
    assert rel_o.num_rows == rel_r.num_rows
    assert row_signature(rel_o) == row_signature(rel_r)


def test_sql_text_round_trip_of_rewritten_query(catalog):
    """The rewritten SQL re-parses and executes to the same answer."""
    wq = generate_workload(3, seed=21)[2]
    result = rewrite_query(wq.query, "lineitem", FAST)
    if not result.succeeded:
        pytest.skip("query not rewritable at this budget")
    reparsed = parse_query(result.rewritten_sql, catalog.schema())
    rel_direct, _ = execute(build_plan(result.rewritten), catalog)
    rel_reparsed, _ = execute(build_plan(reparsed), catalog)
    assert rel_direct.num_rows == rel_reparsed.num_rows


def test_pushdown_toggle_equivalence_on_rewritten(catalog):
    """Pushdown on/off produce the same rows for rewritten queries."""
    wq = generate_workload(2, seed=33)[1]
    result = rewrite_query(wq.query, "lineitem", FAST)
    if not result.succeeded:
        pytest.skip("query not rewritable at this budget")
    rel_push, _ = execute(build_plan(result.rewritten, pushdown=True), catalog)
    rel_nopush, _ = execute(build_plan(result.rewritten, pushdown=False), catalog)
    assert rel_push.num_rows == rel_nopush.num_rows


def test_synthesized_predicate_never_filters_survivors(catalog):
    """Direct data-level validity: rows surviving the original WHERE all
    satisfy the synthesized predicate."""
    from repro.predicates import eval_pred_numpy

    wq = generate_workload(1, seed=77)[0]
    result = rewrite_query(wq.query, "lineitem", FAST)
    if not result.succeeded:
        pytest.skip("query not rewritable at this budget")
    rel_o, _ = execute(build_plan(wq.query), catalog)
    truth, _ = eval_pred_numpy(
        result.outcome.predicate, rel_o.resolver(), rel_o.num_rows
    )
    assert truth.all()
