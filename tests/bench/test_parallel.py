"""Parallel workload driver: the fan-out must be invisible in the
results -- same records in the same order as a single-process run,
solver counters aggregated across workers, and no shared mutable state
(the parent's rewrite cache never sees worker-side traffic)."""

import dataclasses

import pytest

from repro.bench.parallel import (
    ParallelRunResult,
    default_workers,
    parallel_efficacy_records,
)
from repro.core import SiaConfig
from repro.rewrite import RewriteCache
from repro.sql import parse_query
from repro.tpch import TPCH_SCHEMA

# TC (transitive closure) is solver-free per cell and runs in
# milliseconds; the SIA variants take minutes per query and belong to
# the benchmark proper, not the test suite.
FAST = dict(num_queries=2, seed=9, techniques=("TC",))


@pytest.fixture(scope="module")
def sequential():
    return parallel_efficacy_records(workers=1, **FAST)


def test_default_workers_is_positive():
    assert default_workers() >= 1


def test_sequential_run_shape(sequential):
    assert isinstance(sequential, ParallelRunResult)
    assert sequential.workers == 1
    assert sequential.records
    # Ascending query index, stable within-query cell order.
    indices = [record.query_index for record in sequential.records]
    assert indices == sorted(indices)


def test_parallel_merge_matches_sequential_order(sequential):
    parallel = parallel_efficacy_records(workers=2, **FAST)
    assert parallel.workers == 2
    assert len(parallel.records) == len(sequential.records)

    def comparable(record):
        # Wall-clock fields vary run to run; everything else (which
        # predicates were learned, on which cells, in which order) must
        # be bit-identical to the single-process run.
        return {
            key: value
            for key, value in dataclasses.asdict(record).items()
            if not key.endswith("_ms")
        }

    for seq, par in zip(sequential.records, parallel.records):
        assert comparable(seq) == comparable(par)


def test_counters_are_aggregated(sequential):
    assert isinstance(sequential.counters, dict)
    assert all(isinstance(v, int) for v in sequential.counters.values())


def _structural(metrics):
    """Metric shape without wall-clock content: counter values and
    timer/histogram counts are deterministic; durations are not."""
    return {
        "counters": metrics.get("counters", {}),
        "timers": {
            name: (entry["count"], len(entry["values"]))
            for name, entry in metrics.get("timers", {}).items()
        },
        "histograms": {
            name: (entry["count"], len(entry["values"]))
            for name, entry in metrics.get("histograms", {}).items()
        },
    }


def test_metrics_merge_deterministically_across_worker_counts(sequential):
    """Per-worker metric deltas, merged by ascending query index, give
    the same aggregate structure for any worker count."""
    import json

    parallel = parallel_efficacy_records(workers=2, **FAST)
    assert _structural(parallel.metrics) == _structural(sequential.metrics)
    # Content sanity: every query batch timed itself and counted cells.
    assert parallel.metrics["counters"]["bench.cells"] == len(parallel.records)
    assert parallel.metrics["timers"]["bench.query_ms"]["count"] == FAST["num_queries"]
    # The merged delta crosses a process boundary: must be pure JSON.
    assert json.loads(json.dumps(parallel.metrics)) == parallel.metrics


def test_parent_metrics_registry_is_isolated_from_workers():
    """Workers report deltas; the parent's own registry must not absorb
    worker traffic on the side (that would double-count the merge)."""
    from repro.obs.metrics import GLOBAL_METRICS

    before = GLOBAL_METRICS.snapshot()
    parallel_efficacy_records(workers=2, **FAST)
    delta = GLOBAL_METRICS.delta_since(before)
    assert delta.get("counters", {}) == {}
    assert delta.get("timers", {}) == {}
    assert delta.get("histograms", {}) == {}


def test_pool_stats_shape(sequential):
    pool = sequential.pool
    assert pool["workers"] == 1
    assert pool["steals"] == 0 and pool["requeues"] == 0
    assert pool["worker_restarts"] == 0
    assert 0.0 <= pool["utilization"] <= 1.0
    assert {"p50", "p95", "max"} <= set(pool["queue_wait_ms"])


def test_session_pool_is_active_in_driver(sequential):
    """The inline path installs the same worker-lifetime session pool
    as sharded workers; its reuse shows up in the aggregated counters
    whenever sessions are created at all (TC itself is solver-free)."""
    created = sequential.counters.get("sessions_created", 0)
    reused = sequential.counters.get("sessions_reused", 0)
    assert created >= 0 and reused >= 0  # counters ship either way


def test_killed_worker_requeues_query_exactly_once(sequential, monkeypatch):
    """A worker dying mid-cell must not lose or duplicate the query:
    the attempt ledger requeues it once, a fresh worker reruns it, and
    the merged records are identical to the sequential run."""
    crash_index = sequential.records[0].query_index
    monkeypatch.setenv("REPRO_BENCH_CRASH_QUERY", str(crash_index))
    result = parallel_efficacy_records(workers=2, **FAST)
    assert result.pool["requeues"] == 1
    assert result.pool["worker_restarts"] >= 1
    assert len(result.records) == len(sequential.records)

    def comparable(record):
        return {
            key: value
            for key, value in dataclasses.asdict(record).items()
            if not key.endswith("_ms")
        }

    for seq, par in zip(sequential.records, result.records):
        assert comparable(seq) == comparable(par)


def test_deadline_expiry_records_partial_result():
    """An expired per-cell budget yields a *recorded* partial result
    (section 6.2 cooperative timeout), never an exception or a missing
    cell."""
    result = parallel_efficacy_records(
        num_queries=1,
        seed=9,
        techniques=("SIA",),
        workers=1,
        deadline_ms=1.0,
    )
    assert len(result.records) == 7  # every subset produced a record
    for record in result.records:
        assert record.technique == "SIA"
        assert isinstance(record.valid, bool)
        assert isinstance(record.optimal, bool)
    assert result.pool["deadline_ms"] == 1.0


def test_work_stealing_preserves_merge_order():
    """An uneven shard split (3 queries, 2 workers) lets the idle
    worker steal; the merged stream must stay query-ordered anyway."""
    uneven = dict(num_queries=3, seed=9, techniques=("TC",))
    seq = parallel_efficacy_records(workers=1, **uneven)
    par = parallel_efficacy_records(workers=2, **uneven)
    assert [r.query_index for r in par.records] == [
        r.query_index for r in seq.records
    ]
    assert par.pool["steals"] >= 0  # recorded either way
    assert par.pool["requeues"] == 0


def test_worker_env_parity(monkeypatch):
    """Propagated knobs cross the process boundary through the explicit
    initializer: every worker reports exactly the parent's values."""
    from repro.smt.backend import FLOAT_MODE_ENV

    monkeypatch.setenv(FLOAT_MODE_ENV, "off")
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    result = parallel_efficacy_records(workers=2, **FAST)
    assert len(result.worker_env) == 2
    for snapshot in result.worker_env.values():
        assert snapshot[FLOAT_MODE_ENV] == "off"
        assert snapshot["REPRO_SANITIZE"] is None


def test_parent_rewrite_cache_is_isolated_from_workers():
    """Worker processes must not mutate parent-side caches: the rewrite
    cache's hit/miss/eviction accounting reflects only parent traffic."""
    schema = {name: dict(cols) for name, cols in TPCH_SCHEMA.items()}
    sql = (
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
        "AND o_orderdate < DATE '1994-01-01'"
    )
    cache = RewriteCache(config=SiaConfig(max_iterations=2, seed=3), capacity=1)
    cache.rewrite(parse_query(sql, schema), "lineitem")
    parallel_efficacy_records(workers=2, **FAST)
    assert (cache.stats.hits, cache.stats.misses, cache.stats.evictions) == (0, 1, 0)
    cache.rewrite(parse_query(sql, schema), "lineitem")
    assert cache.stats.hits == 1
    other = parse_query(sql + " AND o_orderdate < DATE '1995-01-01'", schema)
    cache.rewrite(other, "lineitem")
    assert cache.stats.evictions == 1
    assert len(cache) == 1
