"""Tests for report rendering and persistence."""

from repro.bench import format_table, histogram
from repro.bench.report import emit


def test_format_table_alignment():
    text = format_table(
        ["name", "count"],
        [["alpha", 10], ["b", 2000]],
        title="Demo",
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert lines[1].startswith("name")
    assert "-----" in lines[2]
    assert lines[3].startswith("alpha")
    # Columns line up.
    assert lines[1].index("count") == lines[3].index("10")


def test_format_table_floats():
    text = format_table(["x"], [[1.23456]])
    assert "1.23" in text


def test_histogram_buckets():
    counts = histogram([1, 5, 5, 7, 100], edges=(5, 10))
    assert counts == [3, 1, 1]
    assert histogram([], edges=(1,)) == [0, 0]


def test_histogram_boundary_inclusive():
    assert histogram([5], edges=(5,)) == [1, 0]
    assert histogram([6], edges=(5,)) == [0, 1]


def test_emit_persists(tmp_path, monkeypatch, capsys):
    import repro.bench.report as report

    monkeypatch.setattr(report, "RESULTS_DIR", tmp_path)
    emit("demo", "hello table")
    assert (tmp_path / "demo.txt").read_text() == "hello table\n"
    assert "hello table" in capsys.readouterr().out
