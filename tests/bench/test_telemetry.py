"""Telemetry plane end to end: heartbeats and ledger from real runs,
results unaffected, and a null path that costs nothing."""

import dataclasses
import json

import pytest

from repro.bench.parallel import TelemetryConfig, parallel_efficacy_records
from repro.obs.ledger import load_ledger

FAST = dict(num_queries=2, seed=9, techniques=("TC",))


def _run(tmp_path, workers, **kwargs):
    telemetry = TelemetryConfig(directory=tmp_path / "tele", heartbeat_ms=50.0)
    params = dict(FAST)
    params.update(kwargs)
    result = parallel_efficacy_records(
        workers=workers, telemetry=telemetry, **params
    )
    return telemetry, result


def _lines(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


@pytest.mark.parametrize("workers", [1, 2])
def test_telemetry_run_writes_heartbeats_and_ledger(tmp_path, workers):
    telemetry, result = _run(tmp_path, workers)
    assert telemetry.heartbeat_path.exists()
    assert telemetry.ledger_path.exists()

    lines = _lines(telemetry.heartbeat_path)
    kinds = {line["type"] for line in lines}
    assert "end" in kinds
    beacons = [line for line in lines if line["type"] == "beacon"]
    assert beacons, "workers must ship at least their final beacon"
    # Parent stamps every written beacon with its own arrival clock.
    assert all("rx" in beacon for beacon in beacons)
    assert lines[-1]["type"] == "end"

    header, entries = load_ledger(telemetry.ledger_path)
    assert header["config"]["workers"] == workers
    assert header["config"]["techniques"] == ["TC"]
    assert header["config"]["queries"] == FAST["num_queries"]
    assert header["config"]["float_filter"]
    # One ledger line per merged record, in merge (query) order.
    assert len(entries) == len(result.records)
    assert [e["query"] for e in entries] == [
        r.query_index for r in result.records
    ]


@pytest.mark.parametrize("workers", [1, 2])
def test_pool_stats_carry_heartbeat_rollup(tmp_path, workers):
    _, result = _run(tmp_path, workers)
    rollup = result.pool["heartbeats"]
    assert rollup["beacons"] >= 1
    assert rollup["silence_flags"] == 0
    assert len(rollup["workers"]) == workers


def test_records_match_untelemetered_run(tmp_path):
    plain = parallel_efficacy_records(workers=1, **FAST)
    _, telemetered = _run(tmp_path, 1)

    def comparable(record):
        return {
            key: value
            for key, value in dataclasses.asdict(record).items()
            if not key.endswith("_ms")
        }

    assert len(telemetered.records) == len(plain.records)
    for seq, tel in zip(plain.records, telemetered.records):
        assert comparable(seq) == comparable(tel)


def test_null_path_has_no_telemetry_artifacts(tmp_path):
    result = parallel_efficacy_records(workers=1, **FAST)
    assert "heartbeats" not in result.pool
    assert list(tmp_path.iterdir()) == []


def test_ledger_entries_carry_audit_and_counters(tmp_path):
    telemetry, _ = _run(tmp_path, 1)
    _, entries = load_ledger(telemetry.ledger_path)
    for entry in entries:
        assert entry["audit"] in ("certified", "none")
        assert isinstance(entry["counters"], dict)
        assert entry["partial"] is False  # no deadline in this run
        assert set(entry["phase_ms"]) == {
            "generation", "learning", "validation",
        }


def test_deadline_partials_reach_the_ledger(tmp_path):
    telemetry, result = _run(
        tmp_path, 1,
        num_queries=1, techniques=("SIA",), deadline_ms=1.0,
    )
    _, entries = load_ledger(telemetry.ledger_path)
    assert len(entries) == len(result.records)
    assert all(e["deadline_ms"] == 1.0 for e in entries)
    partials = [e for e in entries if e["partial"]]
    assert len(partials) == sum(r.partial for r in result.records)
    assert partials, "a 1ms budget must expire at least one cell"
