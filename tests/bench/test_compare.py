"""The BENCH perf-regression gate: diff rules and the CLI exit code."""

import json
from pathlib import Path

import pytest

from repro.bench.compare import compare_bench, load_bench, render_compare
from repro.cli import main

REPO_BENCH = Path(__file__).parents[2] / "BENCH_smt_micro.json"


def _table(**entries):
    return {
        name: {"median_ms": median, "p95_ms": p95}
        for name, (median, p95) in entries.items()
    }


class TestCompareRules:
    def test_identical_tables_pass(self):
        table = _table(a=(10.0, 20.0), b=(100.0, 150.0))
        result = compare_bench(table, dict(table))
        assert result.ok
        assert all(e.status == "ok" for e in result.entries)

    def test_median_drift_over_ratio_and_floor_regresses(self):
        result = compare_bench(
            _table(a=(10.0, 20.0)), _table(a=(25.0, 20.0)),
            median_ratio=1.5, min_ms=5.0,
        )
        assert not result.ok
        (diff,) = result.regressions
        assert diff.status == "regressed"
        assert "median_ms" in diff.reasons[0]

    def test_p95_has_its_own_threshold(self):
        # Median holds but the tail doubles past the 2x p95 ratio.
        result = compare_bench(
            _table(a=(10.0, 20.0)), _table(a=(10.0, 48.0)),
            p95_ratio=2.0, min_ms=5.0,
        )
        assert not result.ok
        assert "p95_ms" in result.regressions[0].reasons[0]

    def test_absolute_floor_suppresses_microsecond_noise(self):
        # 3x drift, but only 0.2ms absolute: under the 5ms floor.
        result = compare_bench(
            _table(a=(0.1, 0.2)), _table(a=(0.3, 0.6)), min_ms=5.0
        )
        assert result.ok

    def test_missing_entry_is_fatal_unless_allowed(self):
        old = _table(a=(10.0, 20.0), b=(1.0, 2.0))
        new = _table(a=(10.0, 20.0))
        result = compare_bench(old, new)
        assert [e.status for e in result.regressions] == ["missing"]
        assert compare_bench(old, new, allow_missing=True).ok

    def test_added_entry_is_reported_not_fatal(self):
        result = compare_bench(
            _table(a=(10.0, 20.0)), _table(a=(10.0, 20.0), c=(5.0, 9.0))
        )
        assert result.ok
        assert any(e.status == "added" for e in result.entries)

    def test_render_has_verdict_line(self):
        result = compare_bench(_table(a=(10.0, 20.0)), _table(a=(25.0, 60.0)))
        text = render_compare(result)
        assert "FAIL: 1 regression(s)" in text
        assert "regression a:" in text
        passing = compare_bench(_table(a=(1.0, 2.0)), _table(a=(1.0, 2.0)))
        assert "PASS: 0 regression(s)" in render_compare(passing)


class TestLoadBench:
    def test_rejects_non_bench_document(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"results": []}))
        with pytest.raises(ValueError):
            load_bench(path)


class TestCompareCli:
    def test_committed_bench_passes_against_itself(self, capsys):
        code = main(
            ["bench", "--compare", str(REPO_BENCH), "--json", str(REPO_BENCH)]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_p95_regression_fails_gate(self, tmp_path, capsys):
        # Copy the committed BENCH and double every p95: the gate must
        # exit nonzero while the pristine file keeps passing.
        table = load_bench(REPO_BENCH)
        doctored = {
            name: {
                **entry,
                **(
                    {"p95_ms": entry["p95_ms"] * 2.0 + 50.0}
                    if "p95_ms" in entry
                    else {}
                ),
            }
            for name, entry in table.items()
        }
        assert any("p95_ms" in e for e in doctored.values())
        new_path = tmp_path / "BENCH_doctored.json"
        new_path.write_text(json.dumps({"benchmarks": doctored}))
        code = main(
            ["bench", "--compare", str(REPO_BENCH), "--json", str(new_path)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "p95_ms" in out

    def test_unreadable_old_side_exits_2(self, tmp_path, capsys):
        code = main(
            ["bench", "--compare", str(tmp_path / "missing.json"),
             "--json", str(REPO_BENCH)]
        )
        assert code == 2

    def test_threshold_flags_are_honored(self, tmp_path, capsys):
        table = load_bench(REPO_BENCH)
        new_path = tmp_path / "same.json"
        new_path.write_text(json.dumps({"benchmarks": table}))
        code = main(
            ["bench", "--compare", str(REPO_BENCH), "--json", str(new_path),
             "--median-ratio", "9.0", "--p95-ratio", "9.0",
             "--min-ms", "100.0"]
        )
        assert code == 0
        assert "9.0x" in capsys.readouterr().out
