"""Tests for the experiment harness (small scales)."""

import pytest

from repro.bench import (
    TECHNIQUES,
    column_subsets,
    efficacy_records,
    fig7_rows,
    fig8_rows,
    fig9_summary,
    runtime_records,
    table2_rows,
    table3_rows,
    table4_rows,
)
from repro.bench.casestudy import case_study_records, fig6_rows


FAST_TECHNIQUES = ("SIA", "TC")


@pytest.fixture(scope="module")
def records():
    # Tiny run: 1 query, two techniques; shares the module-level cache.
    return efficacy_records(num_queries=1, seed=5, techniques=FAST_TECHNIQUES)


def test_column_subsets():
    subsets = column_subsets()
    assert len(subsets) == 7
    assert sorted(len(s) for s in subsets) == [1, 1, 1, 2, 2, 2, 3]


def test_efficacy_records_cover_grid(records):
    keys = {(r.query_index, r.subset, r.technique) for r in records}
    assert len(keys) == 1 * 7 * len(FAST_TECHNIQUES)


def test_efficacy_optimal_implies_valid(records):
    for record in records:
        if record.optimal:
            assert record.valid, record


def test_efficacy_possible_consistent(records):
    """`possible` is a (query, subset) ground truth, shared across
    techniques."""
    by_key = {}
    for record in records:
        key = (record.query_index, record.subset)
        by_key.setdefault(key, set()).add(record.possible)
    assert all(len(values) == 1 for values in by_key.values())


def test_valid_only_when_possible(records):
    """No technique may synthesize a non-trivial valid predicate when
    the unsatisfaction region is empty."""
    for record in records:
        if not record.possible:
            assert not record.valid, record


def test_table_rows_shape(records):
    rows2 = table2_rows(records)
    assert [row[0] for row in rows2] == ["one", "two", "three"]
    assert all(len(row) == 2 + 2 * len(TECHNIQUES) for row in rows2)
    rows3 = table3_rows(records)
    assert all(len(row) == 1 + 9 for row in rows3)
    rows7, labels7 = fig7_rows(records)
    assert len(rows7) == 3 and len(labels7) == 6
    rows8, labels8 = fig8_rows(records)
    assert len(rows8) == 6 and len(labels8) == 6


def test_runtime_records_and_summaries():
    records = runtime_records(scale_factor=0.002, num_queries=2, seed=5, repeats=1)
    assert len(records) == 2
    summary = fig9_summary(records)
    assert summary["rewritten"] == sum(1 for r in records if r.rewritten)
    rows = table4_rows(records)
    assert [row[0] for row in rows] == ["faster", "2x faster", "slower", "2x slower"]


def test_runtime_semantics_preserved():
    # runtime_records raises internally if row counts diverge.
    records = runtime_records(scale_factor=0.002, num_queries=2, seed=5, repeats=1)
    for record in records:
        if record.rewritten:
            assert record.original_rows == record.rewritten_rows


def test_case_study_records():
    records = case_study_records(num_queries=6, scale_factor=0.002, seed=3)
    assert len(records) == 6
    relevant = [r for r in records if r.symbolically_relevant]
    for record in relevant:
        assert record.prospective
    rows, labels = fig6_rows(records)
    assert len(rows) == 2
    assert len(labels) == 6
