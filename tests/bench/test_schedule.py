"""Cost model + LPT shard assignment for the sharded driver.

Scheduling is a heuristic -- correctness never depends on it -- so the
tests pin what the driver *does* rely on: every query lands in exactly
one shard, assignment is deterministic, and the within-shard order is
descending expected cost (the steal-from-tail policy assumes it).
"""

from repro.bench.schedule import (
    assign_shards,
    expected_costs,
    synthetic_lineitem_stats,
)
from repro.tpch import LINEITEM_DATES, generate_workload


def test_synthetic_stats_cover_all_date_columns():
    stats = synthetic_lineitem_stats()
    for column in LINEITEM_DATES:
        assert column.name in stats.columns
    assert stats is synthetic_lineitem_stats()  # cached


def test_expected_costs_are_positive_and_deterministic():
    queries = generate_workload(6, seed=11)
    costs = expected_costs(queries)
    assert len(costs) == 6
    assert all(cost > 0 for cost in costs)
    assert costs == expected_costs(queries)


def test_assign_shards_partitions_exactly():
    queries = generate_workload(9, seed=3)
    costs = expected_costs(queries)
    shards = assign_shards(costs, 3)
    assert len(shards) == 3
    flat = sorted(pos for shard in shards for pos in shard)
    assert flat == list(range(len(costs)))


def test_shard_order_is_descending_cost():
    queries = generate_workload(8, seed=7)
    costs = expected_costs(queries)
    for shard in assign_shards(costs, 2):
        shard_costs = [costs[pos] for pos in shard]
        assert shard_costs == sorted(shard_costs, reverse=True)


def test_more_workers_than_queries_leaves_empty_shards():
    shards = assign_shards([5.0, 1.0], 4)
    assert sum(1 for shard in shards if shard) == 2
    assert sorted(pos for shard in shards for pos in shard) == [0, 1]


def test_single_worker_gets_everything_longest_first():
    costs = [1.0, 9.0, 4.0]
    (shard,) = assign_shards(costs, 1)
    assert shard == [1, 2, 0]
