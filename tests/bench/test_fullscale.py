"""Tests for the resumable full-scale runner (tiny scales)."""

import json

from repro.bench.fullscale import main, run, summarize


def test_run_and_summarize(tmp_path, capsys):
    out = tmp_path / "cells.jsonl"
    new_cells = run(queries=1, seed=5, out_path=out, techniques=("TC",))
    assert new_cells == 7  # one query x seven subsets
    text = summarize(out)
    assert "Table 2" in text and "Table 3" in text


def test_resume_skips_completed_cells(tmp_path):
    out = tmp_path / "cells.jsonl"
    first = run(queries=1, seed=5, out_path=out, techniques=("TC",))
    second = run(queries=1, seed=5, out_path=out, techniques=("TC",))
    assert first == 7
    assert second == 0
    lines = [l for l in out.read_text().splitlines() if l.strip()]
    assert len(lines) == 7


def test_resume_extends_with_new_technique(tmp_path):
    out = tmp_path / "cells.jsonl"
    run(queries=1, seed=5, out_path=out, techniques=("TC",))
    more = run(queries=1, seed=5, out_path=out, techniques=("TC", "SIA"))
    assert more == 7  # only the SIA cells are new


def test_checkpoint_is_valid_jsonl(tmp_path):
    out = tmp_path / "cells.jsonl"
    run(queries=1, seed=5, out_path=out, techniques=("TC",))
    for line in out.read_text().splitlines():
        payload = json.loads(line)
        assert {"query_index", "subset", "technique", "valid", "optimal"} <= set(payload)


def test_parallel_run_extends_same_checkpoint(tmp_path):
    """The sharded driver writes the same cells as the sequential
    runner (wall-clock fields aside) and resumes against the same
    file interchangeably."""
    seq_out = tmp_path / "seq.jsonl"
    par_out = tmp_path / "par.jsonl"
    run(queries=1, seed=5, out_path=seq_out, techniques=("TC",))
    stats: dict = {}
    new = run(
        queries=1, seed=5, out_path=par_out, techniques=("TC",),
        workers=2, stats=stats,
    )
    assert new == 7
    assert stats["workers"] == 2
    assert stats["requeues"] == 0

    def comparable(line):
        payload = json.loads(line)
        return {k: v for k, v in payload.items() if not k.endswith("_ms")}

    seq_cells = [comparable(l) for l in seq_out.read_text().splitlines() if l.strip()]
    par_cells = [comparable(l) for l in par_out.read_text().splitlines() if l.strip()]
    assert seq_cells == par_cells
    # Resume on the parallel-written file computes nothing new.
    assert run(
        queries=1, seed=5, out_path=par_out, techniques=("TC",), workers=2
    ) == 0


def test_main_summarize_mode(tmp_path, capsys):
    out = tmp_path / "cells.jsonl"
    run(queries=1, seed=5, out_path=out, techniques=("TC",))
    code = main(["--summarize", str(out)])
    assert code == 0
    assert "Table 2" in capsys.readouterr().out
