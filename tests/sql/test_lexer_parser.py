"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.sql import parse_predicate, parse_select, tokenize
from repro.sql import ast


def kinds(sql):
    return [(t.kind, t.text) for t in tokenize(sql)[:-1]]


def test_tokenize_basic():
    tokens = kinds("SELECT * FROM lineitem WHERE a < 10")
    assert tokens[0] == ("KEYWORD", "SELECT")
    assert ("OP", "*") in tokens
    assert ("IDENT", "lineitem") in tokens
    assert ("NUMBER", "10") in tokens


def test_tokenize_string_escape():
    tokens = tokenize("'it''s'")
    assert tokens[0].text == "it's"


def test_tokenize_unterminated_string():
    with pytest.raises(ParseError):
        tokenize("'oops")


def test_tokenize_comments():
    tokens = kinds("a -- comment\n< 5")
    assert tokens == [("IDENT", "a"), ("OP", "<"), ("NUMBER", "5")]


def test_tokenize_decimal_vs_qualifier():
    assert kinds("1.5") == [("NUMBER", "1.5")]
    assert kinds("t.c") == [("IDENT", "t"), ("PUNCT", "."), ("IDENT", "c")]


def test_tokenize_operators():
    assert [t for _, t in kinds("a <= b >= c <> d != e")] == [
        "a", "<=", "b", ">=", "c", "<>", "d", "!=", "e",
    ]


def test_tokenize_bad_char():
    with pytest.raises(ParseError):
        tokenize("a @ b")


# ----------------------------------------------------------------------
def test_parse_select_star_comma_join():
    stmt = parse_select(
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey"
    )
    assert stmt.projections is None
    assert [t.name for t in stmt.tables] == ["lineitem", "orders"]
    assert isinstance(stmt.where, ast.CompareExpr)


def test_parse_select_projection_list():
    stmt = parse_select("SELECT l_orderkey, l_shipdate FROM lineitem")
    assert stmt.projections is not None
    assert len(stmt.projections) == 2


def test_parse_explicit_join_folds_on_condition():
    stmt = parse_select(
        "SELECT * FROM lineitem JOIN orders ON o_orderkey = l_orderkey "
        "WHERE l_quantity > 10"
    )
    assert isinstance(stmt.where, ast.AndExpr)
    assert len(stmt.where.args) == 2


def test_parse_table_alias():
    stmt = parse_select("SELECT * FROM lineitem l WHERE l.l_quantity > 0")
    assert stmt.tables[0].alias == "l"
    stmt2 = parse_select("SELECT * FROM lineitem AS li")
    assert stmt2.tables[0].alias == "li"


def test_parse_group_by():
    stmt = parse_select(
        "SELECT l_orderkey FROM lineitem GROUP BY l_orderkey"
    )
    assert len(stmt.group_by) == 1


def test_parse_precedence_and_or():
    node = parse_predicate("a < 1 OR b < 2 AND c < 3")
    assert isinstance(node, ast.OrExpr)
    assert isinstance(node.args[1], ast.AndExpr)


def test_parse_not():
    node = parse_predicate("NOT a < 1")
    assert isinstance(node, ast.NotExpr)


def test_parse_arith_precedence():
    node = parse_predicate("a + b * 2 < 10")
    assert isinstance(node, ast.CompareExpr)
    assert isinstance(node.left, ast.BinOp)
    assert node.left.op == "+"
    assert isinstance(node.left.right, ast.BinOp)
    assert node.left.right.op == "*"


def test_parse_parenthesised_arith():
    node = parse_predicate("(a + b) * 2 < 10")
    assert isinstance(node.left, ast.BinOp)
    assert node.left.op == "*"


def test_parse_parenthesised_boolean():
    node = parse_predicate("(a < 1 OR b < 2) AND c < 3")
    assert isinstance(node, ast.AndExpr)
    assert isinstance(node.args[0], ast.OrExpr)


def test_parse_date_literal():
    node = parse_predicate("l_shipdate < DATE '1993-06-01'")
    assert isinstance(node.right, ast.DateLit)
    assert node.right.value == "1993-06-01"


def test_parse_bare_string_literal():
    node = parse_predicate("l_shipdate < '1993-06-01'")
    assert isinstance(node.right, ast.StringLit)


def test_parse_interval():
    node = parse_predicate("l_shipdate - o_orderdate < INTERVAL '20' DAY")
    assert isinstance(node.right, ast.IntervalLit)
    assert node.right.amount == 20
    assert node.right.unit == "DAY"


def test_parse_between():
    node = parse_predicate("a BETWEEN 1 AND 5")
    assert isinstance(node, ast.BetweenExpr)
    node2 = parse_predicate("a NOT BETWEEN 1 AND 5")
    assert node2.negated


def test_parse_is_null():
    node = parse_predicate("a IS NULL")
    assert isinstance(node, ast.IsNullExpr)
    node2 = parse_predicate("a IS NOT NULL")
    assert node2.negated


def test_parse_unary_minus():
    node = parse_predicate("-a < 5")
    assert isinstance(node.left, ast.Neg)


def test_parse_true_false():
    assert isinstance(parse_predicate("TRUE"), ast.BoolLit)
    assert parse_predicate("FALSE").value is False


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_select("SELECT FROM lineitem")
    with pytest.raises(ParseError):
        parse_select("SELECT * lineitem")
    with pytest.raises(ParseError):
        parse_predicate("a <")
    with pytest.raises(ParseError):
        parse_predicate("a < 1 extra stuff")


def test_parse_trailing_semicolon():
    stmt = parse_select("SELECT * FROM lineitem;")
    assert stmt.tables[0].name == "lineitem"


def test_parse_paper_query_q1():
    sql = """
    SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey
      AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01'
      AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10;
    """
    stmt = parse_select(sql)
    assert isinstance(stmt.where, ast.AndExpr)
    assert len(stmt.where.args) == 4
