"""Tests for name resolution, typing, and SQL rendering."""

import datetime as dt

import pytest

from repro.errors import CatalogError, TypeCheckError
from repro.predicates import (
    Comparison,
    DATE,
    DOUBLE,
    INTEGER,
    IsNull,
    Lit,
    PAnd,
    PNot,
)
from repro.sql import (
    parse_bound_predicate,
    parse_query,
    render_pred,
    render_query,
)

SCHEMA = {
    "lineitem": {
        "l_orderkey": INTEGER,
        "l_quantity": INTEGER,
        "l_extendedprice": DOUBLE,
        "l_shipdate": DATE,
        "l_commitdate": DATE,
        "l_receiptdate": DATE,
    },
    "orders": {
        "o_orderkey": INTEGER,
        "o_orderdate": DATE,
        "o_totalprice": DOUBLE,
    },
}


def test_bind_paper_query():
    query = parse_query(
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
        "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01'",
        SCHEMA,
    )
    assert query.tables == ["lineitem", "orders"]
    assert isinstance(query.where, PAnd)
    cols = {c.qualified for c in query.where.columns()}
    assert "orders.o_orderdate" in cols
    assert "lineitem.l_shipdate" in cols


def test_string_coerced_to_date():
    pred = parse_bound_predicate(
        "l_shipdate < '1993-06-01'", SCHEMA, ["lineitem"]
    )
    assert isinstance(pred, Comparison)
    assert pred.right.etype == DATE
    assert pred.right.value == dt.date(1993, 6, 1)


def test_interval_becomes_integer_days():
    pred = parse_bound_predicate(
        "l_shipdate - l_commitdate < INTERVAL '20' DAY", SCHEMA, ["lineitem"]
    )
    assert pred.right.value == 20
    assert pred.right.etype == INTEGER


def test_unknown_table_and_column():
    with pytest.raises(CatalogError):
        parse_query("SELECT * FROM nosuch", SCHEMA)
    with pytest.raises(CatalogError):
        parse_bound_predicate("nope < 1", SCHEMA, ["lineitem"])


def test_ambiguous_column():
    schema = {
        "a": {"val": INTEGER},
        "b": {"val": INTEGER},
    }
    with pytest.raises(CatalogError):
        parse_bound_predicate("val < 1", schema, ["a", "b"])


def test_qualified_resolution_with_alias():
    query = parse_query(
        "SELECT * FROM lineitem l WHERE l.l_quantity > 5", SCHEMA
    )
    (col,) = query.where.columns()
    assert col.qualified == "lineitem.l_quantity"


def test_two_strings_cannot_be_compared():
    with pytest.raises(TypeCheckError):
        parse_bound_predicate("'a' < 'b'", SCHEMA, ["lineitem"])


def test_string_against_integer_rejected():
    with pytest.raises(TypeCheckError):
        parse_bound_predicate("l_quantity < 'abc'", SCHEMA, ["lineitem"])


def test_between_expands_to_conjunction():
    pred = parse_bound_predicate(
        "l_quantity BETWEEN 1 AND 5", SCHEMA, ["lineitem"]
    )
    assert isinstance(pred, PAnd)
    assert len(pred.args) == 2


def test_not_is_null_folds():
    pred = parse_bound_predicate(
        "NOT l_shipdate IS NULL", SCHEMA, ["lineitem"]
    )
    assert isinstance(pred, IsNull)
    assert pred.negated


def test_negative_literal():
    pred = parse_bound_predicate("l_quantity > -5", SCHEMA, ["lineitem"])
    assert pred.right.value == -5


def test_decimal_literal_is_double():
    pred = parse_bound_predicate("l_extendedprice > 1.5", SCHEMA, ["lineitem"])
    assert pred.right.etype == DOUBLE


# ----------------------------------------------------------------------
# Printer round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "sql",
    [
        "lineitem.l_quantity < 5",
        "lineitem.l_shipdate < DATE '1993-06-01'",
        "lineitem.l_shipdate - lineitem.l_commitdate < 20",
        "lineitem.l_quantity + 2 * lineitem.l_orderkey <= 100",
        "NOT (lineitem.l_quantity = 3)",
        "lineitem.l_quantity < 1 OR lineitem.l_quantity > 5 AND lineitem.l_orderkey = 2",
        "lineitem.l_shipdate IS NOT NULL",
    ],
)
def test_render_parse_roundtrip(sql):
    pred = parse_bound_predicate(sql, SCHEMA, ["lineitem"])
    rendered = render_pred(pred)
    reparsed = parse_bound_predicate(rendered, SCHEMA, ["lineitem"])
    assert render_pred(reparsed) == rendered


def test_render_query():
    query = parse_query(
        "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey",
        SCHEMA,
    )
    text = render_query(query)
    assert text.startswith("SELECT * FROM lineitem, orders WHERE")
    # Round-trip.
    again = parse_query(text, SCHEMA)
    assert render_query(again) == text


def test_render_parenthesizes_or_inside_and():
    pred = parse_bound_predicate(
        "(lineitem.l_quantity < 1 OR lineitem.l_quantity > 5) AND lineitem.l_orderkey = 2",
        SCHEMA,
        ["lineitem"],
    )
    rendered = render_pred(pred)
    reparsed = parse_bound_predicate(rendered, SCHEMA, ["lineitem"])
    assert render_pred(reparsed) == rendered
    assert "(" in rendered


def test_render_subtraction_associativity():
    pred = parse_bound_predicate(
        "lineitem.l_quantity - (lineitem.l_orderkey - 3) < 10", SCHEMA, ["lineitem"]
    )
    rendered = render_pred(pred)
    reparsed = parse_bound_predicate(rendered, SCHEMA, ["lineitem"])
    # Semantics preserved under re-rendering.
    assert render_pred(reparsed) == rendered
