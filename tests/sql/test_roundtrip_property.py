"""Property test: render -> parse round trip preserves semantics."""

import datetime as dt
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predicates import (
    Col,
    Column,
    Comparison,
    DATE,
    INTEGER,
    Lit,
    PNot,
    Pred,
    eval_pred_py,
    pand,
    por,
)
from repro.sql import parse_bound_predicate, render_pred

A = Column("t", "a", INTEGER)
B = Column("t", "b", INTEGER)
D = Column("t", "d", DATE)

SCHEMA = {"t": {"a": INTEGER, "b": INTEGER, "d": DATE}}


def random_expr(rng: random.Random):
    choice = rng.random()
    if choice < 0.35:
        return Col(rng.choice((A, B)))
    if choice < 0.55:
        return Lit.integer(rng.randint(-50, 50))
    left = random_expr(rng)
    right = random_expr(rng)
    op = rng.choice("+-")
    return left + right if op == "+" else left - right


def random_pred(rng: random.Random, depth: int = 0) -> Pred:
    if depth >= 2 or rng.random() < 0.55:
        kind = rng.random()
        if kind < 0.8:
            return Comparison(
                random_expr(rng),
                rng.choice(["<", "<=", ">", ">=", "=", "!="]),
                random_expr(rng),
            )
        # date comparison
        day = dt.date(1993, 1, 1) + dt.timedelta(days=rng.randrange(1000))
        return Comparison(Col(D), rng.choice(["<", ">="]), Lit.date(day))
    combiner = rng.choice([pand, por])
    parts = [random_pred(rng, depth + 1) for _ in range(rng.randint(2, 3))]
    if rng.random() < 0.25:
        return PNot(combiner(parts))
    return combiner(parts)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    a=st.integers(min_value=-60, max_value=60),
    b=st.integers(min_value=-60, max_value=60),
    day_offset=st.integers(min_value=0, max_value=1200),
)
def test_render_parse_preserves_evaluation(seed, a, b, day_offset):
    rng = random.Random(seed)
    pred = random_pred(rng)
    rendered = render_pred(pred)
    reparsed = parse_bound_predicate(rendered, SCHEMA, ["t"])
    row = {A: a, B: b, D: dt.date(1993, 1, 1) + dt.timedelta(days=day_offset)}
    assert eval_pred_py(pred, row) == eval_pred_py(reparsed, row), rendered


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_double_round_trip_is_stable(seed):
    rng = random.Random(seed)
    pred = random_pred(rng)
    once = render_pred(parse_bound_predicate(render_pred(pred), SCHEMA, ["t"]))
    twice = render_pred(parse_bound_predicate(once, SCHEMA, ["t"]))
    assert once == twice
