"""Tests for configuration and result bookkeeping."""

import time

from repro.core import SIA_DEFAULT, SIA_V1, SIA_V2, SiaConfig
from repro.core.result import (
    OPTIMAL,
    SynthesisOutcome,
    Timings,
    TRIVIAL,
    VALID,
)


def test_table1_configurations():
    """The paper's Table 1, verbatim."""
    assert SIA_DEFAULT.max_iterations == 41
    assert SIA_DEFAULT.initial_true_samples == 10
    assert SIA_DEFAULT.initial_false_samples == 10
    assert SIA_DEFAULT.samples_per_iteration == 5
    assert SIA_V1.max_iterations == 1
    assert SIA_V1.initial_true_samples == 110
    assert SIA_V2.initial_true_samples == 220
    assert SIA_V2.initial_false_samples == 220


def test_with_seed():
    config = SIA_DEFAULT.with_seed(99)
    assert config.seed == 99
    assert config.max_iterations == SIA_DEFAULT.max_iterations
    assert SIA_DEFAULT.seed == 0  # frozen original untouched


def test_config_is_frozen():
    import dataclasses

    import pytest

    with pytest.raises(dataclasses.FrozenInstanceError):
        SIA_DEFAULT.max_iterations = 5


def test_timings_track_accumulates():
    timings = Timings()
    with timings.track("generation"):
        time.sleep(0.01)
    with timings.track("generation"):
        time.sleep(0.01)
    with timings.track("learning"):
        time.sleep(0.005)
    assert timings.generation_ms >= 15
    assert timings.learning_ms >= 4
    assert timings.total_ms == (
        timings.generation_ms + timings.learning_ms + timings.validation_ms
    )


def test_timings_track_survives_exceptions():
    timings = Timings()
    try:
        with timings.track("validation"):
            time.sleep(0.005)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert timings.validation_ms >= 4


def test_outcome_flags():
    assert SynthesisOutcome(status=OPTIMAL).is_optimal
    assert SynthesisOutcome(status=OPTIMAL).is_valid
    assert SynthesisOutcome(status=VALID).is_valid
    assert not SynthesisOutcome(status=VALID).is_optimal
    assert not SynthesisOutcome(status=TRIVIAL).is_valid


def test_outcome_repr():
    outcome = SynthesisOutcome(status=VALID, iterations=3)
    assert "valid" in repr(outcome)
    assert "iters=3" in repr(outcome)
