"""Tests for the Learn procedure (Algorithm 2)."""

import random
from fractions import Fraction

import pytest

from repro.core import SIA_DEFAULT, learn
from repro.errors import SynthesisError
from repro.smt import Var

X = Var("x")
Y = Var("y")


def pts(values, var=X):
    return [{var: Fraction(v)} for v in values]


def pts2(values):
    return [{X: Fraction(a), Y: Fraction(b)} for a, b in values]


def run_learn(ts, fs, variables=None, seed=0):
    return learn(ts, fs, variables or [X], SIA_DEFAULT, random.Random(seed))


def test_requires_samples():
    with pytest.raises(SynthesisError):
        run_learn([], pts([1]))
    with pytest.raises(SynthesisError):
        run_learn(pts([1]), [])


def test_separable_1d():
    predicate = run_learn(pts([0, 1, 2, 3]), pts([10, 11, 12]))
    for v in (0, 1, 2, 3):
        assert predicate.accepts({X: Fraction(v)})
    for v in (10, 11, 12):
        assert not predicate.accepts({X: Fraction(v)})


def test_boundary_is_midpoint():
    """The exact-bias refit places the cut between the closest pair."""
    predicate = run_learn(pts([0, 18]), pts([19, 40]))
    assert predicate.accepts({X: Fraction(18)})
    assert not predicate.accepts({X: Fraction(19)})


def test_all_true_samples_always_accepted_even_when_not_separable():
    # TRUE between two FALSE clusters: not separable by one plane.
    ts = pts([5, 6])
    fs = pts([0, 1, 10, 11])
    predicate = run_learn(ts, fs)
    for point in ts:
        assert predicate.accepts(point)


def test_disjunction_emerges_for_split_true_clusters():
    ts = pts([-10, -11, 10, 11])
    fs = pts([0, 1, -1])
    predicate = run_learn(ts, fs)
    for point in ts:
        assert predicate.accepts(point)
    # FALSE cluster sits between the TRUE clusters; with a disjunction
    # of planes the learner can reject at least part of it.
    assert len(predicate.planes) >= 1


def test_separable_2d():
    ts = pts2([(0, 0), (1, 1), (2, 0)])
    fs = pts2([(10, 10), (11, 9), (9, 11)])
    predicate = run_learn(ts, fs, variables=[X, Y])
    for point in ts:
        assert predicate.accepts(point)
    for point in fs:
        assert not predicate.accepts(point)


def test_diagonal_boundary():
    # TRUE iff x - y <= 2 samples.
    ts = pts2([(0, 0), (2, 0), (5, 3), (-1, 4)])
    fs = pts2([(10, 0), (8, 1), (20, 5)])
    predicate = run_learn(ts, fs, variables=[X, Y])
    for point in ts:
        assert predicate.accepts(point)
    for point in fs:
        assert not predicate.accepts(point)


def test_deterministic_given_seed():
    ts, fs = pts([0, 1, 2]), pts([8, 9])
    p1 = run_learn(ts, fs, seed=5)
    p2 = run_learn(ts, fs, seed=5)
    assert str(p1) == str(p2)


def test_identical_true_false_points_forced_plane():
    """Degenerate overlap: Learn must still return something accepting
    all TRUE samples (the verifier will reject it later)."""
    ts = pts([5])
    fs = pts([5])
    predicate = run_learn(ts, fs)
    assert predicate.accepts({X: Fraction(5)})
